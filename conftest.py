"""Repo-root collection rules for the doctest leg.

``pytest --doctest-modules src/repro/envelope`` collects library
modules directly; on the no-numpy CI leg the ``flat*`` kernel modules
cannot even import, so they are excluded here (their doctests are
numpy-only by definition).  Numpy-dependent doctests in modules that
*do* import without numpy (e.g. ``engine.py``) guard themselves with
``pytest.importorskip``.
"""

try:  # pragma: no cover - exercised implicitly on import
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy ships in the toolchain
    _HAVE_NUMPY = False

if not _HAVE_NUMPY:
    collect_ignore_glob = [
        "src/repro/envelope/flat*.py",
        "src/repro/envelope/packed.py",
    ]
