"""Tests for the experiment harness and every registered experiment."""

from __future__ import annotations

import pytest

import repro.bench.experiments as exps
from repro.bench.harness import (
    EXPERIMENT_REGISTRY,
    Table,
    run_experiment,
)
from repro.bench.workloads import occlusion_suite, scaling_suite
from repro.errors import BenchmarkError


class TestTable:
    def test_add_and_column(self):
        t = Table("T", "demo", ["a", "b"])
        t.add(a=1, b=2.5)
        t.add(a=3, b=0.001)
        assert t.column("a") == [1, 3]
        text = t.format()
        assert "T: demo" in text
        assert "2.500" in text

    def test_format_scientific(self):
        t = Table("T", "demo", ["x"])
        t.add(x=123456.0)
        assert "1.23e+05" in t.format()

    def test_notes(self):
        t = Table("T", "demo", ["x"])
        t.notes.append("hello")
        assert "note: hello" in t.format()


class TestRegistry:
    def test_all_registered(self):
        run_experiment.__module__  # force import side effects
        import repro.bench.experiments  # noqa: F401

        for name in exps.ALL_EXPERIMENTS:
            assert name in EXPERIMENT_REGISTRY

    def test_unknown(self):
        with pytest.raises(BenchmarkError):
            run_experiment("E99")


class TestWorkloads:
    def test_scaling_sizes_grow(self):
        suite = scaling_suite((9, 17))
        assert suite[0][1].n_edges < suite[1][1].n_edges

    def test_scaling_kinds(self):
        for kind in ("fractal", "valley"):
            suite = scaling_suite((9,), kind=kind)
            assert suite[0][0].startswith(kind)
        with pytest.raises(ValueError):
            scaling_suite((9,), kind="bogus")

    def test_occlusion_fixed_n(self):
        suite = occlusion_suite((0.0, 1.0), rows=10, cols=10)
        assert suite[0][1].n_edges == suite[1][1].n_edges


@pytest.mark.slow
class TestExperimentShapes:
    """Run each experiment (quick mode) and assert its reproduction
    criterion — the executable form of EXPERIMENTS.md."""

    def test_e1_depth_ratio_bounded(self):
        t = run_experiment("E1")
        ratios = t.column("depth/log4n")
        assert ratios[-1] <= max(ratios[0], 1.0) * 1.5

    def test_e2_work_ratio_bounded(self):
        t = run_experiment("E2")
        ratios = t.column("work/bound")
        assert max(ratios) <= 3.0

    def test_e3_output_sensitivity(self):
        t = run_experiment("E3")
        ks = t.column("k")
        par = t.column("par_work")
        naive = t.column("naive_ops")
        # k must fall substantially across the occlusion sweep.
        assert ks[-1] < ks[0] / 2
        # Parallel work falls with k; naive stays flat (within 20%).
        assert par[-1] < par[0]
        assert abs(naive[-1] - naive[0]) <= 0.2 * naive[0]

    def test_e4_log_factor(self):
        t = run_experiment("E4")
        vals = t.column("ratio/log_n")
        assert max(vals) <= 3.0

    def test_e5_sharing(self):
        t = run_experiment("E5")
        fracs = t.column("max_layer_shared_frac")
        savings = t.column("saving")
        assert max(fracs) > 0.15
        assert savings[-1] > 1.0

    def test_e6_cg_probes(self):
        t = run_experiment("E6")
        assert max(t.column("probes/log2")) <= 3.0

    def test_e7_acg_build(self):
        t = run_experiment("E7")
        assert max(t.column("ops/bound")) <= 2.0

    def test_e8_speedup_saturates(self):
        t = run_experiment("E8")
        speedups = t.column("speedup")
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_e9_envelope_depth(self):
        t = run_experiment("E9")
        assert max(t.column("depth/log2")) <= 2.0

    def test_e10_lemma32(self):
        t = run_experiment("E10")
        assert max(t.column("probes/bound")) <= 4.0

    def test_e11_ablation_consistent(self):
        t = run_experiment("E11")
        # Within a workload the three modes agree on k.
        by_wl: dict[str, set] = {}
        for row in t.rows:
            by_wl.setdefault(row["workload"], set()).add(row["k"])
        assert all(len(ks) == 1 for ks in by_wl.values())

    def test_e12_converges(self):
        t = run_experiment("E12")
        ratios = [
            row["len_ratio"] for row in t.rows if row["method"] == "z-buffer"
        ]
        assert abs(ratios[-1] - 1.0) < abs(ratios[0] - 1.0) + 1e-9
        assert abs(ratios[-1] - 1.0) < 0.25

    def test_e13_perspective(self):
        t = run_experiment("E13")
        assert all(t.column("engines_agree"))
        persp = [r["k"] for r in t.rows if r["view"] == "perspective"]
        assert persp == sorted(persp)

    def test_e14_ordering_linear(self):
        t = run_experiment("E14")
        assert max(t.column("constraints/n")) <= 3.5


class TestEnvelopeBench:
    def test_quick_comparison_writes_json(self, tmp_path):
        import json

        from repro.bench.envelope_bench import run_envelope_bench
        from repro.envelope.engine import HAVE_NUMPY

        out = tmp_path / "BENCH_envelope.json"
        t = run_envelope_bench(
            quick=True, repeats=1, ms=(64, 128), output=out
        )
        assert [r["m"] for r in t.rows if r["workload"] == "build"] == [
            64,
            128,
        ]
        payload = json.loads(out.read_text())
        assert payload["suite"] == "envelope-kernel"
        assert len(payload["rows"]) == len(t.rows)
        if HAVE_NUMPY:
            for row in t.rows:
                assert row["numpy_ms"] > 0
                assert row["speedup"] > 0

    def test_no_output_file(self, tmp_path, monkeypatch):
        from repro.bench.envelope_bench import run_envelope_bench

        monkeypatch.chdir(tmp_path)
        run_envelope_bench(quick=True, repeats=1, ms=(32,), output=None)
        assert not (tmp_path / "BENCH_envelope.json").exists()


class TestBenchHygieneRegression:
    """ISSUE 9 satellite: pin the PR-8 measurement-hygiene invariants
    so a refactor cannot silently reintroduce the cross-variant GC
    interference or the late-pipeline phase2 inflation they fixed."""

    def test_time_interleaved_collects_before_every_timed_call(
        self, monkeypatch
    ):
        # gc.collect must run before EACH timed call (not once per
        # repeat round): an allocation-heavy variant primes the
        # cyclic-GC counters, and without the per-call reset the next
        # variant pays the collection inside its timed region.
        from repro.bench import envelope_bench

        events: list[str] = []
        monkeypatch.setattr(
            envelope_bench.gc, "collect", lambda: events.append("gc")
        )
        fns = {
            "a": lambda: events.append("a"),
            "b": lambda: events.append("b"),
        }
        best = envelope_bench._time_interleaved(fns, 2)
        assert events == ["gc", "a", "gc", "b", "gc", "a", "gc", "b"]
        assert set(best) == {"a", "b"}
        assert all(v >= 0 for v in best.values())

    def test_phase2_rows_recorded_first_scenarios_last(self):
        # Row order is part of the measurement protocol: the phase2
        # persistent/direct pair must run in a fresh process (first),
        # and the scenario-matrix rows are appended at the end.
        from repro.bench.envelope_bench import run_envelope_bench
        from repro.envelope.engine import HAVE_NUMPY

        if not HAVE_NUMPY:
            pytest.skip("phase2/scenario rows need numpy")
        t = run_envelope_bench(quick=True, repeats=1, ms=(16,), output=None)
        workloads = [r["workload"] for r in t.rows]
        assert workloads[0] == "phase2-persistent"
        assert workloads[1] == "phase2-rope"
        scenario_idx = [
            i for i, w in enumerate(workloads) if w.startswith("scenario:")
        ]
        assert scenario_idx, "scenario rows missing from the bench"
        # Contiguous tail: nothing runs after the scenario rows.
        assert scenario_idx[-1] == len(workloads) - 1
        assert scenario_idx == list(
            range(scenario_idx[0], len(workloads))
        )
