"""Unit and property tests for envelope merging and D&C construction."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelope.build import build_envelope, build_envelope_sequential
from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import merge_envelopes, merge_many
from repro.geometry.primitives import NEG_INF
from repro.geometry.segments import ImageSegment
from repro.pram.tracker import PramTracker
from tests.conftest import brute_force_envelope_value, random_image_segments


def seg(y1, z1, y2, z2, src=0):
    return ImageSegment(float(y1), float(z1), float(y2), float(z2), src)


def env_of(*segs):
    return build_envelope(list(segs)).envelope


class TestMergeBasics:
    def test_merge_with_empty(self):
        e = Envelope.from_segment(seg(0, 0, 1, 1))
        assert merge_envelopes(e, Envelope.empty()).envelope.approx_equal(e)
        assert merge_envelopes(Envelope.empty(), e).envelope.approx_equal(e)

    def test_disjoint(self):
        a = Envelope.from_segment(seg(0, 0, 1, 0, 0))
        b = Envelope.from_segment(seg(2, 5, 3, 5, 1))
        m = merge_envelopes(a, b).envelope
        assert m.size == 2
        assert m.value_at(0.5) == 0.0
        assert m.value_at(2.5) == 5.0
        assert m.value_at(1.5) == NEG_INF

    def test_one_above(self):
        a = Envelope.from_segment(seg(0, 10, 4, 10, 0))
        b = Envelope.from_segment(seg(1, 0, 2, 1, 1))
        res = merge_envelopes(a, b)
        assert res.envelope.approx_equal(a)
        assert res.crossings == []

    def test_single_crossing(self):
        a = Envelope.from_segment(seg(0, 0, 10, 10, 0))
        b = Envelope.from_segment(seg(0, 10, 10, 0, 1))
        res = merge_envelopes(a, b)
        assert len(res.crossings) == 1
        c = res.crossings[0]
        assert math.isclose(c.y, 5.0) and math.isclose(c.z, 5.0)
        assert {c.front, c.back} == {0, 1}
        # max shape: V upside down — descending then ascending? No:
        # upper envelope of X shape is a V pointing down at the middle.
        assert math.isclose(res.envelope.value_at(0.0), 10.0)
        assert math.isclose(res.envelope.value_at(10.0), 10.0)
        assert math.isclose(res.envelope.value_at(5.0), 5.0)

    def test_tie_prefers_a(self):
        # Identical geometry, different sources: a's source must win.
        a = Envelope.from_segment(seg(0, 1, 1, 1, 7))
        b = Envelope.from_segment(seg(0, 1, 1, 1, 8))
        res = merge_envelopes(a, b)
        assert res.envelope.sources() == {7}
        assert res.crossings == []

    def test_partial_overlap_tie(self):
        # b extends beyond a with identical z where they overlap.
        a = Envelope.from_segment(seg(0, 1, 1, 1, 7))
        b = Envelope.from_segment(seg(0.5, 1, 2, 1, 8))
        res = merge_envelopes(a, b)
        m = res.envelope
        assert m.value_at(0.25) == 1.0
        assert m.value_at(1.5) == 1.0
        srcs = [p.source for p in m.pieces]
        assert srcs[0] == 7 and srcs[-1] == 8

    def test_jump_discontinuity(self):
        # a ends at z=0 where b starts at z=5: result has a jump, no
        # transversal crossing.
        a = Envelope.from_segment(seg(0, 0, 1, 0, 0))
        b = Envelope.from_segment(seg(1, 5, 2, 5, 1))
        res = merge_envelopes(a, b)
        assert res.crossings == []
        assert res.envelope.value_at(1.0) == 5.0

    def test_coalescing_keeps_size_small(self):
        # b is entirely below a but has many pieces: a must come back
        # as a single piece, not split at b's breakpoints.
        a = Envelope.from_segment(seg(0, 10, 10, 10, 0))
        pieces = [
            Piece(float(i), 1.0, float(i + 1), 1.0, 100 + i)
            for i in range(10)
        ]
        b = Envelope(pieces)
        res = merge_envelopes(a, b)
        assert res.envelope.size == 1


class TestMergeRandomised:
    def test_against_brute_force(self, rng):
        for trial in range(30):
            segs_a = random_image_segments(rng, rng.randint(1, 12))
            segs_b = [
                ImageSegment(s.y1, s.z1, s.y2, s.z2, 50 + i)
                for i, s in enumerate(
                    random_image_segments(rng, rng.randint(1, 12))
                )
            ]
            a = env_of(*segs_a)
            b = env_of(*segs_b)
            m = merge_envelopes(a, b).envelope
            m.validate()
            for _ in range(40):
                y = rng.uniform(-5, 105)
                want = max(a.value_at(y), b.value_at(y))
                got = m.value_at(y)
                if want == NEG_INF:
                    assert got == NEG_INF
                else:
                    assert abs(got - want) <= 1e-7

    def test_merge_many_matches_pairwise(self, rng):
        segs = random_image_segments(rng, 20)
        envs = [Envelope.from_segment(s) for s in segs]
        res = merge_many(envs)
        for _ in range(60):
            y = rng.uniform(0, 100)
            want = brute_force_envelope_value(segs, y)
            got = res.envelope.value_at(y)
            if want == NEG_INF:
                assert got == NEG_INF
            else:
                assert abs(got - want) <= 1e-7


@st.composite
def segment_lists(draw, max_size=16):
    n = draw(st.integers(1, max_size))
    out = []
    for i in range(n):
        y1 = draw(st.floats(0, 99, allow_nan=False))
        width = draw(st.floats(0.25, 40, allow_nan=False))
        z1 = draw(st.floats(0, 50, allow_nan=False))
        z2 = draw(st.floats(0, 50, allow_nan=False))
        out.append(ImageSegment(y1, z1, y1 + width, z2, i))
    return out


class TestBuildEnvelope:
    @given(segment_lists())
    @settings(max_examples=120, deadline=None)
    def test_dc_matches_brute_force(self, segs):
        env = build_envelope(segs).envelope
        env.validate()
        ys = sorted(
            {s.y1 for s in segs}
            | {s.y2 for s in segs}
            | {s.y1 + 0.37 * (s.y2 - s.y1) for s in segs}
        )
        for y in ys:
            want = brute_force_envelope_value(segs, y)
            got = env.value_at(y)
            if want == NEG_INF:
                assert got == NEG_INF
            else:
                assert abs(got - want) <= 1e-6 * (1 + abs(want))

    @given(segment_lists(max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_dc_matches_incremental(self, segs):
        a = build_envelope(segs).envelope
        b = build_envelope_sequential(segs).envelope
        assert a.approx_equal(b, eps=1e-6)

    def test_empty_input(self):
        assert build_envelope([]).envelope.size == 0

    def test_vertical_segments_skipped(self):
        segs = [seg(1, 0, 1, 5, 0), seg(0, 1, 2, 1, 1)]
        env = build_envelope(segs).envelope
        assert env.sources() == {1}

    def test_order_invariance(self, rng):
        segs = random_image_segments(rng, 25)
        e1 = build_envelope(segs).envelope
        shuffled = segs[:]
        rng.shuffle(shuffled)
        e2 = build_envelope(shuffled).envelope
        assert e1.approx_equal(e2)

    def test_tracker_depth_polylog(self):
        rng = random.Random(1)
        for m in (64, 256, 1024):
            segs = random_image_segments(rng, m)
            t = PramTracker()
            build_envelope(segs, tracker=t)
            # Lemma 3.1: depth O(log^2 m) — allow a generous constant.
            assert t.depth <= 4.0 * math.log2(m) ** 2
            assert t.work >= m  # at least reads every segment

    def test_envelope_size_near_linear(self, rng):
        # Upper envelope of m segments has size O(m alpha(m)); for
        # random segments it is well below 3m.
        segs = random_image_segments(rng, 400)
        env = build_envelope(segs).envelope
        assert env.size <= 3 * len(segs)
