"""Tests for DEM parsing and terrain serialisation."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.terrain.dem import dem_to_terrain, parse_esri_ascii, write_esri_ascii
from repro.terrain.generators import fractal_terrain
from repro.terrain.io import (
    load_terrain_json,
    load_terrain_obj,
    save_terrain_json,
    save_terrain_obj,
)

ASC = """ncols 3
nrows 2
xllcorner 0.0
yllcorner 0.0
cellsize 10.0
NODATA_value -9999
1 2 3
4 5 6
"""


class TestEsriAscii:
    def test_parse(self):
        h, cell = parse_esri_ascii(io.StringIO(ASC))
        assert cell == 10.0
        assert h.shape == (2, 3)
        # File row 0 is north; we flip so row 0 is south.
        assert h[0].tolist() == [4.0, 5.0, 6.0]
        assert h[1].tolist() == [1.0, 2.0, 3.0]

    def test_nodata_filled(self):
        text = ASC.replace("4 5 6", "-9999 5 6")
        h, _ = parse_esri_ascii(io.StringIO(text))
        assert h.min() >= 1.0  # hole filled with grid min

    def test_all_nodata_rejected(self):
        text = ASC.replace("1 2 3", "-9999 -9999 -9999").replace(
            "4 5 6", "-9999 -9999 -9999"
        )
        with pytest.raises(TerrainError, match="NODATA"):
            parse_esri_ascii(io.StringIO(text))

    def test_missing_header(self):
        with pytest.raises(TerrainError, match="missing header"):
            parse_esri_ascii(io.StringIO("1 2 3\n"))

    def test_wrong_value_count(self):
        with pytest.raises(TerrainError, match="expected 6"):
            parse_esri_ascii(
                io.StringIO(ASC.replace("4 5 6", "4 5"))
            )

    def test_roundtrip_via_file(self, tmp_path):
        h = np.arange(12, dtype=float).reshape(3, 4)
        path = tmp_path / "grid.asc"
        write_esri_ascii(h, path, cellsize=2.5)
        back, cell = parse_esri_ascii(path)
        assert cell == 2.5
        assert np.array_equal(back, h)

    def test_dem_to_terrain(self, tmp_path):
        h = np.random.default_rng(0).random((5, 6)) * 10
        path = tmp_path / "dem.asc"
        write_esri_ascii(h, path)
        t = dem_to_terrain(path, z_exaggeration=2.0)
        assert t.n_vertices == 30
        assert t.height_range()[1] <= 20.0

    def test_write_rejects_non_2d(self, tmp_path):
        with pytest.raises(TerrainError):
            write_esri_ascii(np.zeros(5), tmp_path / "x.asc")


class TestRealDemTileEndToEnd:
    """ISSUE 9 satellite: the committed real-DEM fixture tile flows
    through the genuine ingestion path (``dem_to_terrain``), a small
    viewshed runs end to end on it, and the JSON terrain round-trip is
    lossless — exact float equality, not approx."""

    def _tile_terrain(self):
        from importlib import resources

        ref = (
            resources.files("repro.scenarios") / "data/dem_tile.asc"
        )
        return dem_to_terrain(io.StringIO(ref.read_text()))

    def test_tile_ingests_with_nodata_hole_filled(self):
        terrain = self._tile_terrain()
        assert terrain.n_vertices == 64
        zs = [v.z for v in terrain.vertices]
        # The single NODATA cell is filled with the grid minimum, so
        # every elevation sits inside the tile's real range.
        assert all(586.2 - 1e-9 <= z <= 741.3 + 1e-9 for z in zs)

    def test_viewshed_end_to_end(self):
        from repro.hsr.sequential import SequentialHSR

        result = SequentialHSR().run(self._tile_terrain())
        assert result.stats.k > 0
        assert result.visibility_map.segments

    def test_json_roundtrip_lossless(self, tmp_path):
        terrain = self._tile_terrain()
        path = tmp_path / "tile.json"
        save_terrain_json(terrain, path)
        back = load_terrain_json(path)
        # Bit-exact: JSON carries full float precision (unlike the
        # OBJ path, which formats at %.9g).
        assert back.vertices == terrain.vertices
        assert back.faces == terrain.faces

    def test_roundtrip_preserves_viewshed(self, tmp_path):
        from repro.hsr.sequential import SequentialHSR

        terrain = self._tile_terrain()
        path = tmp_path / "tile.json"
        save_terrain_json(terrain, path)
        back = load_terrain_json(path)
        a = SequentialHSR().run(terrain)
        b = SequentialHSR().run(back)
        assert b.stats.k == a.stats.k
        assert b.stats.ops == a.stats.ops
        assert b.visibility_map.segments == a.visibility_map.segments


class TestJsonIO:
    def test_roundtrip(self, tmp_path):
        t = fractal_terrain(size=5, seed=1)
        path = tmp_path / "t.json"
        save_terrain_json(t, path)
        back = load_terrain_json(path)
        assert back.vertices == t.vertices
        assert back.faces == t.faces

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(TerrainError):
            load_terrain_json(path)


class TestObjIO:
    def test_roundtrip(self, tmp_path):
        t = fractal_terrain(size=5, seed=2)
        path = tmp_path / "t.obj"
        save_terrain_obj(t, path)
        back = load_terrain_obj(path)
        assert back.n_vertices == t.n_vertices
        assert back.faces == t.faces
        for a, b in zip(back.vertices, t.vertices):
            assert abs(a.x - b.x) < 1e-7
            assert abs(a.z - b.z) < 1e-7

    def test_comments_and_slashes(self, tmp_path):
        path = tmp_path / "t.obj"
        path.write_text(
            "# comment\nv 0 0 0\nv 1 0 1\nv 0 1 2\nf 1/1 2/2 3/3\n"
        )
        t = load_terrain_obj(path)
        assert t.n_faces == 1

    def test_non_triangle_rejected(self, tmp_path):
        path = tmp_path / "t.obj"
        path.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n")
        with pytest.raises(TerrainError, match="triangular"):
            load_terrain_obj(path)

    def test_malformed_vertex(self, tmp_path):
        path = tmp_path / "t.obj"
        path.write_text("v 0 0\n")
        with pytest.raises(TerrainError, match="malformed"):
            load_terrain_obj(path)


class TestHardenedJsonLoading:
    """ISSUE 6, satellite 1: malformed files get TerrainError with
    path/line/field context, never a raw parser exception."""

    def test_missing_file_carries_path(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(TerrainError, match="absent.json"):
            load_terrain_json(path)

    def test_bad_syntax_reports_line_and_column(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-terrain",\n  "vertices": [,]}')
        with pytest.raises(TerrainError, match=r"line 2, column"):
            load_terrain_json(path)

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TerrainError, match="not a repro terrain"):
            load_terrain_json(path)

    def test_non_list_vertices_field(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            '{"format": "repro-terrain", "vertices": 5, "faces": []}'
        )
        with pytest.raises(TerrainError, match="non-list 'vertices'"):
            load_terrain_json(path)

    def test_bad_vertex_entry_names_index(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            '{"format": "repro-terrain",'
            ' "vertices": [[0, 0, 1], ["a", 0]], "faces": []}'
        )
        with pytest.raises(TerrainError, match="vertex 1"):
            load_terrain_json(path)

    def test_bad_face_entry_names_index(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            '{"format": "repro-terrain",'
            ' "vertices": [[0, 0, 1], [1, 0, 1], [0, 1, 1]],'
            ' "faces": [[0, 1, 2], [0, "x", 2]]}'
        )
        with pytest.raises(TerrainError, match="face 1"):
            load_terrain_json(path)

    def test_nodata_sentinel_hole_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            '{"format": "repro-terrain",'
            ' "vertices": [[0, 0, 1], [1, 0, -9999.0], [0, 1, 1]],'
            ' "faces": [[0, 1, 2]]}'
        )
        with pytest.raises(TerrainError, match="vertex 1 is a nodata hole"):
            load_terrain_json(path, nodata=-9999.0)

    def test_null_z_hole_rejected(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(
            '{"format": "repro-terrain",'
            ' "vertices": [[0, 0, 1], [1, 0, null], [0, 1, 1]],'
            ' "faces": [[0, 1, 2]]}'
        )
        with pytest.raises(TerrainError, match="nodata hole"):
            load_terrain_json(path, nodata=-9999.0)

    def test_nan_vertex_rejected_with_path(self, tmp_path):
        from repro.errors import ValidationError

        path = tmp_path / "t.json"
        path.write_text(
            '{"format": "repro-terrain",'
            ' "vertices": [[0, 0, 1], [1, 0, NaN], [0, 1, 1]],'
            ' "faces": [[0, 1, 2]]}'
        )
        with pytest.raises(ValidationError, match="non-finite") as exc:
            load_terrain_json(path)
        assert "t.json" in str(exc.value)


class TestHardenedObjLoading:
    def test_missing_file_carries_path(self, tmp_path):
        with pytest.raises(TerrainError, match="absent.obj"):
            load_terrain_obj(tmp_path / "absent.obj")

    def test_non_numeric_vertex_reports_line(self, tmp_path):
        path = tmp_path / "t.obj"
        path.write_text("v 0 0 0\nv 1 zero 1\n")
        with pytest.raises(TerrainError, match=r"t\.obj:2: non-numeric"):
            load_terrain_obj(path)

    def test_non_integer_face_index_reports_line(self, tmp_path):
        path = tmp_path / "t.obj"
        path.write_text("v 0 0 0\nv 1 0 1\nv 0 1 2\nf 1 two 3\n")
        with pytest.raises(TerrainError, match=r"t\.obj:4: non-integer"):
            load_terrain_obj(path)

    def test_duplicate_xy_rejected_with_path(self, tmp_path):
        path = tmp_path / "t.obj"
        path.write_text("v 0 0 1\nv 1 0 1\nv 0 0 9\nf 1 2 3\n")
        with pytest.raises(TerrainError, match="share xy") as exc:
            load_terrain_obj(path)
        assert "t.obj" in str(exc.value)
