"""Property-based end-to-end tests: random mini-terrains through the
whole pipeline.

Hypothesis generates small height grids; the invariant under test is
the reproduction's core claim — sequential, naive and all parallel
engines agree — plus order-independence (two different valid linear
extensions of the in-front order give identical maps).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hsr.naive import NaiveHSR
from repro.hsr.parallel import ParallelHSR
from repro.hsr.sequential import SequentialHSR
from repro.ordering.sweep import front_to_back_order
from repro.terrain.generators import grid_terrain_from_heights


@st.composite
def height_grids(draw):
    rows = draw(st.integers(3, 6))
    cols = draw(st.integers(3, 6))
    cells = draw(
        st.lists(
            st.floats(0.0, 10.0, allow_nan=False),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    seed = draw(st.integers(0, 2**16))
    return np.array(cells).reshape(rows, cols), seed


class TestPipelineProperties:
    @given(height_grids())
    @settings(max_examples=40, deadline=None)
    def test_all_engines_agree(self, grid_and_seed):
        heights, seed = grid_and_seed
        terrain = grid_terrain_from_heights(heights, jitter_seed=seed)
        seq = SequentialHSR().run(terrain)
        for mode in ("direct", "persistent", "acg"):
            par = ParallelHSR(mode=mode).run(terrain)
            assert par.visibility_map.approx_same(
                seq.visibility_map, tol=1e-6
            ), "\n".join(
                par.visibility_map.difference_report(
                    seq.visibility_map
                )[:4]
            )

    @given(height_grids())
    @settings(max_examples=25, deadline=None)
    def test_matches_naive(self, grid_and_seed):
        heights, seed = grid_and_seed
        terrain = grid_terrain_from_heights(heights, jitter_seed=seed)
        seq = SequentialHSR().run(terrain)
        naive = NaiveHSR().run(terrain)
        assert seq.visibility_map.approx_same(
            naive.visibility_map, tol=1e-6
        )

    @given(height_grids())
    @settings(max_examples=25, deadline=None)
    def test_order_independence(self, grid_and_seed):
        heights, seed = grid_and_seed
        terrain = grid_terrain_from_heights(heights, jitter_seed=seed)
        o1 = front_to_back_order(terrain, tie_break="min")
        o2 = front_to_back_order(terrain, tie_break="max")
        a = SequentialHSR().run(terrain, order=o1)
        b = SequentialHSR().run(terrain, order=o2)
        assert a.visibility_map.approx_same(b.visibility_map, tol=1e-6)

    @given(height_grids())
    @settings(max_examples=25, deadline=None)
    def test_output_size_bounds(self, grid_and_seed):
        heights, seed = grid_and_seed
        terrain = grid_terrain_from_heights(heights, jitter_seed=seed)
        res = SequentialHSR().run(terrain)
        # k is at least the visible-edge count and at most the
        # theoretical worst case O(n^2) (loose sanity bounds).
        v = len(res.visibility_map.visible_edges())
        assert v <= terrain.n_edges
        assert res.k >= v
        assert res.k <= terrain.n_edges**2

    @given(height_grids(), st.floats(1.0, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_z_offset_invariance(self, grid_and_seed, dz):
        # Visibility is invariant under a global height shift.
        heights, seed = grid_and_seed
        t1 = grid_terrain_from_heights(heights, jitter_seed=seed)
        t2 = grid_terrain_from_heights(heights + dz, jitter_seed=seed)
        a = SequentialHSR().run(t1)
        b = SequentialHSR().run(t2)
        assert a.visibility_map.visible_edges() == (
            b.visibility_map.visible_edges()
        )
        for e in a.visibility_map.visible_edges():
            ia = a.visibility_map.edge_intervals(e)
            ib = b.visibility_map.edge_intervals(e)
            assert len(ia) == len(ib)
            for (a1, a2), (b1, b2) in zip(ia, ib):
                assert abs(a1 - b1) < 1e-6 and abs(a2 - b2) < 1e-6
