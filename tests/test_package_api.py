"""Contract tests for the public package surface."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro
from repro import errors


class TestLazyTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_exports_resolve(self):
        for name in (
            "Terrain",
            "generate_terrain",
            "ParallelHSR",
            "SequentialHSR",
            "NaiveHSR",
            "VisibilityMap",
            "PramTracker",
            "Envelope",
        ):
            assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_dir_lists_lazy_names(self):
        listing = dir(repro)
        assert "ParallelHSR" in listing
        assert "generate_terrain" in listing

    def test_import_is_cheap(self):
        # `import repro` must not pull in the heavy subpackages.
        code = (
            "import sys; import repro; "
            "assert 'repro.hsr' not in sys.modules, 'hsr loaded eagerly'; "
            "assert 'scipy' not in sys.modules, 'scipy loaded eagerly'; "
            "print('lazy-ok')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert "lazy-ok" in out.stdout


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, errors.ReproError)

    def test_catchable_as_base(self):
        pytest.importorskip("numpy")  # real generators only
        from repro.terrain import generate_terrain

        with pytest.raises(errors.ReproError):
            generate_terrain("not-a-kind")

    def test_distinct_categories(self):
        assert not issubclass(errors.TerrainError, errors.EnvelopeError)
        assert not issubclass(errors.PramError, errors.GeometryError)


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.geometry",
            "repro.envelope",
            "repro.persistence",
            "repro.pram",
            "repro.terrain",
            "repro.ordering",
            "repro.hsr",
            "repro.render",
            "repro.bench",
        ],
    )
    def test_all_names_exist(self, module_name):
        import importlib

        if module_name == "repro.bench":
            # The experiment harness drives the full pipeline.
            pytest.importorskip("numpy")
        mod = importlib.import_module(module_name)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module_name}.{name} missing"

    def test_no_private_leaks_in_all(self):
        import importlib

        for module_name in (
            "repro.geometry",
            "repro.envelope",
            "repro.hsr",
        ):
            mod = importlib.import_module(module_name)
            assert all(not n.startswith("_") for n in mod.__all__)
