"""Contract tests for the public package surface."""

from __future__ import annotations

import subprocess
import sys
import warnings

import pytest

import repro
from repro import errors
from repro._compat import reset_deprecation_registry

#: The complete top-level surface — an exact pin, so accidental
#: additions and removals both fail loudly.
EXPECTED_ALL = [
    "__version__",
    "HsrConfig",
    "DEFAULT_CONFIG",
    "Terrain",
    "generate_terrain",
    "ParallelHSR",
    "SequentialHSR",
    "NaiveHSR",
    "VisibilityMap",
    "point_visible",
    "visible_many",
    "VisibilityOracle",
    "batch_visible_parts",
    "ViewshedSession",
    "ViewshedServer",
    "PramTracker",
    "Envelope",
    "ReliabilityReport",
    "reliability_run",
    "validate_terrain",
    "validate_segments",
]


class TestLazyTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exact_public_surface(self):
        assert sorted(repro.__all__) == sorted(EXPECTED_ALL)
        assert len(repro.__all__) == 21

    def test_lazy_exports_resolve(self):
        pytest.importorskip("numpy")  # batch_visible_parts needs arrays
        for name in EXPECTED_ALL:
            assert getattr(repro, name) is not None, name

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_dir_lists_lazy_names(self):
        listing = dir(repro)
        assert "ParallelHSR" in listing
        assert "generate_terrain" in listing

    def test_import_is_cheap(self):
        # `import repro` must not pull in the heavy subpackages.
        code = (
            "import sys; import repro; "
            "assert 'repro.hsr' not in sys.modules, 'hsr loaded eagerly'; "
            "assert 'scipy' not in sys.modules, 'scipy loaded eagerly'; "
            "print('lazy-ok')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert "lazy-ok" in out.stdout


class TestImportIsWarningClean:
    def test_import_clean_under_error_deprecation(self):
        # The acceptance bar from the API redesign: importing the
        # package (and resolving the whole lazy surface) never emits
        # a DeprecationWarning — only deprecated *usage* does.
        code = (
            "import repro\n"
            "for name in repro.__all__:\n"
            "    getattr(repro, name)\n"
            "print('clean')\n"
        )
        out = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        assert "clean" in out.stdout


class TestDeprecatedPathsWarnOnce:
    """Each superseded call path emits exactly one DeprecationWarning
    per process (warn-once registry), then stays silent."""

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        reset_deprecation_registry()
        yield
        reset_deprecation_registry()

    @staticmethod
    def _count_deprecations(fn):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn()
            fn()  # second call must be silent
        return sum(
            1 for w in caught if issubclass(w.category, DeprecationWarning)
        )

    def test_pram_pool_available_workers(self):
        from repro.pram import pool

        assert self._count_deprecations(pool.available_workers) == 1

    def test_parallel_hsr_backend_kwarg(self):
        from repro.hsr.parallel import ParallelHSR
        from repro.pram.pool import SerialBackend

        assert (
            self._count_deprecations(
                lambda: ParallelHSR(backend=SerialBackend())
            )
            == 1
        )

    def test_point_visible_eps_kwarg(self):
        pytest.importorskip("numpy")
        from repro.hsr.queries import point_visible
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=5, seed=0)
        assert (
            self._count_deprecations(
                lambda: point_visible(terrain, (1.0, 1.0, 99.0), eps=1e-9)
            )
            == 1
        )

    def test_visibility_oracle_eps_kwarg(self):
        pytest.importorskip("numpy")
        from repro.hsr.queries import VisibilityOracle
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=5, seed=0)
        assert (
            self._count_deprecations(
                lambda: VisibilityOracle(terrain, eps=1e-9)
            )
            == 1
        )

    def test_persistence_treap_reexports(self):
        # Treap-era primitives re-exported at package level are
        # deprecated: one warning per name, repeat access silent, and
        # the resolved object is the real treap function.
        import repro.persistence as persistence
        from repro.persistence import treap

        assert self._count_deprecations(lambda: persistence.insert) == 1
        assert persistence.insert is treap.insert  # repeat: silent

    def test_persistence_import_warning_clean(self):
        # Plain import (and the supported rope/store names) must not
        # warn — only the deprecated treap re-exports do.
        assert (
            self._count_deprecations(
                lambda: (
                    __import__("repro.persistence"),
                    repro.persistence.PersistentEnvelope,
                    repro.persistence.Rope,
                )
            )
            == 0
        )

    def test_config_path_never_warns(self):
        pytest.importorskip("numpy")
        from repro.config import HsrConfig
        from repro.hsr.queries import point_visible
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=5, seed=0)
        assert (
            self._count_deprecations(
                lambda: point_visible(
                    terrain, (1.0, 1.0, 99.0), config=HsrConfig(eps=1e-9)
                )
            )
            == 0
        )


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, Exception)
            if name != "ReproError":
                assert issubclass(exc, errors.ReproError)

    def test_catchable_as_base(self):
        pytest.importorskip("numpy")  # real generators only
        from repro.terrain import generate_terrain

        with pytest.raises(errors.ReproError):
            generate_terrain("not-a-kind")

    def test_distinct_categories(self):
        assert not issubclass(errors.TerrainError, errors.EnvelopeError)
        assert not issubclass(errors.PramError, errors.GeometryError)


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.geometry",
            "repro.envelope",
            "repro.persistence",
            "repro.pram",
            "repro.terrain",
            "repro.ordering",
            "repro.hsr",
            "repro.render",
            "repro.bench",
            "repro.service",
            "repro.parallel_exec",
        ],
    )
    def test_all_names_exist(self, module_name):
        import importlib

        if module_name in ("repro.bench", "repro.parallel_exec"):
            # The experiment harness and the executor are array-based.
            pytest.importorskip("numpy")
        mod = importlib.import_module(module_name)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module_name}.{name} missing"

    def test_no_private_leaks_in_all(self):
        import importlib

        for module_name in (
            "repro.geometry",
            "repro.envelope",
            "repro.hsr",
        ):
            mod = importlib.import_module(module_name)
            assert all(not n.startswith("_") for n in mod.__all__)
