"""Unit and property tests for the instrumented PRAM primitives."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram.primitives import (
    parallel_max_index,
    parallel_merge_positions,
    parallel_prefix,
    parallel_reduce,
    prefix_combine,
)
from repro.pram.tracker import PramTracker


class TestParallelPrefix:
    def test_matches_cumsum(self):
        a = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert np.allclose(parallel_prefix(a), np.cumsum(a))

    def test_empty_and_single(self):
        assert parallel_prefix(np.array([])).shape == (0,)
        assert parallel_prefix(np.array([7.0]))[0] == 7.0

    @given(st.lists(st.floats(-100, 100, allow_nan=False), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_property(self, xs):
        a = np.array(xs, dtype=np.float64)
        got = parallel_prefix(a)
        assert np.allclose(got, np.cumsum(a), atol=1e-6)

    def test_depth_logarithmic(self):
        for n in (16, 256, 4096):
            t = PramTracker()
            parallel_prefix(np.ones(n), t)
            assert t.depth <= math.ceil(math.log2(n)) + 1


class TestPrefixCombine:
    def test_exclusive_prefix_sums(self):
        got = prefix_combine([1, 2, 3, 4], lambda a, b: a + b, 0)
        assert got == [0, 1, 3, 6]

    def test_non_power_of_two(self):
        got = prefix_combine([1, 2, 3, 4, 5], lambda a, b: a + b, 0)
        assert got == [0, 1, 3, 6, 10]

    def test_empty(self):
        assert prefix_combine([], lambda a, b: a + b, 0) == []

    def test_string_concat_order(self):
        # Non-commutative combine proves left-to-right ordering.
        got = prefix_combine(list("abcd"), lambda a, b: a + b, "")
        assert got == ["", "a", "ab", "abc"]

    def test_tracker_depth(self):
        t = PramTracker()
        prefix_combine(list(range(64)), lambda a, b: a + b, 0, t)
        # Up-sweep + down-sweep: ~2 log2(64) = 12 rounds.
        assert t.depth <= 2 * math.log2(64) + 2

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, xs):
        got = prefix_combine(xs, lambda a, b: a + b, 0)
        acc, want = 0, []
        for x in xs:
            want.append(acc)
            acc += x
        assert got == want


class TestReduceAndMax:
    def test_reduce(self):
        assert parallel_reduce(np.arange(10.0)) == 45.0
        assert parallel_reduce(np.array([])) == 0.0

    def test_reduce_depth(self):
        t = PramTracker()
        parallel_reduce(np.ones(1024), t)
        assert t.depth == 10

    def test_max_index(self):
        a = np.array([3.0, 9.0, 1.0, 9.0, 2.0])
        idx = parallel_max_index(a)
        assert a[idx] == 9.0

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_max_index_property(self, xs):
        a = np.array(xs)
        assert a[parallel_max_index(a)] == a.max()


class TestMergePositions:
    def test_interleaved(self):
        a = np.array([1.0, 3.0, 5.0])
        b = np.array([2.0, 4.0])
        pos = parallel_merge_positions(a, b)
        assert list(pos) == [0, 2, 4]

    def test_ties_favour_a(self):
        a = np.array([2.0])
        b = np.array([2.0, 2.0])
        pos = parallel_merge_positions(a, b)
        assert pos[0] == 0

    @given(
        st.lists(st.integers(0, 50), max_size=60),
        st.lists(st.integers(0, 50), max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_positions_valid(self, xs, ys):
        a = np.array(sorted(xs), dtype=float)
        b = np.array(sorted(ys), dtype=float)
        pos = parallel_merge_positions(a, b)
        merged = sorted(list(a) + list(b))
        for i, p in enumerate(pos):
            assert merged[int(p)] == a[i]
