"""Unit and property tests for repro.geometry.convex."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.convex import (
    convex_hull,
    hull_extreme_index,
    is_convex_chain,
    lower_hull,
    max_over_hull,
    min_over_hull,
    upper_hull,
)
from repro.geometry.primitives import Point2, cross2


def _pts(coords):
    return [Point2(float(x), float(y)) for x, y in coords]


class TestHulls:
    def test_triangle(self):
        pts = _pts([(0, 0), (2, 0), (1, 1)])
        assert lower_hull(pts) == _pts([(0, 0), (2, 0)])
        assert upper_hull(pts) == _pts([(0, 0), (1, 1), (2, 0)])

    def test_collinear_dropped(self):
        pts = _pts([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert lower_hull(pts) == _pts([(0, 0), (3, 0)])
        assert upper_hull(pts) == _pts([(0, 0), (3, 0)])

    def test_duplicates_removed(self):
        pts = _pts([(0, 0), (0, 0), (1, 1)])
        assert lower_hull(pts) == _pts([(0, 0), (1, 1)])

    def test_single_and_pair(self):
        assert lower_hull(_pts([(1, 2)])) == _pts([(1, 2)])
        assert upper_hull(_pts([(1, 2), (3, 4)])) == _pts([(1, 2), (3, 4)])

    def test_convex_hull_square_ccw(self):
        pts = _pts([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
        hull = convex_hull(pts)
        assert len(hull) == 4
        # CCW orientation: every consecutive triple turns left.
        for i in range(len(hull)):
            a, b, c = hull[i], hull[(i + 1) % 4], hull[(i + 2) % 4]
            assert cross2(a, b, c) > 0

    def test_is_convex_chain(self):
        assert is_convex_chain(_pts([(0, 1), (1, 0), (2, 1)]), lower=True)
        assert not is_convex_chain(
            _pts([(0, 0), (1, 1), (2, 0)]), lower=True
        )
        assert is_convex_chain(_pts([(0, 0), (1, 1), (2, 0)]), lower=False)
        # Unsorted x is never a valid chain.
        assert not is_convex_chain(_pts([(2, 0), (0, 0)]), lower=True)


class TestExtremeQueries:
    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            hull_extreme_index([], lambda p: p.y, maximize=True)

    def test_small_hull(self):
        hull = _pts([(0, 5), (1, 1), (2, 4)])
        assert hull_extreme_index(hull, lambda p: p.y, maximize=False) == 1
        assert hull_extreme_index(hull, lambda p: p.y, maximize=True) == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=3,
            max_size=60,
        ),
        st.floats(-5, 5, allow_nan=False),
        st.floats(-50, 50, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_extreme_matches_linear_scan(self, coords, a, b):
        pts = _pts(coords)
        hull = lower_hull(pts)
        if not hull:
            return
        got = min_over_hull(hull, a, b)
        want = min(p.y - (a * p.x + b) for p in hull)
        assert abs(got - want) <= 1e-9 * (1 + abs(want))
        hull_u = upper_hull(pts)
        got = max_over_hull(hull_u, a, b)
        want = max(p.y - (a * p.x + b) for p in hull_u)
        assert abs(got - want) <= 1e-9 * (1 + abs(want))

    def test_extreme_on_large_random_hull(self):
        rng = random.Random(42)
        pts = [
            Point2(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for _ in range(5000)
        ]
        hull = lower_hull(pts)
        for _ in range(50):
            a = rng.uniform(-3, 3)
            b = rng.uniform(-100, 100)
            got = min_over_hull(hull, a, b)
            want = min(p.y - (a * p.x + b) for p in hull)
            assert abs(got - want) <= 1e-6


class TestHullInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(-50, 50),
                st.integers(-50, 50),
            ),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_hull_contains_extremes_and_is_convex(self, coords):
        pts = _pts(coords)
        lo = lower_hull(pts)
        hi = upper_hull(pts)
        assert is_convex_chain(lo, lower=True)
        assert is_convex_chain(hi, lower=False)
        # Every input point lies on or above the lower hull.
        for p in pts:
            for q1, q2 in zip(lo, lo[1:]):
                if q1.x <= p.x <= q2.x and q1.x < q2.x:
                    t = (p.x - q1.x) / (q2.x - q1.x)
                    z = q1.y + t * (q2.y - q1.y)
                    assert p.y >= z - 1e-9
