"""Tests for the chunked-rope persistent store — model fuzz, treap
parity, O(1) checkout, sharing meters, and the ``rope_splice`` guard.

The rope (:mod:`repro.persistence.rope`) must be *bit-exact* against
two references: a plain sorted piece list driven through the same
window-local merge (the model), and the original persistent treap
(the oracle backend).  The hypothesis suites steer splices onto chunk
boundaries, straddling pieces, and interleaved version histories, and
re-run under ``CHUNK_TARGET`` 1 and 2 so every chunk-shape edge case
(capacity-1 chunks, all-boundary splices) is exercised.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import merge_envelopes
from repro.geometry.primitives import NEG_INF
from repro.geometry.segments import ImageSegment
from repro.persistence import rope as R
from repro.persistence import treap
from repro.persistence.envelope_store import (
    PersistentEnvelope,
    penv_range_pieces,
    penv_splice_merge,
    penv_value_at,
    resolve_backend,
)
from repro.reliability import faultinject as fi
from repro.reliability import guard
from tests.conftest import random_image_segments


@pytest.fixture(autouse=True)
def _fresh_guard():
    guard.reset_ambient()
    yield
    guard.reset_ambient()


def env_of(segs):
    return build_envelope(segs).envelope


# Small non-vertical segments over a narrow span so splices frequently
# straddle existing pieces and land on chunk boundaries.
seg_st = st.builds(
    lambda y1, w, z1, z2, src: ImageSegment(y1, z1, y1 + w, z2, src),
    st.floats(0.0, 30.0, allow_nan=False),
    st.floats(0.5, 8.0, allow_nan=False),
    st.floats(0.0, 20.0, allow_nan=False),
    st.floats(0.0, 20.0, allow_nan=False),
    st.integers(0, 500),
)
batch_st = st.lists(
    st.lists(seg_st, min_size=1, max_size=4), min_size=1, max_size=8
)


def apply_history(batches):
    """Drive the same envelope batches through rope, treap, and the
    plain-list model; return the three version histories."""
    ropes = [R.EMPTY]
    roots = [None]
    models = [[]]  # plain sorted piece lists
    for i, batch in enumerate(batches):
        other = env_of(
            [
                ImageSegment(s.y1, s.z1, s.y2, s.z2, 1000 * i + j)
                for j, s in enumerate(batch)
            ]
        )
        if not other.pieces:
            continue
        new_rope, res_r = R.rope_splice_merge(ropes[-1], other)
        new_root, res_t = penv_splice_merge(roots[-1], other)
        assert res_r.ops == res_t.ops
        assert len(res_r.crossings) == len(res_t.crossings)
        ropes.append(new_rope)
        roots.append(new_root)
        models.append(_model_splice(models[-1], other))
    return ropes, roots, models


def _model_splice(pieces, other):
    """The plain-list reference: extract the overlapped window with the
    same straddle/carry trims, merge, splice back."""
    ya, yb = other.y_span()
    if not pieces:
        return list(other.pieces)
    left, mid, right = [], [], []
    for p in pieces:
        if p.yb <= ya and not (p.ya < ya < p.yb):
            left.append(p)
        elif p.ya >= yb:
            right.append(p)
        else:
            mid.append(p)
    carry = None
    if mid:
        if mid[0].ya < ya:
            left.append(mid[0].clipped(mid[0].ya, ya))
            mid[0] = mid[0].clipped(ya, mid[0].yb)
        if mid[-1].yb > yb:
            carry = mid[-1].clipped(yb, mid[-1].yb)
            mid[-1] = mid[-1].clipped(mid[-1].ya, yb)
    res = merge_envelopes(Envelope(mid), other)
    merged = list(res.envelope.pieces)
    if carry is not None and carry.ya < carry.yb:
        merged.append(carry)
    return left + merged + right


class TestFuzzParity:
    @settings(max_examples=60, deadline=None)
    @given(batch_st)
    def test_rope_matches_treap_and_model(self, batches):
        ropes, roots, models = apply_history(batches)
        for rope, root, model in zip(ropes, roots, models):
            got = rope.to_pieces()
            assert got == [p for _, p in treap.to_list(root)]
            assert got == model

    @settings(max_examples=25, deadline=None)
    @given(batch_st, st.sampled_from([1, 2, 3]))
    def test_tiny_chunks(self, batches, target):
        # Capacity-1/2/3 chunks: every splice is a chunk-boundary
        # splice and spines get long — shapes the default 32 never hits.
        saved = R.CHUNK_TARGET
        R.CHUNK_TARGET = target
        try:
            ropes, roots, _ = apply_history(batches)
            for rope, root in zip(ropes, roots):
                assert rope.to_pieces() == [
                    p for _, p in treap.to_list(root)
                ]
                for c in rope.chunks:
                    assert 1 <= len(c) <= target
        finally:
            R.CHUNK_TARGET = saved

    @settings(max_examples=40, deadline=None)
    @given(batch_st, st.floats(-5.0, 45.0, allow_nan=False))
    def test_queries_match_treap(self, batches, y):
        ropes, roots, _ = apply_history(batches)
        rope, root = ropes[-1], roots[-1]
        assert R.rope_value_at(rope, y) == penv_value_at(root, y)
        assert R.rope_range_pieces(rope, y, y + 7.0) == penv_range_pieces(
            root, y, y + 7.0
        )

    @settings(max_examples=40, deadline=None)
    @given(batch_st)
    def test_old_versions_immutable(self, batches):
        ropes, _, models = apply_history(batches)
        # Every historical version still answers exactly its model —
        # later splices never disturbed a shared chunk.
        for rope, model in zip(ropes, models):
            assert rope.to_pieces() == model

    @settings(max_examples=30, deadline=None)
    @given(batch_st)
    def test_window_lanes_match_mid_pieces(self, batches):
        np = pytest.importorskip("numpy")
        ropes, _, _ = apply_history(batches)
        rope = ropes[-1]
        if rope.total == 0:
            return
        lo, hi = rope.piece_at(0).ya, rope.piece_at(rope.total - 1).yb
        for ya, yb in [(lo + 1.0, hi - 1.0), (lo, hi), (lo + 0.25, lo + 0.5)]:
            if not ya < yb:
                continue
            sr = R.SpliceRange(rope, ya, yb)
            mid = sr.mid_pieces()
            lanes = sr.window_lanes()
            assert len(lanes[0]) == len(mid)
            for j, p in enumerate(mid):
                assert (
                    p.ya == lanes[0][j]
                    and p.za == lanes[1][j]
                    and p.yb == lanes[2][j]
                    and p.zb == lanes[3][j]
                    and p.source == int(lanes[4][j])
                )
            assert np.isfinite(lanes[1]).all()


class TestCheckoutAndAllocation:
    def test_checkout_is_o1(self, rng):
        # Version checkout must allocate nothing: a version IS its
        # spine.  Pinned by the allocation counter, not wall clock.
        env = env_of(random_image_segments(rng, 400))
        pe = PersistentEnvelope.from_envelope(env, backend="rope")
        R.reset_allocation_count()
        checked_out = [PersistentEnvelope(pe.root) for _ in range(50)]
        for v in checked_out:
            assert v.size == env.size
            v.value_at(12.3)
        assert R.allocation_count() == 0

    def test_splice_allocates_locally(self):
        # A narrow splice allocates O(affected chunks), not O(n):
        # 1000 disjoint pieces, one splice in the middle.
        pieces = [
            Piece(float(i), 1.0, i + 0.9, 1.0, i) for i in range(1000)
        ]
        rope = R.rope_from_pieces(pieces)
        narrow = Envelope.from_segment(
            ImageSegment(500.2, 9.0, 500.7, 9.0, 7777)
        )
        R.reset_allocation_count()
        new_rope, _ = R.rope_splice_merge(rope, narrow)
        # At most the two boundary chunks refold plus the merged run.
        assert R.allocation_count() <= 2 * R.CHUNK_TARGET + 8
        assert new_rope.total >= rope.total

    def test_units_match_treap(self, rng):
        # Both backends meter allocations in piece slots: building the
        # same version from scratch costs the same count.
        env = env_of(random_image_segments(rng, 80))
        R.reset_allocation_count()
        R.rope_from_envelope(env)
        treap.reset_allocation_count()
        from repro.persistence.envelope_store import penv_from_envelope

        penv_from_envelope(env)
        assert R.allocation_count() == treap.allocation_count() == env.size


class TestSharingMeters:
    def test_narrow_splice_shares(self):
        pieces = [
            Piece(float(i), 1.0, i + 0.9, 1.0, i) for i in range(1000)
        ]
        rope = R.rope_from_pieces(pieces)
        narrow = Envelope.from_segment(
            ImageSegment(500.2, 9.0, 500.7, 9.0, 7777)
        )
        new_rope, _ = R.rope_splice_merge(rope, narrow)
        total_p, shared_p = R.count_shared_pieces(rope, new_rope)
        total_c, shared_c = R.count_shared_chunks(rope, new_rope)
        # Piece identity survives the splice outside the merged range;
        # chunk sharing is the coarser structural view.
        assert shared_p > 0.5 * rope.total
        assert shared_c > 0
        assert shared_p >= shared_c  # boundary slots refold as pieces
        assert total_p >= rope.total

    def test_disjoint_versions_share_nothing(self, rng):
        a = R.rope_from_envelope(env_of(random_image_segments(rng, 20)))
        b = R.rope_from_envelope(env_of(random_image_segments(rng, 20)))
        assert R.count_shared_pieces(a, b)[1] == 0
        assert R.count_shared_chunks(a, b)[1] == 0

    def test_lane_chunk_pieces_identity_cached(self):
        np = pytest.importorskip("numpy")
        block = np.arange(10, dtype=np.float64).reshape(5, 2).copy()
        block[0] = [0.0, 1.0]
        block[2] = [1.0, 2.0]
        block.flags.writeable = False
        c = R.Chunk.from_block(block)
        assert c.pieces is c.pieces  # cached: identity accounting holds
        assert c.piece_local(1) == c.pieces[1]
        assert c.starts == (0.0, 1.0)
        assert len(c) == 2 and c.ya_min == 0.0 and c.yb_max == 2.0


class TestRopeSpliceGuard:
    def _merge_once(self, rng):
        env = env_of(random_image_segments(rng, 40))
        rope = R.rope_from_envelope(env)
        other = env_of(
            [
                ImageSegment(s.y1, s.z1 + 5.0, s.y2, s.z2 + 5.0, 900 + i)
                for i, s in enumerate(random_image_segments(rng, 6))
            ]
        )
        new_rope, _ = R.rope_splice_merge(rope, other)
        return rope, other, new_rope

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_scalar_commit_recovers(self, rng, mode):
        rope, other, clean = self._merge_once(rng)
        with fi.inject("rope_splice", mode) as plan:
            faulted, _ = R.rope_splice_merge(rope, other)
        assert plan.fired == 1
        assert faulted.to_pieces() == clean.to_pieces()
        # The fallback rebuild shares no *chunks* (sharing sacrificed,
        # data intact); the scalar piece objects still flow through.
        assert R.count_shared_chunks(rope, faulted)[1] == 0

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_lane_commit_recovers(self, rng, mode):
        np = pytest.importorskip("numpy")
        rope, other, clean = self._merge_once(rng)
        sr = R.SpliceRange(rope, *other.y_span())
        res = merge_envelopes(Envelope(sr.mid_pieces()), other)
        merged = list(res.envelope.pieces)
        lanes = (
            np.array([p.ya for p in merged]),
            np.array([p.za for p in merged]),
            np.array([p.yb for p in merged]),
            np.array([p.zb for p in merged]),
            np.array([p.source for p in merged], np.int64),
        )
        carry = sr.carry
        if carry is not None and not (carry.ya < carry.yb):
            carry = None
        want = R.commit_splice_lanes(rope, sr, lanes, carry)
        assert want.to_pieces() == clean.to_pieces()
        with fi.inject("rope_splice", mode) as plan:
            faulted = R.commit_splice_lanes(rope, sr, lanes, carry)
        assert plan.fired == 1
        assert faulted.to_pieces() == clean.to_pieces()

    def test_strict_mode_raises(self, rng, monkeypatch):
        from repro.errors import KernelFault

        rope, other, _ = self._merge_once(rng)
        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        with fi.inject("rope_splice", "nan"):
            with pytest.raises(KernelFault) as exc:
                R.rope_splice_merge(rope, other)
        assert exc.value.site == "rope_splice"


class TestBackendDispatch:
    def test_default_is_rope(self):
        assert resolve_backend(None) == "rope"
        assert PersistentEnvelope.empty().backend == "rope"

    def test_env_var_override(self, monkeypatch):
        import repro.persistence.envelope_store as store

        monkeypatch.setattr(store, "PERSISTENT_BACKEND", "treap")
        assert store.resolve_backend(None) == "treap"
        assert PersistentEnvelope.empty().backend == "treap"
        assert store.resolve_backend("rope") == "rope"

    def test_unknown_backend_rejected(self):
        from repro.errors import PersistenceError

        with pytest.raises(PersistenceError):
            resolve_backend("btree")

    def test_wrapper_parity(self, rng):
        env = env_of(random_image_segments(rng, 30))
        other = env_of(
            [
                ImageSegment(s.y1, s.z1 + 3.0, s.y2, s.z2 + 3.0, 99 + i)
                for i, s in enumerate(random_image_segments(rng, 5))
            ]
        )
        out = {}
        for b in ("rope", "treap"):
            pe = PersistentEnvelope.from_envelope(env, backend=b)
            pe2, res = pe.merged_with(other)
            out[b] = (pe2.to_envelope().pieces, res.ops, pe2.size)
        assert out["rope"] == out["treap"]


class TestPhase2BackendParity:
    @pytest.mark.parametrize("family", ["fractal", "valley", "shielded"])
    def test_persistent_modes_bit_exact(self, family):
        pytest.importorskip("numpy")
        from repro.hsr.pct import build_pct
        from repro.hsr.phase2 import run_phase2
        from repro.ordering.separator import SeparatorTree
        from repro.ordering.sweep import front_to_back_order
        from repro.terrain.generators import (
            fractal_terrain,
            shielded_basin_terrain,
            valley_terrain,
        )

        terrain = {
            "fractal": lambda: fractal_terrain(size=17, seed=19),
            "valley": lambda: valley_terrain(rows=16, cols=16),
            "shielded": lambda: shielded_basin_terrain(rows=16, cols=16),
        }[family]()
        order = front_to_back_order(terrain)
        tree = SeparatorTree(order)
        segs = terrain.image_segments()
        pct = build_pct(tree, segs)
        rt = run_phase2(pct, segs, mode="persistent", backend="treap")
        rr = run_phase2(pct, segs, mode="persistent", backend="rope")
        assert rr.ops == rt.ops
        assert rr.crossings == rt.crossings
        for k, v in rt.visibility.items():
            assert [(p.ya, p.yb) for p in v.parts] == [
                (p.ya, p.yb) for p in rr.visibility[k].parts
            ]
        # The sharing-metered run keeps the same results and reports
        # per-layer piece sharing (the E5 meter).
        rs = run_phase2(
            pct, segs, mode="persistent", backend="rope",
            measure_sharing=True,
        )
        assert rs.ops == rr.ops and rs.crossings == rr.crossings
        assert any(
            layer.shared_nodes > 0 for layer in rs.layers
        )
