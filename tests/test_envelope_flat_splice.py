"""Tests for the flat-native incremental profile (flat_splice) and its
threading through SequentialHSR and the phase-2 direct mode.

Contract under test: ``SequentialHSR(engine="numpy")`` and the generic
``insert_segment_flat`` loop are *bit-exact* replicas of the
``engine="python"`` reference path — same visibility map, same ``ops``,
same ``max_profile_size``, same profile pieces — while the profile
never leaves its array representation (zero
``FlatEnvelope.from_pieces`` window conversions on the flat path).
"""

from __future__ import annotations

import pytest

import repro.envelope.engine as engine_mod
import repro.envelope.flat as flat_mod
from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.flat import FlatEnvelope
from repro.envelope.flat_splice import (
    FlatProfile,
    insert_segment_flat,
)
from repro.envelope.merge import merge_envelopes
from repro.envelope.splice import insert_segment, splice_merge
from repro.geometry.segments import ImageSegment
from tests.conftest import random_image_segments


class TestFlatProfile:
    def test_pieces_overlapping_matches_envelope(self, rng):
        for _ in range(20):
            segs = random_image_segments(rng, rng.randint(0, 60))
            env = build_envelope(segs, engine="python").envelope
            prof = FlatProfile.from_envelope(env)
            for _q in range(25):
                y1 = rng.uniform(-10, 110)
                y2 = y1 + rng.uniform(0, 50)
                assert prof.pieces_overlapping(y1, y2) == (
                    env.pieces_overlapping(y1, y2)
                )
            # Exact piece boundaries are the adversarial locates.
            for p in env.pieces[:10]:
                assert prof.pieces_overlapping(p.ya, p.yb) == (
                    env.pieces_overlapping(p.ya, p.yb)
                )

    def test_value_at_matches_envelope(self, rng):
        segs = random_image_segments(rng, 40)
        env = build_envelope(segs, engine="python").envelope
        prof = FlatProfile.from_envelope(env)
        ys = [rng.uniform(-10, 110) for _ in range(50)]
        ys += [p.ya for p in env.pieces[:10]]
        ys += [p.yb for p in env.pieces[:10]]
        for y in ys:
            assert prof.value_at(y) == env.value_at(y)

    def test_round_trip(self, rng):
        segs = random_image_segments(rng, 30)
        env = build_envelope(segs, engine="python").envelope
        assert FlatProfile.from_envelope(env).to_envelope().pieces == (
            env.pieces
        )
        assert FlatProfile.empty().to_envelope().pieces == []

    def test_splice_type_closed(self):
        prof = FlatProfile.empty()
        new = prof.splice(0, 0, [0.0], [1.0], [2.0], [1.0], [7])
        assert isinstance(new, FlatProfile)
        assert new.to_envelope().pieces[0].source == 7
        # Base-class splice stays a FlatEnvelope.
        fe = FlatEnvelope.empty().splice(0, 0, [0.0], [1.0], [2.0], [1.0], [7])
        assert type(fe) is FlatEnvelope

    def test_window_is_zero_copy(self, rng):
        segs = random_image_segments(rng, 30)
        prof = FlatProfile.from_envelope(
            build_envelope(segs, engine="python").envelope
        )
        w = prof.window(3, 9)
        assert w.ya.base is prof.ya
        assert len(w) == 6


class TestInsertSegmentFlat:
    def test_incremental_matches_python_engine(self, rng):
        for _ in range(10):
            segs = random_image_segments(rng, rng.randint(2, 60))
            env = Envelope.empty()
            prof = FlatProfile.empty()
            for s in segs:
                rp = insert_segment(env, s, engine="python")
                rf = insert_segment_flat(prof, s)
                assert rf.ops == rp.ops
                assert rf.visibility == rp.visibility
                env = rp.envelope
                prof = rf.profile
            assert prof.to_envelope().pieces == env.pieces

    def test_synthetic_source_fallback(self, rng):
        # Source -1 pieces coalesce on the EnvelopeBuilder slope rule;
        # the flat path must defer to the reference kernel there.
        segs = [
            ImageSegment(0.0, 1.0, 4.0, 2.0, -1),
            ImageSegment(2.0, 0.5, 6.0, 3.0, -1),
            ImageSegment(1.0, 2.5, 5.0, 2.5, 3),
        ]
        env = Envelope.empty()
        prof = FlatProfile.empty()
        for s in segs:
            rp = insert_segment(env, s, engine="python")
            rf = insert_segment_flat(prof, s)
            assert rf.ops == rp.ops
            env = rp.envelope
            prof = rf.profile
        assert prof.to_envelope().pieces == env.pieces


class TestVisibilityDispatchWindow:
    def test_flat_run_never_converts_windows(self, rng, monkeypatch):
        """Regression: the flat sequential path must perform zero
        ``FlatEnvelope.from_pieces`` conversions — the O(window) cost
        the pre-flat dispatch paid on every large-window query."""
        calls = []
        orig = FlatEnvelope.from_pieces

        def counting(pieces):
            calls.append(len(pieces))
            return orig(pieces)

        monkeypatch.setattr(FlatEnvelope, "from_pieces", staticmethod(counting))
        # Force every non-trivial window through the dispatched kernel.
        monkeypatch.setattr(engine_mod, "FLAT_VISIBILITY_CUTOFF", 2)
        monkeypatch.setattr(engine_mod, "FLAT_MERGE_CUTOFF", 2)
        segs = random_image_segments(rng, 150)
        prof = FlatProfile.empty()
        for s in segs:
            prof = insert_segment_flat(prof, s).profile
        assert calls == []
        assert prof.size > 0

    def test_dispatch_window_param_matches_scalar(self, rng):
        from repro.envelope.engine import visibility_dispatch
        from repro.envelope.visibility import visible_parts

        segs = random_image_segments(rng, 200)
        env = build_envelope(segs, engine="python").envelope
        prof = FlatProfile.from_envelope(env)
        for q in random_image_segments(rng, 20):
            lo, hi = prof.pieces_overlapping(q.y1, q.y2)
            got = visibility_dispatch(
                q, None, engine="numpy", window=prof.window(lo, hi)
            )
            assert got == visible_parts(q, env)


class TestSpliceMerge:
    def test_matches_full_merge_pointwise(self, rng):
        for _ in range(15):
            a = build_envelope(
                random_image_segments(rng, rng.randint(0, 40)),
                engine="python",
            ).envelope
            b = build_envelope(
                [
                    ImageSegment(s.y1, s.z1, s.y2, s.z2, 500 + s.source)
                    for s in random_image_segments(rng, rng.randint(1, 12))
                ],
                engine="python",
            ).envelope
            res = splice_merge(a, b, engine="python")
            full = merge_envelopes(a, b)
            assert res.envelope.approx_equal(full.envelope, eps=1e-9)
            assert res.crossings == full.crossings
            assert res.ops <= full.ops
            assert res.materialised == res.envelope.size
            res.envelope.validate()

    def test_empty_other_passthrough(self, rng):
        a = build_envelope(
            random_image_segments(rng, 10), engine="python"
        ).envelope
        res = splice_merge(a, Envelope.empty())
        assert res.envelope is a
        assert res.ops == 0 and res.materialised == 0

    def test_empty_env(self, rng):
        b = build_envelope(
            random_image_segments(rng, 5), engine="python"
        ).envelope
        res = splice_merge(Envelope.empty(), b, engine="python")
        assert res.envelope.pieces == b.pieces
        assert res.ops == b.size


class TestSequentialEngineParity:
    """Thin wrapper over the declarative scenario matrix (ISSUE 9):
    the hand-rolled fractal/valley/shielded-basin cases — including
    the forced-flat kernel variant, now a config axis — live in the
    ``parity-terrain`` / ``parity-occlusion`` scenarios of
    ``repro/scenarios/default_scenarios.json``.  The full matrix runs
    in ``tests/test_scenarios.py``; this wrapper pins the historical
    coverage by name so it cannot silently drop out of the spec."""

    def _instances(self, scenario_name):
        from repro.scenarios import default_spec

        return default_spec().scenario(scenario_name).instances()

    def test_terrain_scenarios_cover_historical_suite(self):
        from repro.scenarios import default_spec

        spec = default_spec()
        terrain = spec.scenario("parity-terrain")
        families = dict(terrain.cross)["family"]
        assert {"fractal", "valley", "shielded_basin"} <= set(families)
        # The old `kernels=forced-flat` leg is now a config variant.
        assert "numpy-forced-flat" in terrain.config_ids()
        occ = spec.scenario("parity-occlusion")
        assert set(dict(occ.cross)["occlusion"]) == {0.3, 1.2}

    @pytest.mark.parametrize("scenario", ["parity-terrain"])
    def test_terrain_matrix_parity(self, scenario):
        from repro.scenarios.instances import check_parity

        for inst in self._instances(scenario):
            check_parity(inst)

    def test_shielded_basin_churn(self):
        from repro.scenarios.instances import check_parity

        for inst in self._instances("parity-occlusion"):
            check_parity(inst)

    def test_final_profile_shares_run_path(self):
        from repro.hsr.sequential import SequentialHSR
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=9, seed=23)
        fp = SequentialHSR(engine="python").final_profile(terrain)
        fn = SequentialHSR(engine="numpy").final_profile(terrain)
        assert fn.pieces == fp.pieces
        fn.validate()


@pytest.mark.slow
class TestSequentialEngineParitySlow:
    def test_larger_workloads(self):
        from repro.bench.workloads import scaling_suite
        from repro.hsr.sequential import SequentialHSR

        for _label, terrain in scaling_suite(
            (17,), kind="fractal"
        ) + scaling_suite((17,), kind="valley"):
            rp = SequentialHSR(engine="python").run(terrain)
            rn = SequentialHSR(engine="numpy").run(terrain)
            assert rn.stats.ops == rp.stats.ops
            assert rn.stats.extra == rp.stats.extra
            assert rn.visibility_map.segments == (
                rp.visibility_map.segments
            )


class TestStreamMergeAblationStillExact:
    def test_flat_insert_with_argsort_ordering(self, rng):
        # The flat merge path must stay exact with the stream-merge
        # ablation toggled off (PR 2's composite-argsort ordering).
        old = flat_mod.USE_STREAM_MERGE
        flat_mod.USE_STREAM_MERGE = False
        try:
            segs = random_image_segments(rng, 120)
            env = Envelope.empty()
            prof = FlatProfile.empty()
            old_vis = engine_mod.FLAT_VISIBILITY_CUTOFF
            old_merge = engine_mod.FLAT_MERGE_CUTOFF
            engine_mod.FLAT_VISIBILITY_CUTOFF = 1
            engine_mod.FLAT_MERGE_CUTOFF = 1
            try:
                for s in segs:
                    rp = insert_segment(env, s, engine="python")
                    rf = insert_segment_flat(prof, s)
                    assert rf.ops == rp.ops
                    env = rp.envelope
                    prof = rf.profile
            finally:
                engine_mod.FLAT_VISIBILITY_CUTOFF = old_vis
                engine_mod.FLAT_MERGE_CUTOFF = old_merge
            assert prof.to_envelope().pieces == env.pieces
        finally:
            flat_mod.USE_STREAM_MERGE = old
