"""Engine-equivalence suite: the NumPy kernel must be an exact replica
of the pure-Python reference.

Unlike the tolerance-based comparisons elsewhere in the test suite,
these assertions are *exact*: same pieces (bit-for-bit floats), same
sources, same crossings, same ``ops``.  The flat kernel mirrors the
scalar arithmetic operation for operation, so anything weaker would
hide a divergence.

The hypothesis strategies are deliberately adversarial: endpoint
coordinates come from a small shared pool with jitters of ``0``,
``eps`` and sub-``eps`` sizes, producing coincident pieces,
eps-touching endpoints, gaps, and near-parallel crossings far more
often than uniform sampling would.
"""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelope.build import build_envelope, build_envelope_sequential
from repro.envelope.chain import Envelope, Piece
from repro.envelope.engine import FLAT_MERGE_CUTOFF, merge_dispatch
from repro.envelope.flat import (
    FlatEnvelope,
    build_envelope_flat,
    merge_envelopes_flat,
)
from repro.envelope.merge import merge_envelopes, merge_many
from repro.errors import EnvelopeError
from repro.geometry.primitives import NEG_INF
from repro.geometry.segments import ImageSegment
from repro.pram.tracker import PramTracker
from tests.conftest import random_image_segments

# A coarse coordinate pool plus eps-scale jitters: exact coincidences
# and barely-separated endpoints appear with high probability.
_JITTERS = (0.0, 0.0, 1e-9, -1e-9, 5e-10, 1e-12, 2e-9)


@st.composite
def adversarial_segments(draw, max_segments=10, src_base=0):
    n = draw(st.integers(0, max_segments))
    out = []
    for i in range(n):
        y1 = draw(st.integers(0, 12)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        width = draw(st.integers(1, 8)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        z1 = draw(st.integers(0, 8)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        # Near-parallel crossings: z2 close to z1 plus a tiny tilt.
        z2 = draw(
            st.one_of(
                st.integers(0, 8).map(lambda k: k * 0.5),
                st.just(z1),
                st.sampled_from(_JITTERS).map(lambda j: z1 + j),
            )
        )
        out.append(ImageSegment(y1, z1, y1 + abs(width), z2, src_base + i))
    return out


def env_of(segs):
    return build_envelope(segs, engine="python").envelope


def assert_merge_identical(a: Envelope, b: Envelope) -> None:
    ref = merge_envelopes(a, b)
    got = merge_envelopes_flat(a, b)
    assert got.envelope.to_envelope().pieces == ref.envelope.pieces
    assert got.crossings == ref.crossings
    assert got.ops == ref.ops


class TestRoundTrip:
    @given(adversarial_segments())
    @settings(max_examples=100, deadline=None)
    def test_envelope_round_trip(self, segs):
        env = env_of(segs)
        flat = FlatEnvelope.from_envelope(env)
        flat.validate()
        assert flat.to_envelope().pieces == env.pieces
        assert flat.size == env.size

    def test_empty_round_trip(self):
        assert FlatEnvelope.from_envelope(Envelope.empty()).to_envelope().pieces == []
        assert not FlatEnvelope.empty()

    def test_validate_rejects_overlap(self):
        bad = FlatEnvelope.from_envelope(Envelope.empty())
        bad.ya = np.array([0.0, 0.5])
        bad.za = np.array([0.0, 0.0])
        bad.yb = np.array([1.0, 1.5])
        bad.zb = np.array([0.0, 0.0])
        bad.source = np.array([0, 1])
        with pytest.raises(EnvelopeError):
            bad.validate()


class TestMergeParity:
    @given(
        adversarial_segments(src_base=0),
        adversarial_segments(src_base=100),
    )
    @settings(max_examples=150, deadline=None)
    def test_adversarial_pairs(self, sa, sb):
        assert_merge_identical(env_of(sa), env_of(sb))

    @pytest.mark.slow
    @given(
        adversarial_segments(max_segments=24, src_base=0),
        adversarial_segments(max_segments=24, src_base=100),
    )
    @settings(max_examples=300, deadline=None)
    def test_adversarial_pairs_deep(self, sa, sb):
        assert_merge_identical(env_of(sa), env_of(sb))

    def test_coincident_pieces(self):
        # Identical geometry, different sources — ties must go to ``a``
        # in both engines, with no crossings.
        a = env_of([ImageSegment(0.0, 1.0, 4.0, 3.0, 7)])
        b = env_of([ImageSegment(0.0, 1.0, 4.0, 3.0, 8)])
        assert_merge_identical(a, b)
        res = merge_envelopes_flat(a, b)
        assert res.envelope.to_envelope().sources() == {7}
        assert res.crossings == []

    def test_eps_touching_endpoints(self):
        for offset in (0.0, 1e-9, -1e-9, 1e-12, 2e-9):
            a = env_of([ImageSegment(0.0, 1.0, 2.0, 1.0, 0)])
            b = env_of([ImageSegment(2.0 + offset, 1.0, 4.0, 1.0, 1)])
            assert_merge_identical(a, b)

    def test_gaps(self):
        a = env_of(
            [
                ImageSegment(0.0, 1.0, 1.0, 1.0, 0),
                ImageSegment(5.0, 2.0, 6.0, 2.0, 1),
            ]
        )
        b = env_of([ImageSegment(2.0, 3.0, 3.0, 3.0, 2)])
        assert_merge_identical(a, b)

    def test_near_parallel_crossing(self):
        a = env_of([ImageSegment(0.0, 1.0, 10.0, 1.0 + 3e-9, 0)])
        b = env_of([ImageSegment(0.0, 1.0 + 2e-9, 10.0, 1.0 - 1e-9, 1)])
        assert_merge_identical(a, b)

    def test_steep_crossing(self):
        a = env_of([ImageSegment(0.0, 0.0, 10.0, 10.0, 0)])
        b = env_of([ImageSegment(0.0, 10.0, 10.0, 0.0, 1)])
        assert_merge_identical(a, b)
        res = merge_envelopes_flat(a, b)
        assert len(res.crossings) == 1

    def test_empty_sides(self):
        e = Envelope.empty()
        a = env_of([ImageSegment(0.0, 1.0, 2.0, 2.0, 0)])
        for x, y in ((a, e), (e, a), (e, e)):
            assert_merge_identical(x, y)
        # Empty-side fast path returns the other side verbatim.
        res = merge_envelopes_flat(e, a)
        assert res.ops == a.size and res.crossings == []

    def test_flat_inputs_accepted(self):
        a = env_of([ImageSegment(0.0, 0.0, 4.0, 4.0, 0)])
        b = env_of([ImageSegment(0.0, 4.0, 4.0, 0.0, 1)])
        ref = merge_envelopes_flat(a, b)
        got = merge_envelopes_flat(
            FlatEnvelope.from_envelope(a), FlatEnvelope.from_envelope(b)
        )
        assert got.envelope.to_envelope().pieces == ref.envelope.to_envelope().pieces
        assert got.crossings == ref.crossings and got.ops == ref.ops

    def test_synthetic_source_coalescing(self):
        # Source -1 pieces exercise the sequential-coalesce fallback.
        a = Envelope(
            [Piece(0.0, 1.0, 2.0, 1.0, -1), Piece(2.0, 1.0, 4.0, 1.0, -1)]
        )
        b = env_of([ImageSegment(1.0, 0.5, 3.0, 0.5, 5)])
        assert_merge_identical(a, b)


class TestDispatch:
    def test_dispatch_matches_both_sides_of_cutoff(self, rng):
        small = env_of(random_image_segments(rng, 4))
        big_a = env_of(random_image_segments(rng, FLAT_MERGE_CUTOFF * 2))
        big_b = env_of(
            [
                ImageSegment(s.y1, s.z1, s.y2, s.z2, 500 + i)
                for i, s in enumerate(
                    random_image_segments(rng, FLAT_MERGE_CUTOFF * 2)
                )
            ]
        )
        for a, b in ((small, small), (big_a, big_b)):
            ref = merge_envelopes(a, b)
            for engine in ("python", "numpy", None):
                got = merge_dispatch(a, b, engine=engine)
                assert got.envelope.pieces == ref.envelope.pieces
                assert got.crossings == ref.crossings
                assert got.ops == ref.ops


class TestBuildParity:
    @given(adversarial_segments(max_segments=20))
    @settings(max_examples=100, deadline=None)
    def test_build_engines_identical(self, segs):
        rp = build_envelope(segs, engine="python")
        rn = build_envelope(segs, engine="numpy")
        assert rn.envelope.pieces == rp.envelope.pieces
        assert rn.crossings == rp.crossings
        assert rn.ops == rp.ops

    @pytest.mark.slow
    def test_build_parity_large_random(self):
        rng = random.Random(20480)
        for m in (63, 64, 65, 257, 1024):
            segs = random_image_segments(rng, m)
            rp = build_envelope(segs, engine="python")
            rn = build_envelope(segs, engine="numpy")
            assert rn.envelope.pieces == rp.envelope.pieces, m
            assert rn.crossings == rp.crossings, m
            assert rn.ops == rp.ops, m

    def test_tracker_charges_identical(self):
        rng = random.Random(7)
        for m in (1, 2, 3, 17, 200):
            segs = random_image_segments(rng, m)
            tp, tn = PramTracker(), PramTracker()
            build_envelope(segs, engine="python", tracker=tp)
            build_envelope(segs, engine="numpy", tracker=tn)
            assert tp.work == tn.work, m
            assert tp.depth == tn.depth, m

    def test_vertical_segments_skipped(self):
        segs = [
            ImageSegment(1.0, 0.0, 1.0, 5.0, 0),
            ImageSegment(0.0, 1.0, 2.0, 1.0, 1),
        ]
        rp = build_envelope(segs, engine="python")
        rn = build_envelope(segs, engine="numpy")
        assert rn.envelope.pieces == rp.envelope.pieces
        assert rn.envelope.sources() == {1}

    def test_empty_input(self):
        assert build_envelope([], engine="numpy").envelope.size == 0

    def test_flat_build_result_ops(self, rng):
        segs = random_image_segments(rng, 100)
        fb = build_envelope_flat(segs)
        ref = build_envelope(segs, engine="python")
        assert fb.n_segments + fb.total_merge_ops == ref.ops
        assert fb.n_segments + sum(fb.node_ops.values()) == ref.ops


class TestZAtMany:
    @given(adversarial_segments(max_segments=12))
    @settings(max_examples=100, deadline=None)
    def test_matches_value_at(self, segs):
        env = env_of(segs)
        flat = FlatEnvelope.from_envelope(env)
        ys = [p.ya for p in env.pieces] + [p.yb for p in env.pieces]
        ys += [0.5 * (p.ya + p.yb) for p in env.pieces]
        ys += [-1.0, 100.0, 3.14159]
        got = flat.z_at_many(np.array(ys))
        for y, g in zip(ys, got.tolist()):
            want = env.value_at(y)
            if want == NEG_INF:
                assert g == NEG_INF
            else:
                assert g == want, y

    def test_empty(self):
        out = FlatEnvelope.empty().z_at_many(np.array([0.0, 1.0]))
        assert np.all(out == NEG_INF)


class TestMergeMany:
    def test_balanced_matches_brute_force(self, rng):
        segs = random_image_segments(rng, 24)
        envs = [Envelope.from_segment(s) for s in segs]
        for engine in ("python", "numpy"):
            res = merge_many(envs, engine=engine)
            res.envelope.validate()
            for _ in range(60):
                y = rng.uniform(0, 100)
                want = max(
                    (e.value_at(y) for e in envs), default=NEG_INF
                )
                got = res.envelope.value_at(y)
                if want == NEG_INF:
                    assert got == NEG_INF
                else:
                    assert abs(got - want) <= 1e-7

    def test_engines_identical(self, rng):
        segs = random_image_segments(rng, 17)
        envs = [Envelope.from_segment(s) for s in segs]
        rp = merge_many(envs, engine="python")
        rn = merge_many(envs, engine="numpy")
        assert rn.envelope.pieces == rp.envelope.pieces
        assert rn.crossings == rp.crossings
        assert rn.ops == rp.ops

    def test_earlier_envelope_wins_ties(self):
        # Same geometry in all inputs: the first source must win, as
        # it did under the left fold.
        envs = [
            Envelope([Piece(0.0, 1.0, 2.0, 1.0, s)]) for s in (3, 5, 9)
        ]
        for engine in ("python", "numpy"):
            res = merge_many(envs, engine=engine)
            assert res.envelope.sources() == {3}

    def test_empty(self):
        assert merge_many([]).envelope.size == 0


class TestMergeSortedStreams:
    """The segmented two-way-merge primitive vs a lexsort reference."""

    @staticmethod
    def _random_stream(rng, n_groups, max_per_group, lo=-1e3, hi=1e3):
        groups, vals = [], []
        for g in range(n_groups):
            k = rng.randint(0, max_per_group)
            groups.extend([g] * k)
            vals.extend(sorted(rng.uniform(lo, hi) for _ in range(k)))
        return (
            np.array(vals, np.float64),
            np.array(groups, np.int64),
        )

    def _check(self, a_vals, a_groups, b_vals, b_groups, n_groups):
        from repro.envelope.flat import merge_sorted_streams

        order = merge_sorted_streams(
            a_vals, a_groups, b_vals, b_groups, n_groups
        )
        vals = np.concatenate([a_vals, b_vals])[order]
        grps = np.concatenate([a_groups, b_groups])[order]
        ref = np.lexsort(
            (
                np.concatenate([a_vals, b_vals]),
                np.concatenate([a_groups, b_groups]),
            )
        )
        assert np.array_equal(
            grps, np.concatenate([a_groups, b_groups])[ref]
        )
        assert np.array_equal(
            vals, np.concatenate([a_vals, b_vals])[ref]
        )
        # A valid permutation, (group, value)-sorted.
        assert sorted(order.tolist()) == list(range(len(order)))

    def test_random_streams(self, rng):
        for n_groups, max_per in ((1, 40), (7, 9), (64, 3), (256, 2)):
            a = self._random_stream(rng, n_groups, max_per)
            b = self._random_stream(rng, n_groups, max_per)
            self._check(a[0], a[1], b[0], b[1], n_groups)

    def test_exact_ties_prefer_a(self):
        from repro.envelope.flat import merge_sorted_streams

        a = np.array([1.0, 2.0])
        b = np.array([1.0, 2.0])
        g = np.zeros(2, np.int64)
        order = merge_sorted_streams(a, g, b, g, 1)
        # a's elements (indices 0..1) precede b's equal elements.
        assert order.tolist() == [0, 2, 1, 3]

    def test_negative_and_zero_values(self, rng):
        a = self._random_stream(rng, 5, 6, lo=-10.0, hi=10.0)
        b_vals = np.array([-0.0, 0.0, 0.0])
        b_groups = np.array([0, 2, 4], np.int64)
        self._check(a[0], a[1], b_vals, b_groups, 5)

    def test_packing_overflow_falls_back(self, rng):
        # Per-group key spans covering the whole double exponent range
        # across many groups force the packed-range overflow; the
        # bounded binary search must take over with identical results.
        # b-segments exceed _BINSEARCH_MAX_SEGMENT so the packed path
        # is attempted first.
        n_groups = 40
        vals, groups = [], []
        for g in range(n_groups):
            vals.extend([-1e308, g * 1.0, 1e308])
            groups.extend([g] * 3)
        a = (np.array(vals), np.array(groups, np.int64))
        b = self._random_stream(
            rng, n_groups, 30, lo=-1e300, hi=1e300
        )
        from repro.envelope.flat import (
            _group_offsets,
            _order_keys,
            _pack_group_keys,
        )

        assert (
            _pack_group_keys(
                n_groups,
                (
                    (
                        _order_keys(a[0]),
                        a[1],
                        _group_offsets(a[1], n_groups),
                    ),
                ),
            )
            is None
        )
        self._check(a[0], a[1], b[0], b[1], n_groups)

    def test_segmented_binsearch_matches_numpy(self, rng):
        from repro.envelope.flat import (
            _group_offsets,
            _segmented_searchsorted,
        )

        b_vals, b_groups = self._random_stream(rng, 9, 12)
        a_vals, a_groups = self._random_stream(rng, 9, 12)
        b_off = _group_offsets(b_groups, 9)
        got = _segmented_searchsorted(
            b_vals, b_off, a_vals, a_groups
        )
        for i, (v, g) in enumerate(
            zip(a_vals.tolist(), a_groups.tolist())
        ):
            seg = b_vals[b_off[g] : b_off[g + 1]]
            want = int(b_off[g]) + int(
                np.searchsorted(seg, v, side="left")
            )
            assert got[i] == want


class TestSequentialGuard:
    def test_warns_above_threshold(self, rng):
        segs = random_image_segments(rng, 8)
        with warnings.catch_warnings(record=True) as wlist:
            warnings.simplefilter("always")
            build_envelope_sequential(segs, max_segments=4)
        assert any(
            issubclass(w.category, RuntimeWarning) for w in wlist
        )

    def test_raises_when_asked(self, rng):
        segs = random_image_segments(rng, 8)
        with pytest.raises(EnvelopeError, match="m²"):
            build_envelope_sequential(
                segs, max_segments=4, on_exceed="raise"
            )

    def test_silent_below_threshold_and_when_disabled(self, rng):
        segs = random_image_segments(rng, 8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build_envelope_sequential(segs, max_segments=8)
            build_envelope_sequential(segs, max_segments=None)

    def test_unknown_policy_rejected(self, rng):
        with pytest.raises(EnvelopeError, match="on_exceed"):
            build_envelope_sequential(
                random_image_segments(rng, 2), on_exceed="explode"
            )
