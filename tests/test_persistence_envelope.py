"""Tests for the persistent envelope store (treap-backed profiles)."""

from __future__ import annotations


from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.merge import merge_envelopes
from repro.geometry.primitives import NEG_INF
from repro.geometry.segments import ImageSegment
from repro.persistence import treap
from repro.persistence.envelope_store import (
    PersistentEnvelope,
    penv_from_envelope,
    penv_range_pieces,
    penv_splice_merge,
    penv_value_at,
    penv_visible_parts,
)
from repro.envelope.visibility import visible_parts
from tests.conftest import random_image_segments


def env_of(segs):
    return build_envelope(segs).envelope


class TestRoundtrip:
    def test_from_to_envelope(self, rng):
        env = env_of(random_image_segments(rng, 20))
        pe = PersistentEnvelope.from_envelope(env)
        back = pe.to_envelope()
        assert back.approx_equal(env)
        assert pe.size == env.size

    def test_empty(self):
        pe = PersistentEnvelope.empty()
        assert pe.size == 0
        assert pe.value_at(3.0) == NEG_INF
        assert pe.to_envelope().size == 0


class TestValueAt:
    def test_matches_array(self, rng):
        env = env_of(random_image_segments(rng, 30))
        root = penv_from_envelope(env)
        for _ in range(200):
            y = rng.uniform(-10, 110)
            a = env.value_at(y)
            b = penv_value_at(root, y)
            if a == NEG_INF:
                # Treap value_at uses closed-piece convention; at exact
                # shared breakpoints the array version may report the
                # neighbour max — only compare where both are finite or
                # both gaps away from breakpoints.
                assert b == NEG_INF or any(
                    abs(p.ya - y) < 1e-9 or abs(p.yb - y) < 1e-9
                    for p in env.pieces
                )
            else:
                assert b == NEG_INF or abs(a - b) <= 1e-9


class TestRangePieces:
    def test_includes_straddler(self, rng):
        env = env_of(random_image_segments(rng, 25))
        root = penv_from_envelope(env)
        lo, hi = env.y_span()
        mid1 = lo + 0.3 * (hi - lo)
        mid2 = lo + 0.6 * (hi - lo)
        pieces = penv_range_pieces(root, mid1, mid2)
        # Every piece overlapping (mid1, mid2) must be present.
        want = [
            p for p in env.pieces if p.yb >= mid1 and p.ya < mid2
        ]
        assert [p for p in pieces if p.yb > mid1] == [
            p for p in want if p.yb > mid1
        ]

    def test_empty_root(self):
        assert penv_range_pieces(None, 0.0, 1.0) == []


class TestSpliceMerge:
    def test_matches_array_merge(self, rng):
        for _ in range(20):
            base = env_of(random_image_segments(rng, rng.randint(1, 20)))
            other_segs = [
                ImageSegment(s.y1, s.z1, s.y2, s.z2, 100 + i)
                for i, s in enumerate(
                    random_image_segments(rng, rng.randint(1, 10))
                )
            ]
            other = env_of(other_segs)
            root = penv_from_envelope(base)
            new_root, _res = penv_splice_merge(root, other)
            got = Envelope([p for _, p in treap.to_list(new_root)])
            want = merge_envelopes(base, other).envelope
            assert got.approx_equal(want, eps=1e-7), (
                f"splice merge mismatch: {got!r} vs {want!r}"
            )

    def test_merge_into_empty(self, rng):
        other = env_of(random_image_segments(rng, 5))
        new_root, _ = penv_splice_merge(None, other)
        got = Envelope([p for _, p in treap.to_list(new_root)])
        assert got.approx_equal(other)

    def test_merge_empty_other(self, rng):
        base = env_of(random_image_segments(rng, 5))
        root = penv_from_envelope(base)
        new_root, res = penv_splice_merge(root, Envelope.empty())
        assert new_root is root
        assert res.ops == 0

    def test_old_version_unchanged(self, rng):
        base = env_of(random_image_segments(rng, 15))
        root = penv_from_envelope(base)
        before = treap.to_list(root)
        other = env_of(
            [
                ImageSegment(s.y1, s.z1 + 100, s.y2, s.z2 + 100, 99)
                for s in random_image_segments(rng, 5)
            ]
        )
        penv_splice_merge(root, other)
        assert treap.to_list(root) == before

    def test_sharing_outside_range(self, rng):
        # Merge a narrow envelope: pieces far from its span must be
        # the same node objects in both versions.
        segs = random_image_segments(rng, 60, y_range=(0.0, 1000.0))
        base = env_of(segs)
        root = penv_from_envelope(base)
        narrow = Envelope.from_segment(
            ImageSegment(490.0, 1000.0, 510.0, 1000.0, 777)
        )
        new_root, _ = penv_splice_merge(root, narrow)
        total, shared = treap.count_shared_nodes(root, new_root)
        assert shared > 0.5 * treap.size(root)


class TestBoundaryTrim:
    """Regressions for ``_trim_boundary_piece`` / ``penv_splice_merge``
    boundary handling: a piece starting exactly at the cut must be
    deleted (a zero-width ``clipped`` would raise), and eps-tie splice
    spans must keep the version identical to the array merge."""

    def test_piece_at_cut_is_deleted(self):
        from repro.envelope.chain import Piece
        from repro.persistence.envelope_store import _trim_boundary_piece

        root = treap.from_sorted(
            [
                (0.0, Piece(0.0, 1.0, 2.0, 1.0, 0)),
                (2.0, Piece(2.0, 3.0, 4.0, 3.0, 1)),
            ]
        )
        trimmed = _trim_boundary_piece(root, 2.0)
        got = [p for _, p in treap.to_list(trimmed)]
        assert got == [Piece(0.0, 1.0, 2.0, 1.0, 0)]
        # Original version untouched (persistence).
        assert treap.size(root) == 2

    def test_trim_clips_straddler(self):
        from repro.envelope.chain import Piece
        from repro.persistence.envelope_store import _trim_boundary_piece

        root = treap.from_sorted([(0.0, Piece(0.0, 1.0, 4.0, 5.0, 0))])
        got = [p for _, p in treap.to_list(_trim_boundary_piece(root, 3.0))]
        assert len(got) == 1
        assert got[0].yb == 3.0 and got[0].ya == 0.0

    def test_trim_noop_inside_cut(self):
        from repro.envelope.chain import Piece
        from repro.persistence.envelope_store import _trim_boundary_piece

        root = treap.from_sorted([(0.0, Piece(0.0, 1.0, 2.0, 1.0, 0))])
        assert _trim_boundary_piece(root, 3.0) is root
        assert _trim_boundary_piece(None, 3.0) is None

    def test_splice_span_starting_at_piece_key(self, rng):
        # The merged span's left edge lands exactly on an existing
        # piece start — the straddle path must not produce a
        # zero-width trim.
        base = env_of([ImageSegment(0.0, 5.0, 10.0, 5.0, 0)])
        root = penv_from_envelope(base)
        for ya in (0.0, 5.0):
            other = env_of([ImageSegment(ya, 8.0, ya + 2.0, 8.0, 9)])
            new_root, _ = penv_splice_merge(root, other)
            got = Envelope([p for _, p in treap.to_list(new_root)])
            want = merge_envelopes(base, other).envelope
            assert got.approx_equal(want, eps=1e-9)

    def test_splice_span_ending_at_piece_end(self, rng):
        base = env_of(
            [
                ImageSegment(0.0, 5.0, 4.0, 5.0, 0),
                ImageSegment(4.0, 3.0, 8.0, 3.0, 1),
            ]
        )
        root = penv_from_envelope(base)
        other = env_of([ImageSegment(2.0, 9.0, 4.0, 9.0, 9)])
        new_root, _ = penv_splice_merge(root, other)
        got = Envelope([p for _, p in treap.to_list(new_root)])
        want = merge_envelopes(base, other).envelope
        assert got.approx_equal(want, eps=1e-9)


class TestPenvVisibility:
    def test_matches_array_visibility(self, rng):
        base = env_of(random_image_segments(rng, 25))
        root = penv_from_envelope(base)
        for i in range(40):
            y1 = rng.uniform(0, 80)
            seg = ImageSegment(
                y1,
                rng.uniform(0, 60),
                y1 + rng.uniform(0.5, 20),
                rng.uniform(0, 60),
                500 + i,
            )
            a = visible_parts(seg, base)
            b = penv_visible_parts(root, seg)
            assert len(a.parts) == len(b.parts)
            for pa, pb in zip(a.parts, b.parts):
                assert abs(pa.ya - pb.ya) <= 1e-9
                assert abs(pa.yb - pb.yb) <= 1e-9

    def test_vertical_query(self, rng):
        base = env_of([ImageSegment(0.0, 5.0, 10.0, 5.0, 0)])
        root = penv_from_envelope(base)
        above = ImageSegment(5.0, 0.0, 5.0, 9.0, 1)
        below = ImageSegment(5.0, 0.0, 5.0, 4.0, 2)
        assert not penv_visible_parts(root, above).fully_hidden
        assert penv_visible_parts(root, below).fully_hidden
