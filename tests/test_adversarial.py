"""Degenerate and adversarial input tests (ISSUE 6, satellite 3).

Inputs chosen to sit on the kernels' tie/degeneracy edges — plateau
terrains (all-equal elevations), coincident ridges (duplicate
segments), zero-length and vertical-only segments.  Each case pins
either a clean :class:`~repro.errors.ValidationError` at the front
door or bit-exact parity between the python and numpy engines, over
both live-profile layouts (packed on/off).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.envelope.engine as engine_mod
from repro.envelope.chain import Envelope
from repro.envelope.flat_splice import FlatProfile, insert_segment_flat
from repro.envelope.packed import PackedProfile
from repro.envelope.splice import insert_segment
from repro.errors import ValidationError
from repro.geometry.segments import ImageSegment
from repro.reliability import validate_segments
from tests.conftest import random_image_segments


def _assert_run_parity(terrain):
    from repro.hsr.sequential import SequentialHSR

    rp = SequentialHSR(engine="python").run(terrain)
    rn = SequentialHSR(engine="numpy").run(terrain)
    assert rn.stats.ops == rp.stats.ops
    assert rn.stats.k == rp.stats.k
    assert rn.stats.extra == rp.stats.extra
    assert rn.order == rp.order
    assert rn.visibility_map.segments == rp.visibility_map.segments


@pytest.mark.parametrize("packed", [True, False], ids=["packed", "flat"])
class TestDegenerateTerrainParity:
    @pytest.fixture(autouse=True)
    def _layout(self, packed, monkeypatch):
        monkeypatch.setattr(engine_mod, "USE_PACKED_PROFILE", packed)

    def test_constant_plateau(self):
        # Every vertex at the same elevation: every comparison inside
        # the scan/merge kernels is a tie.
        from repro.terrain.generators import grid_terrain_from_heights

        terrain = grid_terrain_from_heights(np.full((8, 8), 5.0))
        _assert_run_parity(terrain)

    def test_terraced_plateau(self):
        from repro.terrain.generators import plateau_terrain

        _assert_run_parity(
            plateau_terrain(rows=10, cols=10, steps=3, seed=2)
        )

    def test_forced_flat_constant_plateau(self, monkeypatch):
        from repro.terrain.generators import grid_terrain_from_heights

        monkeypatch.setattr(engine_mod, "FLAT_VISIBILITY_CUTOFF", 1)
        monkeypatch.setattr(engine_mod, "FLAT_MERGE_CUTOFF", 1)
        terrain = grid_terrain_from_heights(np.full((7, 7), -2.5))
        _assert_run_parity(terrain)


@pytest.mark.parametrize(
    "profile_factory",
    [PackedProfile.empty, FlatProfile.empty],
    ids=["packed", "flat"],
)
class TestCoincidentSegments:
    """Coincident ridges: every segment inserted twice (same lanes,
    same source).  The second copy is hidden by — or tied with — the
    first everywhere, the hardest eps-tie workload for the scans."""

    def _duplicated(self, rng, count):
        segs = random_image_segments(rng, count)
        return [s for s in segs for _ in (0, 1)]

    def test_insert_loop_parity(self, rng, profile_factory):
        env = Envelope.empty()
        prof = profile_factory()
        for seg in self._duplicated(rng, 40):
            rp = insert_segment(env, seg, engine="python")
            rf = insert_segment_flat(prof, seg)
            assert rf.visibility.parts == rp.visibility.parts
            assert rf.ops == rp.ops
            env = rp.envelope
            prof = rf.profile
        assert prof.to_envelope().pieces == env.pieces

    def test_build_envelope_parity(self, rng, profile_factory):
        from repro.envelope.build import build_envelope

        segs = self._duplicated(rng, 60)
        rp = build_envelope(segs, engine="python")
        rn = build_envelope(segs, engine="numpy")
        assert rn.envelope.pieces == rp.envelope.pieces
        assert rn.ops == rp.ops


class TestZeroLengthSegments:
    def test_front_door_rejects(self):
        segs = [ImageSegment(3.0, 4.0, 3.0, 4.0, 0)]
        with pytest.raises(ValidationError, match="zero length"):
            validate_segments(segs)

    def test_front_door_names_offender(self):
        segs = [
            ImageSegment(0.0, 0.0, 1.0, 1.0, 0),
            ImageSegment(2.0, 2.0, 2.0, 2.0, 9),
        ]
        with pytest.raises(ValidationError, match="segment 1"):
            validate_segments(segs)


@pytest.mark.parametrize(
    "profile_factory",
    [PackedProfile.empty, FlatProfile.empty],
    ids=["packed", "flat"],
)
class TestVerticalOnlySegments:
    """A workload of only vertical (measure-zero) segments: the
    profile must never change, and both engines must agree on every
    point-query verdict."""

    def _verticals(self, rng, count):
        out = []
        for i in range(count):
            y = rng.uniform(0.0, 100.0)
            z1 = rng.uniform(0.0, 50.0)
            out.append(ImageSegment(y, z1, y, z1 + rng.uniform(0.5, 10.0), i))
        return out

    def test_profile_untouched_and_parity(self, rng, profile_factory):
        env = Envelope.empty()
        prof = profile_factory()
        for seg in self._verticals(rng, 25):
            rp = insert_segment(env, seg, engine="python")
            rf = insert_segment_flat(prof, seg)
            assert rf.visibility.parts == rp.visibility.parts
            assert rf.ops == rp.ops
            assert rp.envelope.pieces == []
            prof = rf.profile
        assert len(prof.ya) == 0

    def test_verticals_over_seeded_profile(self, rng, profile_factory):
        # Verticals against a real profile: point queries on both
        # layouts, plus ties at piece boundaries.
        base = random_image_segments(rng, 30)
        env = Envelope.empty()
        prof = profile_factory()
        for seg in base:
            env = insert_segment(env, seg, engine="python").envelope
            prof = insert_segment_flat(prof, seg).profile
        n_before = len(prof.ya)
        for piece in env.pieces[:10]:
            v = ImageSegment(piece.ya, 0.0, piece.ya, 100.0, 999)
            rp = insert_segment(env, v, engine="python")
            rf = insert_segment_flat(prof, v)
            assert rf.visibility.parts == rp.visibility.parts
            assert rf.ops == rp.ops
        assert len(prof.ya) == n_before
