"""Degenerate and adversarial input tests (ISSUE 6, satellite 3).

Inputs chosen to sit on the kernels' tie/degeneracy edges — plateau
terrains (all-equal elevations), coincident ridges (duplicate
segments), zero-length and vertical-only segments.  Each case pins
either a clean :class:`~repro.errors.ValidationError` at the front
door or bit-exact parity between the python and numpy engines, over
both live-profile layouts (packed on/off).
"""

from __future__ import annotations

import pytest

from repro.envelope.chain import Envelope
from repro.envelope.flat_splice import FlatProfile, insert_segment_flat
from repro.envelope.packed import PackedProfile
from repro.envelope.splice import insert_segment
from repro.errors import ValidationError
from repro.geometry.segments import ImageSegment
from repro.reliability import validate_segments
from tests.conftest import random_image_segments


def _assert_run_parity(terrain):
    from repro.hsr.sequential import SequentialHSR

    rp = SequentialHSR(engine="python").run(terrain)
    rn = SequentialHSR(engine="numpy").run(terrain)
    assert rn.stats.ops == rp.stats.ops
    assert rn.stats.k == rp.stats.k
    assert rn.stats.extra == rp.stats.extra
    assert rn.order == rp.order
    assert rn.visibility_map.segments == rp.visibility_map.segments


class TestDegenerateTerrainParity:
    """Thin wrapper over the ``parity-degenerate`` scenario (ISSUE 9):
    the plateau / constant-plateau cases — plus the exact-lattice grid
    (``jitter_seed=None``, coincident-y and collinear on purpose) the
    hand-rolled suite never covered — are matrix axes now, and the
    packed/flat/forced-flat layout legs are config variants."""

    def test_scenario_covers_degenerate_families(self):
        from repro.scenarios import default_spec

        s = default_spec().scenario("parity-degenerate")
        assert set(dict(s.cross)["family"]) == {
            "plateau",
            "constant_plateau",
            "lattice_plateau",
        }
        assert {"numpy-packed", "numpy-flat", "numpy-forced-flat"} <= set(
            s.config_ids()
        )

    def test_degenerate_matrix_parity(self):
        from repro.scenarios import default_spec
        from repro.scenarios.instances import check_parity

        for inst in default_spec().scenario("parity-degenerate").instances():
            check_parity(inst)

    def test_terraced_plateau(self):
        # steps= is a generator knob the scenario matrix doesn't
        # cross; keep the historical direct case.
        from repro.terrain.generators import plateau_terrain

        _assert_run_parity(
            plateau_terrain(rows=10, cols=10, steps=3, seed=2)
        )


class TestCoincidentSegments:
    """Thin wrapper over the ``parity-coincident`` scenario: duplicate
    ridges and vertical-only segments (the hardest eps-tie workloads)
    are matrix axes, and the packed/flat layouts config variants."""

    def test_scenario_covers_coincident_families(self):
        from repro.scenarios import default_spec

        s = default_spec().scenario("parity-coincident")
        assert set(dict(s.cross)["family"]) == {"coincident", "vertical"}

    def test_coincident_matrix_parity(self):
        from repro.scenarios import default_spec
        from repro.scenarios.instances import check_parity

        for inst in default_spec().scenario("parity-coincident").instances():
            check_parity(inst)

    def test_second_copy_contributes_nothing(self, rng):
        # Duplicated segments leave the envelope identical to the
        # deduplicated build — the duplicate's visible parts are ties.
        from repro.envelope.build import build_envelope

        segs = random_image_segments(rng, 60)
        dup = [s for s in segs for _ in (0, 1)]
        rp = build_envelope(segs, engine="python")
        rd = build_envelope(dup, engine="python")
        assert [
            (p.ya, p.yb, p.za, p.zb) for p in rp.envelope.pieces
        ] == [(p.ya, p.yb, p.za, p.zb) for p in rd.envelope.pieces]


class TestZeroLengthSegments:
    def test_front_door_rejects(self):
        segs = [ImageSegment(3.0, 4.0, 3.0, 4.0, 0)]
        with pytest.raises(ValidationError, match="zero length"):
            validate_segments(segs)

    def test_front_door_names_offender(self):
        segs = [
            ImageSegment(0.0, 0.0, 1.0, 1.0, 0),
            ImageSegment(2.0, 2.0, 2.0, 2.0, 9),
        ]
        with pytest.raises(ValidationError, match="segment 1"):
            validate_segments(segs)


@pytest.mark.parametrize(
    "profile_factory",
    [PackedProfile.empty, FlatProfile.empty],
    ids=["packed", "flat"],
)
class TestVerticalOnlySegments:
    """A workload of only vertical (measure-zero) segments: the
    profile must never change, and both engines must agree on every
    point-query verdict."""

    def _verticals(self, rng, count):
        out = []
        for i in range(count):
            y = rng.uniform(0.0, 100.0)
            z1 = rng.uniform(0.0, 50.0)
            out.append(ImageSegment(y, z1, y, z1 + rng.uniform(0.5, 10.0), i))
        return out

    def test_profile_untouched_and_parity(self, rng, profile_factory):
        env = Envelope.empty()
        prof = profile_factory()
        for seg in self._verticals(rng, 25):
            rp = insert_segment(env, seg, engine="python")
            rf = insert_segment_flat(prof, seg)
            assert rf.visibility.parts == rp.visibility.parts
            assert rf.ops == rp.ops
            assert rp.envelope.pieces == []
            prof = rf.profile
        assert len(prof.ya) == 0

    def test_verticals_over_seeded_profile(self, rng, profile_factory):
        # Verticals against a real profile: point queries on both
        # layouts, plus ties at piece boundaries.
        base = random_image_segments(rng, 30)
        env = Envelope.empty()
        prof = profile_factory()
        for seg in base:
            env = insert_segment(env, seg, engine="python").envelope
            prof = insert_segment_flat(prof, seg).profile
        n_before = len(prof.ya)
        for piece in env.pieces[:10]:
            v = ImageSegment(piece.ya, 0.0, piece.ya, 100.0, 999)
            rp = insert_segment(env, v, engine="python")
            rf = insert_segment_flat(prof, v)
            assert rf.visibility.parts == rp.visibility.parts
            assert rf.ops == rp.ops
        assert len(prof.ya) == n_before
