"""Tests for the static CG/ACG profile index (Fig. 2, Lemmas 3.3-3.6)."""

from __future__ import annotations

import math

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope, Piece
from repro.geometry.segments import ImageSegment
from repro.hsr.cg import ProfileIndex
from tests.conftest import random_image_segments


def brute_crossings(env: Envelope, seg: ImageSegment, eps=1e-9):
    """Reference: scan every piece for a transversal crossing."""
    out = []
    a = seg.slope
    b = seg.z1 - a * seg.y1
    for p in env.pieces:
        u = max(p.ya, seg.y1)
        v = min(p.yb, seg.y2)
        if u >= v:
            continue
        du = p.z_at(u) - (a * u + b)
        dv = p.z_at(v) - (a * v + b)
        su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
        sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
        if su * sv < 0:
            t = du / (du - dv)
            w = u + t * (v - u)
            if u < w < v:
                out.append((w, a * w + b))
    return sorted(out)


def make_profile(rng, m):
    segs = random_image_segments(rng, m)
    return build_envelope(segs).envelope


class TestConstruction:
    def test_empty(self):
        idx = ProfileIndex(Envelope.empty())
        assert idx.root is None
        assert idx.node_count() == 0
        seg = ImageSegment(0, 0, 1, 1, 0)
        assert idx.first_intersection(seg) == (None, 0)

    def test_single_piece(self):
        env = Envelope([Piece(0, 0, 10, 10, 0)])
        idx = ProfileIndex(env)
        assert idx.node_count() == 1
        assert idx.root.contiguous

    def test_balanced_height(self, rng):
        env = make_profile(rng, 200)
        idx = ProfileIndex(env)
        assert idx.height() <= math.ceil(math.log2(env.size)) + 1

    def test_contiguity_flags(self):
        env = Envelope(
            [Piece(0, 0, 1, 0, 0), Piece(2, 0, 3, 0, 1)]  # gap at [1,2]
        )
        idx = ProfileIndex(env)
        assert not idx.root.contiguous

    def test_build_ops_near_linearithmic(self, rng):
        env = make_profile(rng, 400)
        idx = ProfileIndex(env)
        m = env.size
        assert idx.build_ops <= 4 * m * math.log2(m)


class TestFirstIntersection:
    def test_simple_crossing(self):
        env = Envelope([Piece(0, 0, 10, 10, 0)])
        idx = ProfileIndex(env)
        seg = ImageSegment(0, 10, 10, 0, 1)
        hit, probes = idx.first_intersection(seg)
        assert hit is not None
        assert math.isclose(hit[0], 5.0) and math.isclose(hit[1], 5.0)
        assert probes >= 1

    def test_no_crossing_above(self):
        env = Envelope([Piece(0, 0, 10, 1, 0)])
        idx = ProfileIndex(env)
        hit, _ = idx.first_intersection(ImageSegment(0, 5, 10, 6, 1))
        assert hit is None

    def test_y_from_restriction(self):
        # Tent profile crossed twice; restricting y_from skips the
        # first crossing.
        env = Envelope([Piece(0, 0, 5, 5, 0), Piece(5, 5, 10, 0, 0)])
        idx = ProfileIndex(env)
        seg = ImageSegment(0, 2.5, 10, 2.5, 1)
        hit1, _ = idx.first_intersection(seg)
        assert math.isclose(hit1[0], 2.5)
        hit2, _ = idx.first_intersection(seg, y_from=3.0)
        assert math.isclose(hit2[0], 7.5)

    def test_vertical_segment(self):
        env = Envelope([Piece(0, 0, 10, 10, 0)])
        idx = ProfileIndex(env)
        assert idx.first_intersection(ImageSegment(5, 0, 5, 9, 1)) == (
            None,
            0,
        )

    def test_matches_brute_force_first(self, rng):
        for _ in range(30):
            env = make_profile(rng, rng.randint(2, 40))
            q = random_image_segments(rng, 1)[0]
            idx = ProfileIndex(env)
            hit, _ = idx.first_intersection(q)
            want = brute_crossings(env, q)
            if want:
                assert hit is not None
                assert abs(hit[0] - want[0][0]) <= 1e-9
            else:
                assert hit is None

    def test_probe_count_polylog(self, rng):
        env = make_profile(rng, 500)
        idx = ProfileIndex(env)
        lo, hi = env.y_span()
        worst = 0
        for _ in range(100):
            y1 = rng.uniform(lo, hi)
            seg = ImageSegment(
                y1, rng.uniform(0, 50), y1 + rng.uniform(1, 30), rng.uniform(0, 50), 9
            )
            hit, probes = idx.first_intersection(seg)
            if hit is not None:
                worst = max(worst, probes)
        # First-hit searches must not degenerate to linear scans.
        assert worst <= 8 * math.log2(env.size) ** 2


class TestAllIntersections:
    def test_matches_brute_force(self, rng):
        for _ in range(30):
            env = make_profile(rng, rng.randint(2, 40))
            q = random_image_segments(rng, 1)[0]
            idx = ProfileIndex(env)
            got, _ = idx.all_intersections(q)
            want = brute_crossings(env, q)
            assert len(got) == len(want)
            for (gy, gz), (wy, wz) in zip(got, want):
                assert abs(gy - wy) <= 1e-8
                assert abs(gz - wz) <= 1e-8

    def test_many_crossings_sawtooth(self):
        # Sawtooth profile crossed by a horizontal line: k_s crossings.
        pieces = []
        for i in range(20):
            y = float(2 * i)
            pieces.append(Piece(y, 0.0, y + 1, 2.0, i))
            pieces.append(Piece(y + 1, 2.0, y + 2, 0.0, i))
        env = Envelope(pieces)
        idx = ProfileIndex(env)
        seg = ImageSegment(0.0, 1.0, 40.0, 1.0, 99)
        got, probes = idx.all_intersections(seg)
        assert len(got) == 40  # two crossings per tooth
        assert probes > 0
