"""The pure-python engine fallback: the library must work end to end
without NumPy (the CI matrix runs a no-numpy leg over this suite).

These tests run under both matrix legs — they use only the
numpy-optional surface, hand-built terrains, and ``engine="python"``
— and additionally assert the degraded import behaviour when NumPy is
genuinely absent.
"""

from __future__ import annotations

import pytest

from repro.envelope.engine import (
    DEFAULT_ENGINE,
    HAVE_NUMPY,
    resolve_engine,
)
from repro.errors import EnvelopeError
from repro.geometry.primitives import Point3
from repro.terrain.model import Terrain


def hand_terrain() -> Terrain:
    """A small hand-built TIN (no generators needed)."""
    verts = [
        Point3(0, 0, 1),
        Point3(1, 0, 2),
        Point3(0, 1, 3),
        Point3(1, 1, 4),
        Point3(2, 0, 1),
        Point3(2, 1, 2),
    ]
    faces = [(0, 1, 2), (1, 3, 2), (1, 4, 3), (4, 5, 3)]
    return Terrain(verts, faces)


class TestEngineFallback:
    def test_default_engine_consistent(self):
        assert DEFAULT_ENGINE == ("numpy" if HAVE_NUMPY else "python")
        assert resolve_engine(None) == DEFAULT_ENGINE
        assert resolve_engine("python") == "python"

    @pytest.mark.skipif(HAVE_NUMPY, reason="numpy installed")
    def test_numpy_engine_rejected_without_numpy(self):
        with pytest.raises(EnvelopeError, match="numpy"):
            resolve_engine("numpy")


class TestPurePythonPipeline:
    def test_sequential_hsr(self):
        from repro.hsr import SequentialHSR

        result = SequentialHSR(engine="python").run(hand_terrain())
        assert result.stats.n_edges == hand_terrain().n_edges
        assert result.k > 0
        assert result.visibility_map.visible_edges()

    def test_sequential_final_profile_shared_loop(self):
        from repro.hsr import SequentialHSR

        hsr = SequentialHSR(engine="python")
        horizon = hsr.final_profile(hand_terrain())
        horizon.validate()
        assert horizon.size > 0

    def test_splice_merge_pure_python(self):
        from repro.envelope import splice_merge
        from repro.envelope.build import build_envelope
        from repro.envelope.chain import Envelope
        from repro.geometry.segments import ImageSegment

        a = build_envelope(
            [
                ImageSegment(0.0, 1.0, 4.0, 2.0, 0),
                ImageSegment(6.0, 1.0, 9.0, 0.5, 1),
            ],
            engine="python",
        ).envelope
        b = build_envelope(
            [ImageSegment(3.0, 3.0, 7.0, 0.0, 2)], engine="python"
        ).envelope
        res = splice_merge(a, b, engine="python")
        res.envelope.validate()
        assert res.ops > 0
        assert res.materialised == res.envelope.size
        assert splice_merge(a, Envelope.empty()).envelope is a

    def test_parallel_hsr_direct(self):
        from repro.hsr import ParallelHSR

        result = ParallelHSR(mode="direct", engine="python").run(
            hand_terrain()
        )
        assert result.k > 0

    def test_package_imports_without_numpy_surface(self):
        # These imports must succeed on both matrix legs.
        import repro.hsr
        import repro.pram
        import repro.terrain

        assert hasattr(repro.hsr, "SequentialHSR")
        assert hasattr(repro.pram, "PramTracker")
        assert hasattr(repro.terrain, "Terrain")
        if not HAVE_NUMPY:  # pragma: no cover - numpy in toolchain
            assert repro.terrain.GENERATORS == {}
            with pytest.raises(ImportError, match="numpy"):
                repro.terrain.generate_terrain("fractal")
            assert not hasattr(repro.hsr, "ZBufferHSR")

    def test_terrain_json_roundtrip(self, tmp_path):
        from repro.terrain import load_terrain_json, save_terrain_json

        path = tmp_path / "t.json"
        save_terrain_json(hand_terrain(), path)
        loaded = load_terrain_json(path)
        assert loaded.n_edges == hand_terrain().n_edges

    def test_cli_run_on_terrain_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.terrain import save_terrain_json

        path = tmp_path / "t.json"
        save_terrain_json(hand_terrain(), path)
        rc = main(
            [
                "run",
                str(path),
                "--algorithm",
                "sequential",
                "--engine",
                "python",
                "--json",
            ]
        )
        assert rc == 0
        assert '"k"' in capsys.readouterr().out
