"""Documentation checks: relative links in the markdown docs resolve.

The CI ``docs`` job runs this module on its own; it also rides along
in tier-1 (stdlib only, no numpy, milliseconds).  Inline markdown
links (``[text](target)``) in ``README.md`` and ``docs/*.md`` must
point at files that exist; external schemes and in-page anchors are
skipped, as are GitHub web-UI paths (the ``../../actions/...`` badge
idiom) that intentionally resolve outside the repository.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` inline links, tolerating titles after the URL.
_LINK_RE = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _doc_files() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [p for p in docs if p.exists()]


def _links(md: Path) -> list[str]:
    # Strip fenced code blocks first: ``[x](y)`` inside them is code.
    text = re.sub(r"```.*?```", "", md.read_text(), flags=re.S)
    return _LINK_RE.findall(text)


def test_docs_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO_ROOT / "docs" / "BENCHMARKS.md").exists()


@pytest.mark.parametrize("md", _doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(md: Path):
    broken = []
    for target in _links(md):
        if target.startswith(_SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            # Outside the repo: the GitHub badge/actions idiom —
            # not checkable from a working tree.
            continue
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken relative links in {md.name}: {broken}"


def test_readme_points_at_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/BENCHMARKS.md" in readme
