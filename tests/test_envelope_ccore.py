"""Tests for the compiled fused-insert core (``repro.envelope._ccore``).

Contract under test: with the optional C extension built, the packed
insert loop answers **every** window size through one compiled call
per insert — and is *bit-exact* against the scalar/vectorized cascade
(and, transitively, against ``engine="python"``; the scenario parity
matrix asserts that leg directly).  Without the extension — or with
``USE_COMPILED_INSERT`` off — the cascade answers, and the toggle can
never silently change which kernel handles an insert (the cascade
pins below).  The ``compiled_insert`` guard site gets the same
injection/retry/quarantine treatment as every other kernel edge.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.envelope.flat_splice as splice_mod
from repro.envelope import _ccore
from repro.envelope.flat_splice import insert_segment_flat
from repro.envelope.packed import PackedProfile
from repro.geometry.segments import ImageSegment
from repro.reliability import faultinject as fi
from repro.reliability import guard
from tests.conftest import random_image_segments

needs_ccore = pytest.mark.skipif(
    not _ccore.HAVE_CCORE,
    reason="optional compiled core not built in this environment",
)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    fi.clear()
    guard.reset_ambient()
    monkeypatch.setattr(guard, "GUARDED_DISPATCH", True)
    yield
    fi.clear()
    guard.reset_ambient()


def _run_loop(segs, *, compiled, capacity=None):
    """Insert ``segs`` into a fresh PackedProfile; returns the final
    profile plus the per-insert (visibility, ops) trace."""
    old = splice_mod.USE_COMPILED_INSERT
    splice_mod.USE_COMPILED_INSERT = compiled
    try:
        prof = (
            PackedProfile.empty(capacity)
            if capacity is not None
            else PackedProfile.empty()
        )
        trace = []
        for s in segs:
            res = insert_segment_flat(prof, s)
            prof = res.profile
            trace.append((res.visibility, res.ops))
        return prof, trace
    finally:
        splice_mod.USE_COMPILED_INSERT = old


def _state(prof):
    n = prof.size
    return (prof.window_lists(0, n), prof.source[:n].tolist())


def _assert_identical(segs, capacity=None):
    p_c, t_c = _run_loop(segs, compiled=True, capacity=capacity)
    p_n, t_n = _run_loop(segs, compiled=False, capacity=capacity)
    assert _state(p_c) == _state(p_n)
    assert t_c == t_n  # VisibilityResult tuples + ops, float-exact


# -- randomized parity ----------------------------------------------------

# A small value grid makes eps-ties, shared endpoints, verticals and
# exactly-coincident pieces common; the continuous arm keeps generic
# geometry covered.
coord = st.one_of(
    st.integers(min_value=0, max_value=12).map(float),
    st.floats(
        min_value=0.0, max_value=12.0, allow_nan=False, width=64
    ),
)


@st.composite
def seg_lists(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    segs = []
    for i in range(n):
        y1, y2 = sorted((draw(coord), draw(coord)))
        segs.append(ImageSegment(y1, draw(coord), y2, draw(coord), i))
    return segs


@needs_ccore
class TestCompiledParity:
    @settings(max_examples=150, deadline=None)
    @given(segs=seg_lists())
    def test_fuzz_matches_cascade(self, segs):
        _assert_identical(segs)

    @settings(max_examples=60, deadline=None)
    @given(segs=seg_lists())
    def test_fuzz_capacity_edge(self, segs):
        # Minimum starting capacity: every few inserts straddle a
        # realloc boundary, exercising the C-side GROW handoff and
        # the re-centred buffer copy.
        _assert_identical(segs, capacity=2)

    def test_long_run_with_grows(self, rng):
        segs = random_image_segments(rng, 300)
        _assert_identical(segs, capacity=2)

    def test_matches_python_engine(self, rng):
        # Direct leg against the tuple-path reference (the scenario
        # parity matrix crosses the remaining config space).
        from repro.envelope.chain import Envelope
        from repro.envelope.splice import insert_segment

        segs = random_image_segments(rng, 120)
        prof, trace = _run_loop(segs, compiled=True)
        env = Envelope.empty()
        ref = []
        for s in segs:
            r = insert_segment(env, s, engine="python")
            env = r.envelope
            ref.append((r.visibility, r.ops))
        assert trace == ref
        assert prof.to_envelope().pieces == env.pieces

    def test_eps_degenerate_and_vertical_segments(self):
        segs = [
            ImageSegment(0.0, 1.0, 4.0, 1.0, 0),
            ImageSegment(2.0, 3.0, 2.0, 5.0, 1),  # vertical
            ImageSegment(1.0, 1.0 + 1e-12, 1.0 + 5e-10, 1.0, 2),  # ~eps span
            ImageSegment(0.0, 1.0, 4.0, 1.0, 3),  # exactly coincident
        ]
        _assert_identical(segs)


# -- cascade pins ---------------------------------------------------------


@needs_ccore
class TestCascadePins:
    """``USE_COMPILED_INSERT`` decides which kernel answers — always,
    for every window size, and never silently."""

    def _counting(self, monkeypatch):
        calls = {"ccore": 0, "scalar": 0, "vector": 0}
        import repro.envelope.flat_fused as fused_mod

        real_insert = _ccore.insert_packed
        real_scalar = fused_mod.fused_insert_window
        real_vector = fused_mod.fused_insert_window_flat

        def count_ccore(*a, **k):
            calls["ccore"] += 1
            return real_insert(*a, **k)

        def count_scalar(*a, **k):
            calls["scalar"] += 1
            return real_scalar(*a, **k)

        def count_vector(*a, **k):
            calls["vector"] += 1
            return real_vector(*a, **k)

        monkeypatch.setattr(_ccore, "insert_packed", count_ccore)
        monkeypatch.setattr(fused_mod, "fused_insert_window", count_scalar)
        monkeypatch.setattr(
            fused_mod, "fused_insert_window_flat", count_vector
        )
        return calls

    def _mixed_window_segments(self, rng):
        # Many narrow segments build a wide profile; the late spanning
        # segments then open windows far above FLAT_FUSED_CUTOFF.
        segs = random_image_segments(rng, 150, min_width=0.5)
        wide = [
            ImageSegment(0.0, 60.0 + i, 100.0, 60.5 + i, 1000 + i)
            for i in range(3)
        ]
        return segs + wide

    def test_compiled_on_answers_all_window_sizes(self, rng, monkeypatch):
        calls = self._counting(monkeypatch)
        segs = self._mixed_window_segments(rng)
        _run_loop(segs, compiled=True)
        assert calls["ccore"] == len(segs)
        assert calls["scalar"] == 0
        assert calls["vector"] == 0

    def test_compiled_off_runs_the_cascade(self, rng, monkeypatch):
        calls = self._counting(monkeypatch)
        segs = self._mixed_window_segments(rng)
        _run_loop(segs, compiled=False)
        assert calls["ccore"] == 0
        assert calls["scalar"] + calls["vector"] > 0

    def test_synthetic_source_window_declines(self, rng, monkeypatch):
        # Negative-source pieces coalesce on the builder rule the C
        # core doesn't implement: it must decline (None), and the
        # cascade must produce the identical insert.
        calls = self._counting(monkeypatch)
        synth = ImageSegment(2.0, 5.0, 8.0, 5.0, -1)
        over = ImageSegment(0.0, 3.0, 10.0, 7.0, 7)
        p_c, t_c = _run_loop([synth, over], compiled=True)
        assert calls["ccore"] == 1  # called for `over`, declined
        p_n, t_n = _run_loop([synth, over], compiled=False)
        assert _state(p_c) == _state(p_n)
        assert t_c == t_n

    def test_config_field_pins_the_path(self, rng, monkeypatch):
        from repro.config import HsrConfig

        calls = self._counting(monkeypatch)
        segs = random_image_segments(rng, 30)
        for cfg, expect in (
            (HsrConfig(use_compiled_insert=True), len(segs)),
            (HsrConfig(use_compiled_insert=False), 0),
        ):
            calls["ccore"] = 0
            prof = PackedProfile.empty()
            for s in segs:
                prof = insert_segment_flat(prof, s, config=cfg).profile
            assert calls["ccore"] == expect

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED", "0")
        assert not _ccore._env_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "off")
        assert not _ccore._env_enabled()
        monkeypatch.setenv("REPRO_COMPILED", "1")
        assert _ccore._env_enabled()
        monkeypatch.delenv("REPRO_COMPILED")
        assert _ccore._env_enabled()


# -- guard site -----------------------------------------------------------


@needs_ccore
class TestCompiledGuardSite:
    def _parity_under_plan(self, rng, mode, nth=2):
        segs = random_image_segments(rng, 80)
        with fi.inject("compiled_insert", mode, nth=nth) as plan:
            p_i, t_i = _run_loop(segs, compiled=True, capacity=2)
        assert plan.fired >= 1
        with fi.suppressed():
            p_n, t_n = _run_loop(segs, compiled=False, capacity=2)
        assert _state(p_i) == _state(p_n)
        assert t_i == t_n

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_injected_fault_absorbed_bit_exact(self, rng, mode):
        self._parity_under_plan(rng, mode)

    def test_repeat_plan_quarantines_and_stays_exact(self, rng):
        segs = random_image_segments(rng, 120)
        with fi.inject("compiled_insert", "raise", nth=1, repeat=True):
            p_i, t_i = _run_loop(segs, compiled=True)
            # Breaker tripped after FAULT_THRESHOLD faults; later
            # inserts decline without tripping the plan again.
            assert guard.is_quarantined("compiled_insert")
        rec = guard.current_report().sites["compiled_insert"]
        assert rec.quarantined and rec.count >= guard.FAULT_THRESHOLD
        with fi.suppressed():
            p_n, t_n = _run_loop(segs, compiled=False)
        assert _state(p_i) == _state(p_n)
        assert t_i == t_n

    def test_other_site_plans_reach_their_kernel(self, rng):
        # With e.g. fused_insert armed, the compiled core must stand
        # aside so the injected boundary actually runs.
        segs = random_image_segments(rng, 60)
        with fi.inject("fused_insert", "raise", nth=2) as plan:
            _run_loop(segs, compiled=True)
        assert plan.fired >= 1

    def test_fault_recorded_in_sequential_report(self):
        from repro.hsr.sequential import SequentialHSR
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=9, seed=23)
        with fi.inject("compiled_insert", "raise", nth=3) as plan:
            rn = SequentialHSR(engine="numpy").run(terrain)
        with fi.suppressed():
            rp = SequentialHSR(engine="python").run(terrain)
        assert plan.fired >= 1
        assert rn.stats.ops == rp.stats.ops
        assert rn.visibility_map.segments == rp.visibility_map.segments
        assert rn.reliability is not None
        assert rn.reliability.sites["compiled_insert"].count >= 1


# -- fallback installs ----------------------------------------------------


class TestFallback:
    def test_module_imports_without_extension(self):
        # Meaningful on both legs: with the extension absent the
        # wrappers are the no-op stubs; with it present they are live.
        assert hasattr(_ccore, "insert_packed")
        assert hasattr(_ccore, "compute")
        if not _ccore.HAVE_CCORE:
            assert _ccore.insert_packed(None, None, 1e-9) is None
            assert _ccore.compute(None, None, 1e-9) is None
            assert not _ccore.COMPILED_DEFAULT

    def test_default_tracks_availability(self):
        assert _ccore.COMPILED_DEFAULT == (
            _ccore.HAVE_CCORE and _ccore._env_enabled()
        )
