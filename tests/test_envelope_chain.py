"""Unit tests for repro.envelope.chain (Envelope representation)."""

from __future__ import annotations

import math

import pytest

from repro.envelope.chain import Envelope, EnvelopeBuilder, Piece
from repro.errors import EnvelopeError
from repro.geometry.primitives import NEG_INF
from repro.geometry.segments import ImageSegment


def make_env(*pieces):
    return Envelope([Piece(*p) for p in pieces])


class TestPiece:
    def test_z_at(self):
        p = Piece(0.0, 0.0, 2.0, 4.0, 1)
        assert p.z_at(0.0) == 0.0
        assert p.z_at(2.0) == 4.0
        assert math.isclose(p.z_at(1.0), 2.0)

    def test_slope(self):
        assert Piece(0.0, 1.0, 2.0, 5.0, 0).slope == 2.0

    def test_clipped(self):
        p = Piece(0.0, 0.0, 10.0, 10.0, 2)
        c = p.clipped(2.0, 3.0)
        assert (c.ya, c.za, c.yb, c.zb, c.source) == (2.0, 2.0, 3.0, 3.0, 2)

    def test_clipped_invalid(self):
        p = Piece(0.0, 0.0, 1.0, 1.0, 0)
        with pytest.raises(EnvelopeError):
            p.clipped(0.5, 0.2)
        with pytest.raises(EnvelopeError):
            p.clipped(-1.0, 0.5)

    def test_as_segment_roundtrip(self):
        p = Piece(1.0, 2.0, 3.0, 4.0, 9)
        s = p.as_segment()
        assert isinstance(s, ImageSegment)
        assert (s.y1, s.z1, s.y2, s.z2, s.source) == (1, 2, 3, 4, 9)


class TestEnvelopeBasics:
    def test_empty(self):
        e = Envelope.empty()
        assert not e
        assert e.size == 0
        assert e.value_at(0.0) == NEG_INF
        with pytest.raises(EnvelopeError):
            e.y_span()

    def test_from_segment(self):
        e = Envelope.from_segment(ImageSegment(0.0, 1.0, 2.0, 3.0, 5))
        assert e.size == 1
        assert e.value_at(1.0) == 2.0
        assert e.y_span() == (0.0, 2.0)
        assert e.sources() == {5}

    def test_from_vertical_segment_empty(self):
        e = Envelope.from_segment(ImageSegment(1.0, 0.0, 1.0, 5.0, 0))
        assert e.size == 0

    def test_value_in_gap(self):
        e = make_env((0, 0, 1, 1, 0), (2, 5, 3, 5, 1))
        assert e.value_at(1.5) == NEG_INF
        assert e.value_at(0.5) == 0.5
        assert e.value_at(2.5) == 5.0

    def test_value_outside_span(self):
        e = make_env((0, 0, 1, 1, 0))
        assert e.value_at(-1.0) == NEG_INF
        assert e.value_at(2.0) == NEG_INF

    def test_value_at_shared_breakpoint_takes_max(self):
        # Jump discontinuity at y=1: left piece ends at z=1, right
        # piece starts at z=5; upper envelope convention takes 5.
        e = make_env((0, 0, 1, 1, 0), (1, 5, 2, 5, 1))
        assert e.value_at(1.0) == 5.0

    def test_piece_index_covering(self):
        e = make_env((0, 0, 1, 1, 0), (2, 5, 3, 5, 1))
        assert e.piece_index_covering(0.5) == 0
        assert e.piece_index_covering(2.0) == 1
        assert e.piece_index_covering(1.5) is None
        assert e.piece_index_covering(9.0) is None

    def test_pieces_overlapping(self):
        e = make_env((0, 0, 1, 0, 0), (1, 0, 2, 0, 1), (3, 0, 4, 0, 2))
        assert e.pieces_overlapping(0.5, 1.5) == (0, 2)
        assert e.pieces_overlapping(1.0, 1.2) == (1, 2)
        assert e.pieces_overlapping(2.2, 2.8) == (2, 2)
        assert e.pieces_overlapping(-5, 10) == (0, 3)
        # Touching only at a point is not overlap.
        assert e.pieces_overlapping(2.0, 3.0) == (2, 2)

    def test_vertices(self):
        e = make_env((0, 0, 1, 1, 0), (1, 1, 2, 0, 1))
        vs = e.vertices()
        assert [(-0.0 + v.x, v.y) for v in vs] == [
            (0, 0),
            (1, 1),
            (2, 0),
        ]

    def test_total_length(self):
        e = make_env((0, 0, 3, 4, 0))
        assert math.isclose(e.total_length(), 5.0)


class TestValidate:
    def test_ok(self):
        make_env((0, 0, 1, 1, 0), (1, 1, 2, 2, 1)).validate()

    def test_empty_piece(self):
        with pytest.raises(EnvelopeError):
            make_env((1, 0, 1, 1, 0)).validate()

    def test_overlap(self):
        with pytest.raises(EnvelopeError):
            make_env((0, 0, 2, 0, 0), (1, 0, 3, 0, 1)).validate()


class TestApproxEqual:
    def test_identical(self):
        a = make_env((0, 0, 1, 1, 0))
        b = make_env((0, 0, 1, 1, 9))  # source differs, geometry same
        assert a.approx_equal(b)

    def test_split_but_equal(self):
        a = make_env((0, 0, 2, 2, 0))
        b = make_env((0, 0, 1, 1, 0), (1, 1, 2, 2, 0))
        assert a.approx_equal(b)

    def test_different(self):
        a = make_env((0, 0, 1, 1, 0))
        b = make_env((0, 0, 1, 2, 0))
        assert not a.approx_equal(b)

    def test_gap_mismatch(self):
        a = make_env((0, 0, 1, 1, 0), (2, 0, 3, 1, 0))
        b = make_env((0, 0, 3, 1, 0))
        assert not a.approx_equal(b)

    def test_both_empty(self):
        assert Envelope.empty().approx_equal(Envelope.empty())


class TestEnvelopeBuilder:
    def test_coalesces_same_source_contiguous(self):
        b = EnvelopeBuilder()
        b.add(Piece(0.0, 0.0, 1.0, 1.0, 3))
        b.add(Piece(1.0, 1.0, 2.0, 2.0, 3))
        env = b.build()
        assert env.size == 1
        assert env.pieces[0] == Piece(0.0, 0.0, 2.0, 2.0, 3)

    def test_no_coalesce_across_gap(self):
        b = EnvelopeBuilder()
        b.add(Piece(0.0, 0.0, 1.0, 1.0, 3))
        b.add(Piece(1.5, 1.5, 2.0, 2.0, 3))
        assert b.build().size == 2

    def test_no_coalesce_different_source(self):
        b = EnvelopeBuilder()
        b.add(Piece(0.0, 0.0, 1.0, 1.0, 3))
        b.add(Piece(1.0, 1.0, 2.0, 2.0, 4))
        assert b.build().size == 2

    def test_drops_empty_pieces(self):
        b = EnvelopeBuilder()
        b.add(Piece(1.0, 0.0, 1.0, 0.0, 0))
        assert b.build().size == 0

    def test_synthetic_sources_need_matching_slope(self):
        b = EnvelopeBuilder()
        b.add(Piece(0.0, 0.0, 1.0, 1.0, -1))
        b.add(Piece(1.0, 1.0, 2.0, 0.0, -1))  # kink: different slope
        assert b.build().size == 2

    def test_synthetic_sources_coalesce_collinear(self):
        b = EnvelopeBuilder()
        b.add(Piece(0.0, 0.0, 1.0, 1.0, -1))
        b.add(Piece(1.0, 1.0, 2.0, 2.0, -1))  # same slope: joins
        b.add(Piece(2.0, 2.0, 3.0, 3.0, -1))  # slope of merged piece
        env = b.build()
        assert env.size == 1
        assert env.pieces[0] == Piece(0.0, 0.0, 3.0, 3.0, -1)

    def test_add_clipped_restricts_and_coalesces(self):
        # add_clipped evaluates the sub-piece exactly like the merge
        # sweep's direct Piece construction does.
        b = EnvelopeBuilder()
        p = Piece(0.0, 0.0, 4.0, 4.0, 7)
        b.add_clipped(p, 1.0, 2.0)
        b.add_clipped(p, 2.0, 3.0)  # contiguous, same source: joins
        b.add_clipped(p, 3.5, 3.5)  # empty span: dropped
        env = b.build()
        assert env.pieces == [Piece(1.0, 1.0, 3.0, 3.0, 7)]
