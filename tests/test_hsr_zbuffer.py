"""Tests for the image-space z-buffer baseline."""

from __future__ import annotations

import numpy as np

from repro.hsr.sequential import SequentialHSR
from repro.hsr.zbuffer import ZBufferHSR
from repro.terrain.generators import (
    fractal_terrain,
    grid_terrain_from_heights,
)


def toward_plane(rows=8, cols=8):
    """Plane rising toward the viewer: only the crest visible."""
    h = np.arange(rows, dtype=float)[:, None] * np.ones((1, cols))
    return grid_terrain_from_heights(h, jitter_seed=1)


def away_plane(rows=8, cols=8):
    """Amphitheatre plane: everything visible."""
    h = (rows - 1 - np.arange(rows, dtype=float))[:, None] * np.ones(
        (1, cols)
    )
    return grid_terrain_from_heights(h, jitter_seed=1)


class TestRasterize:
    def test_buffers_shape(self):
        t = toward_plane()
        img = ZBufferHSR(width=64, height=32).rasterize(t)
        assert img.depth.shape == (32, 64)
        assert img.face_id.shape == (32, 64)
        assert img.occluder.shape == (32, 64)

    def test_coverage(self):
        t = away_plane()
        img = ZBufferHSR(width=64, height=64).rasterize(t)
        # The amphitheatre fills most of the image rectangle's lower
        # triangle; at least a third of pixels must be covered.
        assert (img.face_id >= 0).mean() > 0.3

    def test_occluder_dominates_depth(self):
        t = toward_plane()
        img = ZBufferHSR(width=64, height=64).rasterize(t)
        finite = np.isfinite(img.depth)
        assert (img.occluder[finite] >= img.depth[finite]).all()

    def test_occluder_column_monotone(self):
        t = toward_plane()
        img = ZBufferHSR(width=32, height=32).rasterize(t)
        # Suffix max downward: lower rows are >= upper rows.
        for c in range(img.width):
            col = img.occluder[:, c]
            assert (col[:-1] >= col[1:] - 1e-12).all()

    def test_pixel_of_clamps(self):
        t = toward_plane()
        img = ZBufferHSR(width=16, height=16).rasterize(t)
        assert img.pixel_of(-1e9, -1e9) == (0, 0)
        assert img.pixel_of(1e9, 1e9) == (15, 15)


class TestVisibility:
    def test_away_plane_all_visible(self):
        t = away_plane()
        res = ZBufferHSR(width=128, height=128).run(t)
        assert len(res.visibility_map.visible_edges()) == t.n_edges

    def test_toward_plane_mostly_hidden(self):
        t = toward_plane()
        res = ZBufferHSR(width=128, height=128).run(t)
        frac = len(res.visibility_map.visible_edges()) / t.n_edges
        assert frac < 0.4  # only crest + silhouette

    def test_agrees_with_object_space_in_length(self):
        t = fractal_terrain(size=9, seed=8)
        obj = SequentialHSR().run(t)
        zb = ZBufferHSR(width=256, height=256).run(t)
        ratio = (
            zb.visibility_map.total_visible_length()
            / max(obj.visibility_map.total_visible_length(), 1e-9)
        )
        assert 0.6 < ratio < 2.0

    def test_resolution_improves_agreement(self):
        t = fractal_terrain(size=9, seed=9)
        obj_len = SequentialHSR().run(t).visibility_map.total_visible_length()
        errs = []
        for px in (32, 128):
            zb = ZBufferHSR(width=px, height=px).run(t)
            errs.append(
                abs(zb.visibility_map.total_visible_length() - obj_len)
            )
        assert errs[1] <= errs[0] + 1e-9

    def test_stats_report_pixels(self):
        t = toward_plane()
        res = ZBufferHSR(width=32, height=16).run(t)
        assert res.stats.extra["pixels"] == 512.0
