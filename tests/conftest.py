"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.envelope.engine import HAVE_NUMPY
from repro.geometry.segments import ImageSegment

# Test modules that cannot even be collected without NumPy: they
# import it directly, or import the array-based parts of the library
# (terrain generators / DEM, z-buffer, PRAM primitives, flat kernels).
# The CI matrix runs the remaining suite on the no-numpy leg to keep
# the pure-python engine fallback green.
if not HAVE_NUMPY:  # pragma: no cover - numpy ships in the toolchain
    collect_ignore = [
        "test_bench.py",
        "test_cli.py",
        "test_envelope_ccore.py",
        "test_envelope_flat.py",
        "test_envelope_flat_fused.py",
        "test_envelope_flat_splice.py",
        "test_envelope_flat_visibility.py",
        "test_envelope_packed.py",
        "test_hsr_graph.py",
        "test_hsr_pct_phase2.py",
        "test_hsr_pipeline.py",
        "test_hsr_property.py",
        "test_hsr_queries.py",
        "test_hsr_zbuffer.py",
        "test_parallel_exec.py",
        "test_ordering.py",
        "test_adversarial.py",
        "test_reliability.py",
        "test_pram_pool.py",
        "test_pram_primitives.py",
        "test_render.py",
        "test_scenarios.py",
        "test_terrain_dem_io.py",
        "test_terrain_generators.py",
        "test_terrain_generators_properties.py",
        "test_terrain_perspective.py",
    ]
    # test_scenarios_spec.py stays collected: the spec layer and the
    # `repro scenarios` CLI are deliberately stdlib-only.


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


def random_image_segments(
    rng: random.Random,
    count: int,
    *,
    y_range: tuple[float, float] = (0.0, 100.0),
    z_range: tuple[float, float] = (0.0, 50.0),
    min_width: float = 0.5,
) -> list[ImageSegment]:
    """Random non-vertical image segments with distinct sources."""
    out = []
    lo, hi = y_range
    for i in range(count):
        y1 = rng.uniform(lo, hi - min_width)
        y2 = rng.uniform(y1 + min_width, hi)
        z1 = rng.uniform(*z_range)
        z2 = rng.uniform(*z_range)
        out.append(ImageSegment(y1, z1, y2, z2, i))
    return out


def brute_force_envelope_value(segments, y: float) -> float:
    """Reference upper-envelope value at ``y``: max over segments."""
    best = float("-inf")
    for s in segments:
        if s.is_vertical:
            continue
        if s.y1 <= y <= s.y2:
            v = s.z_at(y)
            if v > best:
                best = v
    return best
