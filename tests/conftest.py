"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry.segments import ImageSegment


@pytest.fixture
def rng():
    """Deterministic RNG per test."""
    return random.Random(0xC0FFEE)


def random_image_segments(
    rng: random.Random,
    count: int,
    *,
    y_range: tuple[float, float] = (0.0, 100.0),
    z_range: tuple[float, float] = (0.0, 50.0),
    min_width: float = 0.5,
) -> list[ImageSegment]:
    """Random non-vertical image segments with distinct sources."""
    out = []
    lo, hi = y_range
    for i in range(count):
        y1 = rng.uniform(lo, hi - min_width)
        y2 = rng.uniform(y1 + min_width, hi)
        z1 = rng.uniform(*z_range)
        z2 = rng.uniform(*z_range)
        out.append(ImageSegment(y1, z1, y2, z2, i))
    return out


def brute_force_envelope_value(segments, y: float) -> float:
    """Reference upper-envelope value at ``y``: max over segments."""
    best = float("-inf")
    for s in segments:
        if s.is_vertical:
            continue
        if s.y1 <= y <= s.y2:
            v = s.z_at(y)
            if v > best:
                best = v
    return best
