"""Unit tests for Phase 1 (PCT) and Phase 2 (prefix propagation) —
the structural guts of the parallel algorithm."""

from __future__ import annotations

import pytest

from repro.envelope.build import build_envelope
from repro.envelope.visibility import visible_parts
from repro.errors import HsrError
from repro.hsr.pct import build_pct
from repro.hsr.phase2 import run_phase2
from repro.ordering.separator import SeparatorTree
from repro.ordering.sweep import front_to_back_order
from repro.pram.pool import SerialBackend
from repro.pram.tracker import PramTracker
from repro.terrain.generators import fractal_terrain, valley_terrain


@pytest.fixture(scope="module")
def scene():
    terrain = fractal_terrain(size=9, seed=19)
    order = front_to_back_order(terrain)
    tree = SeparatorTree(order)
    segs = terrain.image_segments()
    return terrain, order, tree, segs


class TestPhase1:
    def test_node_envelopes_are_subtree_envelopes(self, scene):
        terrain, order, tree, segs = scene
        pct = build_pct(tree, segs)
        # Spot-check every node at three levels including the root.
        levels = list(tree.levels())
        for level in (levels[0], levels[len(levels) // 2], levels[-1]):
            for node in level:
                subtree_segs = [
                    segs[order[i]] for i in range(node.lo, node.hi)
                ]
                want = build_envelope(subtree_segs).envelope
                got = pct.envelope_of(node)
                assert got.approx_equal(want, eps=1e-7), (
                    f"node [{node.lo},{node.hi}) envelope mismatch"
                )

    def test_root_is_horizon(self, scene):
        terrain, order, tree, segs = scene
        from repro.hsr.sequential import SequentialHSR

        pct = build_pct(tree, segs)
        horizon = SequentialHSR().final_profile(terrain)
        assert pct.envelope_of(tree.root).approx_equal(horizon, eps=1e-7)

    def test_ops_accounted(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        assert pct.ops >= tree.n_leaves

    def test_sharing_measurement(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs, measure_sharing=True)
        assert pct.layer_sharing
        for depth, frac in pct.layer_sharing:
            assert 0.0 <= frac <= 1.0

    def test_backend_equivalence(self, scene):
        _, _, tree, segs = scene
        a = build_pct(tree, segs)
        b = build_pct(tree, segs, backend=SerialBackend())
        for node in tree.nodes():
            assert a.envelope_of(node).approx_equal(b.envelope_of(node))


class TestPhase2:
    def test_leaf_inherited_profiles_are_prefixes(self, scene):
        """The defining invariant: at the leaf in order position i,
        visibility is computed against P_{i-1} — the envelope of all
        earlier segments."""
        terrain, order, tree, segs = scene
        pct = build_pct(tree, segs)
        ph2 = run_phase2(pct, segs, mode="direct")
        for i, edge in enumerate(order):
            prefix = [segs[order[j]] for j in range(i)]
            want = visible_parts(
                segs[edge], build_envelope(prefix).envelope
            )
            got = ph2.visibility[edge]
            assert len(got.parts) == len(want.parts), f"leaf {i}"
            for gp, wp in zip(got.parts, want.parts):
                assert abs(gp.ya - wp.ya) <= 1e-7
                assert abs(gp.yb - wp.yb) <= 1e-7

    def test_modes_agree(self, scene):
        _, order, tree, segs = scene
        pct = build_pct(tree, segs)
        results = {
            mode: run_phase2(pct, segs, mode=mode)
            for mode in ("direct", "persistent", "acg")
        }
        base = results["direct"]
        for mode in ("persistent", "acg"):
            other = results[mode]
            for edge in order:
                a, b = base.visibility[edge], other.visibility[edge]
                assert len(a.parts) == len(b.parts), (mode, edge)

    def test_unknown_mode(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        with pytest.raises(HsrError):
            run_phase2(pct, segs, mode="warp")

    def test_layer_stats_recorded(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        ph2 = run_phase2(pct, segs, mode="persistent")
        assert len(ph2.layers) == tree.height
        assert sum(l.merges for l in ph2.layers) == sum(
            1 for n in tree.nodes() if not n.is_leaf
        )
        assert ph2.ops == sum(l.ops for l in ph2.layers)

    def test_persistent_allocates_nodes(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        ph2 = run_phase2(pct, segs, mode="persistent")
        assert ph2.nodes_allocated > 0
        assert ph2.pieces_materialised == 0

    def test_direct_materialises_pieces(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        ph2 = run_phase2(pct, segs, mode="direct")
        assert ph2.pieces_materialised > 0
        assert ph2.nodes_allocated == 0

    def test_sharing_stats(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        ph2 = run_phase2(pct, segs, mode="persistent", measure_sharing=True)
        mid = [l for l in ph2.layers if l.total_nodes > 0]
        assert mid, "expected at least one layer with node stats"
        assert any(l.shared_nodes > 0 for l in mid)

    def test_crossings_counted(self):
        terrain = valley_terrain(rows=8, cols=8, seed=20)
        order = front_to_back_order(terrain)
        tree = SeparatorTree(order)
        segs = terrain.image_segments()
        pct = build_pct(tree, segs)
        ph2 = run_phase2(pct, segs, mode="direct")
        # An amphitheatre has many profile crossings.
        assert ph2.crossings > 0

    def test_tracker_depth_additive_over_layers(self, scene):
        _, _, tree, segs = scene
        pct = build_pct(tree, segs)
        tracker = PramTracker()
        run_phase2(pct, segs, mode="persistent", tracker=tracker)
        # One parallel region per layer: depth is at most layers × the
        # deepest merge, far below total work.
        assert tracker.depth < tracker.work
        assert tracker.depth <= tree.height * 64
