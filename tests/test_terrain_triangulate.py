"""Tests for the triangulation substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.predicates import incircle_exact
from repro.geometry.primitives import Point2
from repro.terrain.triangulate import (
    bowyer_watson,
    delaunay_faces,
    grid_faces,
    triangulate_monotone_polygon,
)


def random_points(rng, n, grid=1000):
    pts = set()
    while len(pts) < n:
        pts.add((rng.randint(0, grid), rng.randint(0, grid)))
    return [Point2(float(x), float(y)) for x, y in pts]


def check_delaunay(points, faces):
    """Every triangle's circumcircle must be empty of other points."""
    for (a, b, c) in faces:
        for d in range(len(points)):
            if d in (a, b, c):
                continue
            assert (
                incircle_exact(points[a], points[b], points[c], points[d])
                <= 0
            ), f"point {d} inside circumcircle of {(a, b, c)}"


class TestBowyerWatson:
    def test_triangle(self):
        pts = [Point2(0, 0), Point2(1, 0), Point2(0, 1)]
        faces = bowyer_watson(pts)
        assert faces == [(0, 1, 2)]

    def test_square(self):
        pts = [Point2(0, 0), Point2(1, 0), Point2(1, 1), Point2(0, 1)]
        faces = bowyer_watson(pts)
        assert len(faces) == 2

    def test_too_few(self):
        with pytest.raises(GeometryError):
            bowyer_watson([Point2(0, 0), Point2(1, 1)])

    def test_delaunay_property_random(self):
        rng = random.Random(3)
        pts = random_points(rng, 40)
        faces = bowyer_watson(pts)
        check_delaunay(pts, faces)
        # Euler: triangles = 2n - 2 - hull_size for a triangulated
        # point set; at minimum n-2.
        assert len(faces) >= len(pts) - 2

    def test_matches_scipy(self):
        pytest.importorskip("scipy")
        rng = random.Random(7)
        pts = random_points(rng, 60)
        ours = set(bowyer_watson(pts))
        import numpy as np
        from scipy.spatial import Delaunay

        sp = Delaunay(np.array([(p.x, p.y) for p in pts]))
        theirs = {tuple(sorted(map(int, s))) for s in sp.simplices}
        # Cocircular quadruples can flip diagonals; require >=90% match
        # and identical counts.
        assert len(ours) == len(theirs)
        assert len(ours & theirs) >= 0.9 * len(ours)


class TestDelaunayDispatch:
    def test_auto_small_uses_pure(self):
        pts = [Point2(0, 0), Point2(1, 0), Point2(0, 1), Point2(2, 2)]
        assert len(delaunay_faces(pts)) == 2

    def test_explicit_scipy(self):
        pytest.importorskip("scipy")
        rng = random.Random(11)
        pts = random_points(rng, 30)
        faces = delaunay_faces(pts, method="scipy")
        check_delaunay(pts, faces)

    def test_rejects_tiny(self):
        with pytest.raises(GeometryError):
            delaunay_faces([Point2(0, 0)])


class TestGridFaces:
    def test_counts(self):
        faces = grid_faces(3, 4)
        assert len(faces) == 2 * 2 * 3

    def test_indices_in_range(self):
        faces = grid_faces(4, 4)
        assert all(0 <= i < 16 for f in faces for i in f)

    def test_every_cell_covered(self):
        faces = grid_faces(3, 3)
        # Each of the 4 cells contributes exactly 2 triangles.
        assert len(faces) == 8
        assert len(set(faces)) == 8

    def test_too_small(self):
        with pytest.raises(GeometryError):
            grid_faces(1, 5)


class TestMonotoneTriangulation:
    def _area(self, chain, tris):
        def tri_area(a, b, c):
            return abs(
                (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)
            ) / 2

        return sum(tri_area(chain[i], chain[j], chain[k]) for i, j, k in tris)

    def test_convex_chain(self):
        chain = [Point2(0, 0), Point2(1, 1), Point2(2, 1.5), Point2(3, 0)]
        tris = triangulate_monotone_polygon(chain)
        assert len(tris) == len(chain) - 2

    def test_mountain_area_preserved(self):
        # A "mountain": chain above the baseline (0,0)-(4,0).
        chain = [
            Point2(0, 0),
            Point2(1, 2),
            Point2(2, 1),
            Point2(3, 3),
            Point2(4, 0),
        ]
        tris = triangulate_monotone_polygon(chain)
        assert len(tris) == len(chain) - 2
        # Shoelace area of the polygon chain + closing baseline.
        n = len(chain)
        poly_area = 0.0
        for i in range(n):
            p, q = chain[i], chain[(i + 1) % n]
            poly_area += p.x * q.y - q.x * p.y
        poly_area = abs(poly_area) / 2
        assert abs(self._area(chain, tris) - poly_area) < 1e-9

    def test_not_monotone_rejected(self):
        with pytest.raises(GeometryError):
            triangulate_monotone_polygon(
                [Point2(0, 0), Point2(2, 1), Point2(1, 2)]
            )

    def test_tiny_chains(self):
        assert triangulate_monotone_polygon([Point2(0, 0)]) == []
        assert (
            triangulate_monotone_polygon([Point2(0, 0), Point2(1, 0)]) == []
        )

    @given(
        st.lists(st.floats(0.1, 10, allow_nan=False), min_size=3, max_size=20)
    )
    @settings(max_examples=60, deadline=None)
    def test_mountain_property(self, heights):
        chain = [Point2(0, 0)] + [
            Point2(float(i + 1), h) for i, h in enumerate(heights)
        ] + [Point2(float(len(heights) + 1), 0)]
        tris = triangulate_monotone_polygon(chain)
        assert len(tris) == len(chain) - 2
        n = len(chain)
        poly_area = 0.0
        for i in range(n):
            p, q = chain[i], chain[(i + 1) % n]
            poly_area += p.x * q.y - q.x * p.y
        poly_area = abs(poly_area) / 2
        assert abs(self._area(chain, tris) - poly_area) < 1e-6 * max(
            poly_area, 1.0
        )
