"""Tests for point-visibility queries."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.geometry.primitives import Point3
from repro.hsr.queries import VisibilityOracle, point_visible
from repro.terrain.generators import (
    fractal_terrain,
    grid_terrain_from_heights,
)


@pytest.fixture(scope="module")
def ramp():
    """Plane rising toward the viewer (crest occludes the far side)."""
    rows = cols = 8
    h = np.arange(rows, dtype=float)[:, None] * np.ones((1, cols))
    return grid_terrain_from_heights(h, jitter_seed=1)


class TestPointVisible:
    def test_above_everything(self, ramp):
        assert point_visible(ramp, Point3(0.0, 3.0, 100.0))

    def test_in_front_of_everything(self, ramp):
        assert point_visible(ramp, Point3(50.0, 3.0, 0.5))

    def test_behind_crest_low(self, ramp):
        # Far side of the ramp, below the crest height: occluded.
        assert not point_visible(ramp, Point3(0.0, 3.0, 1.0))

    def test_behind_crest_above(self, ramp):
        # Far side but above the crest: visible.
        assert point_visible(ramp, Point3(0.0, 3.0, 10.0))

    def test_outside_y_range(self, ramp):
        # No edge covers this y: nothing can occlude.
        assert point_visible(ramp, Point3(0.0, 1e6, -100.0))

    def test_point_on_surface_visible_when_front(self, ramp):
        # A point on the crest surface itself.
        v = ramp.vertices[ramp.n_vertices - 1]
        assert point_visible(ramp, v)


class TestOracle:
    def test_matches_reference_random(self):
        t = fractal_terrain(size=9, seed=23)
        oracle = VisibilityOracle(t)
        rng = random.Random(5)
        x0, y0, x1, y1 = t.xy_bounds()
        z0, z1 = t.height_range()
        pts = [
            Point3(
                rng.uniform(x0 - 2, x1 + 2),
                rng.uniform(y0, y1),
                rng.uniform(z0 - 2, z1 + 4),
            )
            for _ in range(120)
        ]
        got = oracle.visible_many(pts)
        want = [point_visible(t, p) for p in pts]
        assert got == want

    def test_matches_reference_on_surface_points(self):
        t = fractal_terrain(size=9, seed=24)
        oracle = VisibilityOracle(t)
        for v in t.vertices[:: max(1, t.n_vertices // 40)]:
            assert oracle.visible(v) == point_visible(t, v)

    def test_checkpoint_count(self):
        t = fractal_terrain(size=9, seed=25)
        oracle = VisibilityOracle(t, checkpoints=5)
        assert 2 <= oracle.n_checkpoints <= 8

    def test_single_checkpoint_degenerate(self):
        t = fractal_terrain(size=5, seed=26)
        oracle = VisibilityOracle(t, checkpoints=1)
        rng = random.Random(2)
        x0, y0, x1, y1 = t.xy_bounds()
        for _ in range(30):
            p = Point3(
                rng.uniform(x0, x1), rng.uniform(y0, y1), rng.uniform(0, 8)
            )
            assert oracle.visible(p) == point_visible(t, p)

    def test_visible_points_match_visible_edges(self):
        """Midpoints of visible edge portions must be visible points;
        midpoints of fully hidden edges must not."""
        from repro.hsr.sequential import SequentialHSR

        t = fractal_terrain(size=9, seed=27)
        res = SequentialHSR().run(t)
        visible_edges = res.visibility_map.visible_edges()
        oracle = VisibilityOracle(t)
        checked_vis = checked_hid = 0
        for e in range(t.n_edges):
            a, b = t.edge_endpoints(e)
            mid = Point3(
                (a.x + b.x) / 2, (a.y + b.y) / 2, (a.z + b.z) / 2
            )
            if e in visible_edges:
                ivals = res.visibility_map.edge_intervals(e)
                total = sum(y2 - y1 for y1, y2 in ivals)
                seg = t.image_segment(e)
                if (
                    not seg.is_vertical
                    and total >= (seg.y2 - seg.y1) - 1e-9
                ):
                    # Fully visible edge: its midpoint must be visible.
                    assert oracle.visible(mid), f"edge {e} midpoint"
                    checked_vis += 1
            else:
                assert not oracle.visible(mid) or _near_silhouette(
                    t, mid
                ), f"hidden edge {e} midpoint visible"
                checked_hid += 1
        assert checked_vis > 5 and checked_hid > 5


def _near_silhouette(t, p, eps=1e-6) -> bool:
    """Borderline case: the midpoint sits within eps of the occluding
    profile (grazing contact) — either verdict is acceptable."""
    from repro.geometry.primitives import NEG_INF

    best = NEG_INF
    for e in range(t.n_edges):
        m = t.map_segment(e)
        if m.y1 <= p.y <= m.y2 and m.x_at(p.y) > p.x + 1e-12:
            z = t.image_segment(e).z_at(p.y)
            best = max(best, z)
    return best != NEG_INF and abs(best - p.z) < 1e-6
