"""Tests for perspective viewing (paper §2: "the algorithm works for
perspective projection as well")."""

from __future__ import annotations


import numpy as np
import pytest

from repro.errors import TerrainError
from repro.geometry.primitives import Point3
from repro.hsr.parallel import ParallelHSR
from repro.hsr.sequential import SequentialHSR
from repro.terrain.generators import (
    fractal_terrain,
    grid_terrain_from_heights,
)
from repro.terrain.model import Terrain
from repro.terrain.perspective import (
    Viewpoint,
    perspective_image_point,
    perspective_transform,
)


def two_walls(near_height=2.0, far_height=4.0):
    """A short near wall at x≈9 and a tall far wall at x≈0.

    Each wall is a thin triangle strip; heights as given.
    """
    heights = np.zeros((6, 4))
    heights[0:2, :] = far_height  # far rows (small x)
    heights[4:6, :] = near_height  # near rows (large x)
    return grid_terrain_from_heights(heights, spacing=2.0, jitter_seed=2)


class TestImagePoint:
    def test_center_ray(self):
        view = Viewpoint(10.0, 0.0, 0.0)
        assert perspective_image_point(Point3(0, 0, 0), view) == (0.0, 0.0)

    def test_scaling_with_depth(self):
        view = Viewpoint(10.0, 0.0, 0.0)
        near = perspective_image_point(Point3(9, 1, 1), view)
        far = perspective_image_point(Point3(0, 1, 1), view)
        assert near[0] == pytest.approx(1.0)
        assert far[0] == pytest.approx(0.1)

    def test_behind_camera_rejected(self):
        view = Viewpoint(10.0, 0.0, 0.0)
        with pytest.raises(TerrainError):
            perspective_image_point(Point3(11, 0, 0), view)


class TestTransform:
    def test_depth_order_preserved(self):
        t = fractal_terrain(size=9, seed=1)
        xmax = max(v.x for v in t.vertices)
        view = Viewpoint(xmax + 5.0, 0.0, 100.0)
        pt = perspective_transform(t, view)
        # x' = -1/(vx - x) is increasing in x: order preserved.
        orig = sorted(range(t.n_vertices), key=lambda i: t.vertices[i].x)
        new = sorted(range(t.n_vertices), key=lambda i: pt.vertices[i].x)
        assert orig == new

    def test_structure_preserved(self):
        t = fractal_terrain(size=9, seed=2)
        view = Viewpoint(max(v.x for v in t.vertices) + 10.0, 5.0, 50.0)
        pt = perspective_transform(t, view)
        assert pt.faces == t.faces
        assert pt.n_edges == t.n_edges

    def test_too_close_rejected(self):
        t = fractal_terrain(size=5, seed=3)
        xmax = max(v.x for v in t.vertices)
        with pytest.raises(TerrainError, match="too close"):
            perspective_transform(t, Viewpoint(xmax, 0.0, 10.0))

    def test_projective_image_matches_pointwise(self):
        t = fractal_terrain(size=5, seed=4)
        view = Viewpoint(max(v.x for v in t.vertices) + 3.0, 1.0, 20.0)
        pt = perspective_transform(t, view)
        for orig, moved in zip(t.vertices, pt.vertices):
            yz = perspective_image_point(orig, view)
            assert moved.y == pytest.approx(yz[0])
            assert moved.z == pytest.approx(yz[1])


class TestPerspectiveVisibility:
    def test_algorithms_agree_on_perspective_scene(self):
        t = fractal_terrain(size=9, seed=5)
        view = Viewpoint(
            max(v.x for v in t.vertices) + 8.0,
            0.0,
            t.height_range()[1] + 5.0,
        )
        pt = perspective_transform(t, view)
        seq = SequentialHSR().run(pt)
        par = ParallelHSR().run(pt)
        assert par.visibility_map.approx_same(seq.visibility_map, tol=1e-6)

    def test_near_wall_hides_far_wall_only_in_perspective(self):
        t = two_walls()
        xmax = max(v.x for v in t.vertices)

        # Orthographic: the far wall's top (z=4) rises above the near
        # wall (z=2), so far-wall edges are partially visible.
        ortho = SequentialHSR().run(t)
        far_top_edges = _edges_at_height(t, 4.0)
        assert any(
            e in ortho.visibility_map.visible_edges()
            for e in far_top_edges
        )

        # Perspective from a low viewpoint just behind the near wall:
        # the near wall subtends a large angle and hides the far wall.
        view = Viewpoint(xmax + 1.0, 2.0, 0.0)
        pt = perspective_transform(t, view)
        persp = SequentialHSR().run(pt)
        visible = persp.visibility_map.visible_edges()
        assert not any(e in visible for e in far_top_edges)

        # From high above, the far wall becomes visible again.
        view_hi = Viewpoint(xmax + 1.0, 2.0, 50.0)
        pt_hi = perspective_transform(t, view_hi)
        persp_hi = SequentialHSR().run(pt_hi)
        assert any(
            e in persp_hi.visibility_map.visible_edges()
            for e in far_top_edges
        )


def _edges_at_height(t: Terrain, z: float, tol: float = 0.5) -> list[int]:
    """Edges whose both endpoints sit near height ``z``."""
    out = []
    for e in range(t.n_edges):
        a, b = t.edge_endpoints(e)
        if abs(a.z - z) < tol and abs(b.z - z) < tol:
            out.append(e)
    return out
