"""Tests for SVG / ASCII rendering backends."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.envelope.chain import Envelope, Piece
from repro.hsr.result import VisibilityMap, VisibleSegment
from repro.hsr.sequential import SequentialHSR
from repro.render.ascii_art import ascii_visibility
from repro.render.svg import render_envelope_svg, render_visibility_svg
from repro.terrain.generators import fractal_terrain


def small_vmap():
    vm = VisibilityMap()
    vm.add_segment(VisibleSegment(0, 0.0, 0.0, 5.0, 3.0))
    vm.add_segment(VisibleSegment(1, 5.0, 3.0, 9.0, 1.0))
    vm.add_segment(VisibleSegment(2, 4.0, 4.0, 4.0, 4.0))  # point
    return vm


class TestSvg:
    def test_valid_xml(self):
        text = render_visibility_svg(small_vmap())
        root = ET.fromstring(text)
        assert root.tag.endswith("svg")

    def test_contains_lines_and_points(self):
        text = render_visibility_svg(small_vmap())
        assert text.count("<line") == 2
        assert text.count("<circle") == 1

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.svg"
        render_visibility_svg(small_vmap(), path)
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_empty_map(self):
        text = render_visibility_svg(VisibilityMap())
        ET.fromstring(text)

    def test_envelope_svg(self):
        env = Envelope(
            [Piece(0, 0, 3, 2, 0), Piece(5, 1, 8, 1, 1)]  # gap at [3,5]
        )
        text = render_envelope_svg(env)
        ET.fromstring(text)
        # The gap must split the profile into two polylines.
        assert text.count("<polyline") == 2

    def test_envelope_svg_empty(self):
        ET.fromstring(render_envelope_svg(Envelope.empty()))

    def test_real_scene(self, tmp_path):
        t = fractal_terrain(size=9, seed=4)
        res = SequentialHSR().run(t)
        text = render_visibility_svg(
            res.visibility_map, tmp_path / "scene.svg"
        )
        assert text.count("<line") >= 10


class TestAscii:
    def test_dimensions(self):
        art = ascii_visibility(small_vmap(), width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_not_blank(self):
        art = ascii_visibility(small_vmap())
        assert any(ch != " " for ch in art)

    def test_empty(self):
        assert "empty" in ascii_visibility(VisibilityMap())

    def test_real_scene(self):
        t = fractal_terrain(size=9, seed=4)
        res = SequentialHSR().run(t)
        art = ascii_visibility(res.visibility_map)
        filled = sum(1 for ch in art if ch not in " \n")
        assert filled > 50
