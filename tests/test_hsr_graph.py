"""Tests for the planar-graph view of the visibility map."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.hsr.graph import graph_summary, visibility_graph
from repro.hsr.result import VisibilityMap, VisibleSegment
from repro.hsr.sequential import SequentialHSR
from repro.terrain.generators import fractal_terrain, valley_terrain


def vm_with(*segs):
    vm = VisibilityMap()
    for s in segs:
        vm.add_segment(VisibleSegment(*s))
    return vm


class TestGraphConstruction:
    def test_empty(self):
        g = visibility_graph(VisibilityMap())
        assert g.number_of_nodes() == 0
        s = graph_summary(VisibilityMap())
        assert s["k"] == 0.0 and s["components"] == 0.0

    def test_chain(self):
        vm = vm_with(
            (0, 0.0, 0.0, 1.0, 1.0),
            (1, 1.0, 1.0, 2.0, 0.0),
        )
        g = visibility_graph(vm)
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        assert nx.number_connected_components(g) == 1

    def test_shared_vertex_welds(self):
        # Endpoints equal to within the quantum collapse to one node.
        vm = vm_with(
            (0, 0.0, 0.0, 1.0, 1.0),
            (1, 1.0 + 1e-9, 1.0 - 1e-9, 2.0, 0.0),
        )
        g = visibility_graph(vm)
        assert g.number_of_nodes() == 3

    def test_coincident_segments_merge_sources(self):
        vm = vm_with(
            (0, 0.0, 0.0, 1.0, 0.0),
            (5, 0.0, 0.0, 1.0, 0.0),
        )
        g = visibility_graph(vm)
        assert g.number_of_edges() == 1
        (_, _, data), = g.edges(data=True)
        assert data["sources"] == {0, 5}

    def test_point_segment_isolated_node(self):
        vm = vm_with((3, 2.0, 5.0, 2.0, 5.0))
        g = visibility_graph(vm)
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0

    def test_edge_lengths(self):
        vm = vm_with((0, 0.0, 0.0, 3.0, 4.0))
        g = visibility_graph(vm)
        (_, _, data), = g.edges(data=True)
        assert data["length"] == pytest.approx(5.0)


class TestRealScenes:
    @pytest.fixture(scope="class")
    def scene(self):
        t = fractal_terrain(size=17, seed=13)
        return SequentialHSR().run(t)

    def test_planarity_edge_bound(self, scene):
        # Planar graphs satisfy E <= 3V - 6 (V >= 3).
        g = visibility_graph(scene.visibility_map)
        v = g.number_of_nodes()
        e = g.number_of_edges()
        assert v >= 3
        assert e <= 3 * v - 6

    def test_is_actually_planar(self, scene):
        g = visibility_graph(scene.visibility_map)
        is_planar, _ = nx.check_planarity(g)
        assert is_planar

    def test_total_length_matches_map(self, scene):
        s = graph_summary(scene.visibility_map)
        assert s["total_length"] == pytest.approx(
            scene.visibility_map.total_visible_length(), rel=1e-6
        )

    def test_k_close_to_map_k(self, scene):
        s = graph_summary(scene.visibility_map)
        # Graph k can differ from map k only by merged coincident
        # segments and welded vertices: stay within 5%.
        assert abs(s["k"] - scene.k) <= 0.05 * scene.k + 2

    def test_valley_more_connected_than_fractal(self):
        frac = SequentialHSR().run(fractal_terrain(size=9, seed=14))
        vall = SequentialHSR().run(valley_terrain(rows=9, cols=9, seed=14))
        sf = graph_summary(frac.visibility_map)
        sv = graph_summary(vall.visibility_map)
        # An amphitheatre's visible image is one big connected sheet;
        # a fractal's is fragmented ridge crests.
        assert sv["components"] / sv["nodes"] < sf["components"] / sf["nodes"]
