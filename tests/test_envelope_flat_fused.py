"""Tests for the fused visibility+merge window kernel (flat_fused).

Contract under test: ``insert_segment_flat`` with the fused kernel —
scalar loop, vectorized sweep, hidden/visible fast paths, and the
``USE_FUSED_INSERT`` ablation — is *bit-exact* vs the
``engine="python"`` reference ``insert_segment`` (same visibility
parts/crossings/ops, same profile pieces, same total ops), and the
dispatch boundaries at :data:`repro.envelope.engine.FLAT_FUSED_CUTOFF`
and :data:`~repro.envelope.engine.FLAT_VISIBILITY_CUTOFF` are pinned
so future re-tuning cannot silently change which kernel answers which
window — only wall clock may move.
"""

from __future__ import annotations

import random

import pytest

import repro.envelope.engine as engine_mod
import repro.envelope.flat_fused as fused_mod
import repro.envelope.flat_splice as splice_mod
from repro.envelope.chain import Envelope
from repro.envelope.flat_splice import FlatProfile, insert_segment_flat
from repro.envelope.splice import insert_segment
from repro.geometry.segments import ImageSegment
from tests.conftest import random_image_segments


def _assert_incremental_parity(segs):
    env = Envelope.empty()
    prof = FlatProfile.empty()
    for s in segs:
        rp = insert_segment(env, s, engine="python")
        rf = insert_segment_flat(prof, s)
        assert rf.ops == rp.ops, s
        assert rf.visibility == rp.visibility, s
        env = rp.envelope
        prof = rf.profile
    assert prof.to_envelope().pieces == env.pieces
    return prof


@pytest.mark.parametrize(
    "fused_cutoff", [None, 1, 10**9], ids=["default", "vectorized", "scalar"]
)
class TestFusedInsertParity:
    """Every fused regime replicates the python engine bit for bit."""

    @pytest.fixture(autouse=True)
    def _cutoff(self, fused_cutoff, monkeypatch):
        if fused_cutoff is not None:
            monkeypatch.setattr(
                engine_mod, "FLAT_FUSED_CUTOFF", fused_cutoff
            )

    def test_random_runs(self, rng):
        for _ in range(8):
            _assert_incremental_parity(
                random_image_segments(rng, rng.randint(2, 120))
            )

    def test_layered_bands_exercise_fast_paths(self):
        # Alternating z bands: many fully-hidden and fully-visible
        # inserts, the regimes the fast paths answer without a sweep.
        rng = random.Random(97)
        segs = []
        for i, band in enumerate((50.0, 10.0, 90.0, 30.0, 70.0) * 30):
            y1 = rng.uniform(0, 95)
            segs.append(
                ImageSegment(
                    y1,
                    band + rng.uniform(-3, 3),
                    y1 + rng.uniform(0.6, 30),
                    band + rng.uniform(-3, 3),
                    i,
                )
            )
        _assert_incremental_parity(segs)

    def test_exact_breakpoint_touches(self, rng):
        # Segments re-using existing profile breakpoints hit the
        # coincident-endpoint shortcuts of every kernel.
        env = Envelope.empty()
        prof = FlatProfile.empty()
        for j, s in enumerate(random_image_segments(rng, 70)):
            if j % 3 == 2 and env.pieces:
                p = env.pieces[rng.randrange(len(env.pieces))]
                s = ImageSegment(
                    p.ya,
                    rng.uniform(0, 120),
                    p.yb,
                    rng.uniform(0, 120),
                    1000 + j,
                )
            rp = insert_segment(env, s, engine="python")
            rf = insert_segment_flat(prof, s)
            assert rf.ops == rp.ops, (j, s)
            assert rf.visibility == rp.visibility, (j, s)
            env = rp.envelope
            prof = rf.profile
        assert prof.to_envelope().pieces == env.pieces


class TestFusedAblationAndFallbacks:
    def test_unfused_ablation_matches(self, rng, monkeypatch):
        # USE_FUSED_INSERT=False must route through PR 3's cascade and
        # still agree (the bench relies on this toggle).
        monkeypatch.setattr(splice_mod, "USE_FUSED_INSERT", False)
        _assert_incremental_parity(random_image_segments(rng, 80))

    def test_synthetic_source_takes_cascade(self, monkeypatch):
        # Negative sources coalesce on the builder's slope rule; the
        # fused kernel must not see them.
        calls = []
        orig = fused_mod.fused_insert_window

        def counting(*a, **k):
            calls.append(a)
            return orig(*a, **k)

        monkeypatch.setattr(
            fused_mod, "fused_insert_window", counting
        )
        segs = [
            ImageSegment(0.0, 1.0, 4.0, 2.0, -1),
            ImageSegment(2.0, 0.5, 6.0, 3.0, -1),
            ImageSegment(1.0, 2.5, 5.0, 2.5, 3),
        ]
        _assert_incremental_parity(segs)
        assert calls == []  # synthetic windows never reach the kernel

    def test_hidden_insert_shares_profile(self, rng):
        base = ImageSegment(0.0, 50.0, 100.0, 50.0, 0)
        prof = insert_segment_flat(FlatProfile.empty(), base).profile
        below = ImageSegment(10.0, 5.0, 60.0, 5.0, 1)
        res = insert_segment_flat(prof, below)
        assert res.profile is prof  # no splice on hidden inserts
        assert res.visibility.fully_hidden
        assert res.ops == insert_segment(
            Envelope([*prof.to_envelope().pieces]), below, engine="python"
        ).ops


def _strip_profile(n):
    """A profile of exactly ``n`` contiguous single-source pieces."""
    prof = FlatProfile.empty()
    env = Envelope.empty()
    rng = random.Random(1234 + n)
    for i in range(n):
        s = ImageSegment(
            float(i), 10.0 + rng.uniform(0, 5), float(i + 1),
            10.0 + rng.uniform(0, 5), i,
        )
        prof = insert_segment_flat(prof, s).profile
        env = insert_segment(env, s, engine="python").envelope
    assert prof.size == n and env.size == n
    return prof, env


class TestCutoffBoundaries:
    """Pin dispatch behaviour exactly at, one below and one above the
    cutoffs, so re-tuning the constants cannot silently change parity
    (only wall clock)."""

    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_fused_cutoff_boundary(self, delta, monkeypatch):
        cutoff = engine_mod.FLAT_FUSED_CUTOFF
        win = cutoff + delta
        prof, env = _strip_profile(win)
        scalar_calls, flat_calls = [], []
        monkeypatch.setattr(
            splice_mod,
            "USE_FUSED_INSERT",
            True,
        )
        orig_s = fused_mod.fused_insert_window
        orig_f = fused_mod.fused_insert_window_flat
        monkeypatch.setattr(
            fused_mod,
            "fused_insert_window",
            lambda *a, **k: (scalar_calls.append(1), orig_s(*a, **k))[1],
        )
        monkeypatch.setattr(
            fused_mod,
            "fused_insert_window_flat",
            lambda *a, **k: (flat_calls.append(1), orig_f(*a, **k))[1],
        )
        # Overlaps all ``win`` pieces; mid-height so the sweep runs.
        seg = ImageSegment(0.25, 12.0, win - 0.25, 13.0, 5000)
        assert prof.pieces_overlapping(seg.y1, seg.y2) == (0, win)
        rf = insert_segment_flat(prof, seg)
        rp = insert_segment(env, seg, engine="python")
        assert rf.ops == rp.ops
        assert rf.visibility == rp.visibility
        assert rf.profile.to_envelope().pieces == rp.envelope.pieces
        if win >= cutoff:
            assert flat_calls and not scalar_calls
        else:
            assert scalar_calls and not flat_calls

    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_visibility_cutoff_boundary(self, delta, monkeypatch):
        # The unfused cascade still dispatches on
        # FLAT_VISIBILITY_CUTOFF; pin which kernel answers at the
        # boundary and that results are identical either way.
        import repro.envelope.flat_visibility as vis_mod

        monkeypatch.setattr(splice_mod, "USE_FUSED_INSERT", False)
        cutoff = engine_mod.FLAT_VISIBILITY_CUTOFF
        win = cutoff + delta
        prof, env = _strip_profile(win)
        batched = []
        orig = vis_mod.visible_parts_flat
        monkeypatch.setattr(
            vis_mod,
            "visible_parts_flat",
            lambda *a, **k: (batched.append(1), orig(*a, **k))[1],
        )
        seg = ImageSegment(0.25, 12.0, win - 0.25, 13.0, 6000)
        assert prof.pieces_overlapping(seg.y1, seg.y2) == (0, win)
        rf = insert_segment_flat(prof, seg)
        rp = insert_segment(env, seg, engine="python")
        assert rf.ops == rp.ops
        assert rf.visibility == rp.visibility
        assert rf.profile.to_envelope().pieces == rp.envelope.pieces
        assert bool(batched) == (win >= cutoff)


class TestRunEmissionAblation:
    def test_build_parity_both_emissions(self, rng):
        import repro.envelope.flat as flat_mod
        from repro.envelope.build import build_envelope

        old = flat_mod.USE_RUN_EMISSION
        try:
            segs = random_image_segments(rng, 180)
            results = []
            for toggle in (False, True):
                flat_mod.USE_RUN_EMISSION = toggle
                results.append(build_envelope(segs, engine="numpy"))
            ref = build_envelope(segs, engine="python")
            for res in results:
                assert res.envelope.pieces == ref.envelope.pieces
                assert res.crossings == ref.crossings
                assert res.ops == ref.ops
        finally:
            flat_mod.USE_RUN_EMISSION = old
