"""Unit tests for the PRAM work/depth tracker."""

from __future__ import annotations

import pytest

from repro.errors import PramError
from repro.pram.tracker import PramTracker


class TestCharges:
    def test_sequential_charges_add(self):
        t = PramTracker()
        t.charge(5)
        t.charge(3)
        assert t.work == 8
        assert t.depth == 8

    def test_explicit_depth(self):
        t = PramTracker()
        t.charge(100, 3)
        assert t.work == 100
        assert t.depth == 3

    def test_negative_rejected(self):
        t = PramTracker()
        with pytest.raises(PramError):
            t.charge(-1)
        with pytest.raises(PramError):
            t.charge(1, -2)

    def test_parallelism(self):
        t = PramTracker()
        t.charge(100, 4)
        assert t.parallelism == 25.0
        assert PramTracker().parallelism == 0.0


class TestParallelRegions:
    def test_work_sums_depth_maxes(self):
        t = PramTracker()
        with t.parallel() as par:
            with par.branch():
                t.charge(10, 2)
            with par.branch():
                t.charge(5, 7)
        assert t.work == 15
        assert t.depth == 7

    def test_spawn_shorthand(self):
        t = PramTracker()
        with t.parallel() as par:
            par.spawn(10, 2)
            par.spawn(20, 5)
        assert t.work == 30
        assert t.depth == 5

    def test_nested_regions(self):
        t = PramTracker()
        with t.parallel() as outer:
            with outer.branch():
                with t.parallel() as inner:
                    inner.spawn(4, 1)
                    inner.spawn(4, 1)
                t.charge(2, 2)
            with outer.branch():
                t.charge(1, 1)
        # Branch 1: work 8+2, depth max(1)+2 = 3; branch 2: 1/1.
        assert t.work == 11
        assert t.depth == 3

    def test_sequential_after_parallel(self):
        t = PramTracker()
        with t.parallel() as par:
            par.spawn(8, 2)
        t.charge(3)
        assert t.work == 11
        assert t.depth == 5

    def test_empty_region(self):
        t = PramTracker()
        with t.parallel():
            pass
        assert t.work == 0
        assert t.depth == 0


class TestPhases:
    def test_phase_records(self):
        t = PramTracker()
        with t.phase("a"):
            with t.parallel() as par:
                par.spawn(10, 2)
                par.spawn(10, 3)
        with t.phase("b"):
            t.charge(5)
        assert [p.name for p in t.phases] == ["a", "b"]
        a, b = t.phases
        assert a.work == 20
        assert a.depth == 3
        assert a.tasks == 2
        assert a.max_task_depth == 3
        assert b.work == 5 and b.depth == 5

    def test_nested_phase_work_attribution(self):
        t = PramTracker()
        with t.phase("outer"):
            with t.phase("inner"):
                t.charge(7)
        inner = next(p for p in t.phases if p.name == "inner")
        outer = next(p for p in t.phases if p.name == "outer")
        assert inner.work == 7
        assert outer.work == 7  # outer phases see nested work

    def test_snapshot(self):
        t = PramTracker()
        t.charge(2)
        assert t.snapshot() == (2, 2)
