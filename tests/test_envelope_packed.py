"""Tests for the packed single-buffer profile layout.

Three contracts:

* **Splice mechanics** — grow/shift/shrink boundary behaviour of
  :meth:`PackedProfile.splice` (in-place window writes, head-vs-tail
  shifts into the slack, amortized-doubling growth), pinned by unit
  cases at the slack edges and a hypothesis fuzz against a pure-list
  reference model.
* **Bit-exact parity** — insert sequences and full ``SequentialHSR``
  runs on the packed layout produce the identical visibility map,
  ``ops``, ``max_profile_size`` and profile pieces as
  ``engine="python"`` and as the immutable ``FlatProfile`` layout,
  across forced-kernel cutoffs and tiny initial capacities (every
  insert near a grow boundary).
* **Stale views** — windows taken before a reallocation still see the
  old buffer (they are never silently re-pointed), and the insert path
  re-derives its windows from the live profile per insert, so no
  kernel ever reads a pre-splice view after the splice.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.envelope.engine as engine_mod
import repro.envelope.flat_splice as splice_mod
from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.flat import FlatEnvelope
from repro.envelope.flat_splice import (
    FlatProfile,
    insert_segment_flat,
)
from repro.envelope.packed import MIN_CAPACITY, PackedProfile
from repro.envelope.splice import insert_segment
from repro.geometry.segments import ImageSegment
from tests.conftest import random_image_segments


def _rows(prof: PackedProfile) -> list[tuple]:
    """Live pieces as plain tuples (the reference representation)."""
    return list(
        zip(
            prof.ya.tolist(),
            prof.za.tolist(),
            prof.yb.tolist(),
            prof.zb.tolist(),
            prof.source.tolist(),
        )
    )


def _mk_piece(i: int) -> tuple:
    return (float(i), float(i) + 0.25, float(i) + 0.5, float(i) + 0.75, i)


def _fields(pieces: list[tuple]) -> tuple:
    return tuple([p[f] for p in pieces] for f in range(5))


class TestSpliceMechanics:
    def test_empty_window_insert_and_whole_profile_replace(self):
        prof = PackedProfile.empty()
        prof.splice(0, 0, *_fields([_mk_piece(0), _mk_piece(1)]))
        assert _rows(prof) == [_mk_piece(0), _mk_piece(1)]
        # Whole-profile replacement.
        prof.splice(0, 2, *_fields([_mk_piece(7)]))
        assert _rows(prof) == [_mk_piece(7)]
        # Empty-window *removal* is a no-op.
        assert prof.splice(1, 1, [], [], [], [], []) is prof
        assert _rows(prof) == [_mk_piece(7)]

    def test_in_place_window_write_moves_nothing(self):
        prof = PackedProfile.empty()
        prof.splice(0, 0, *_fields([_mk_piece(i) for i in range(4)]))
        buf = prof._buf
        slack = prof.slack
        prof.splice(1, 3, *_fields([_mk_piece(10), _mk_piece(11)]))
        # Same piece count: same buffer, same slack, only the window
        # bytes changed.
        assert prof._buf is buf
        assert prof.slack == slack
        assert _rows(prof) == [
            _mk_piece(0),
            _mk_piece(10),
            _mk_piece(11),
            _mk_piece(3),
        ]

    def test_shift_prefers_cheaper_side(self):
        prof = PackedProfile.empty(64)
        prof.splice(0, 0, *_fields([_mk_piece(i) for i in range(10)]))
        head0, tail0 = prof.slack
        # Grow near the tail: the tail (1 piece) is cheaper to move
        # than the head (8 pieces) — tail slack shrinks.
        prof.splice(8, 9, *_fields([_mk_piece(20), _mk_piece(21)]))
        head1, tail1 = prof.slack
        assert head1 == head0 and tail1 == tail0 - 1
        # Grow near the head: head moves instead.
        prof.splice(1, 2, *_fields([_mk_piece(30), _mk_piece(31)]))
        head2, tail2 = prof.slack
        assert tail2 == tail1 and head2 == head1 - 1

    def test_splice_at_both_slack_edges(self):
        prof = PackedProfile.empty(8)
        prof.splice(0, 0, *_fields([_mk_piece(1)]))
        # Prepend until the head slack is exhausted, then keep going —
        # the splice must shift or grow, never corrupt.
        for i in range(2, 12):
            prof.splice(0, 0, *_fields([_mk_piece(100 - i)]))
            assert prof.size == i
        # Append past the tail slack.
        n = prof.size
        for i in range(10):
            prof.splice(n + i, n + i, *_fields([_mk_piece(200 + i)]))
        rows = _rows(prof)
        assert [r[4] for r in rows[-10:]] == list(range(200, 210))
        assert prof.size == n + 10

    def test_splice_exactly_at_capacity_grows(self):
        prof = PackedProfile.empty(4)
        pieces = [_mk_piece(i) for i in range(4)]
        prof.splice(0, 0, *_fields(pieces))
        assert prof.capacity >= 4
        # Consume every slack lane with single appends (each eats one
        # lane — tail slack first, then head shifts).
        guard = 0
        while prof.slack != (0, 0):
            n = prof.size
            prof.splice(n, n, *_fields([_mk_piece(10 + n)]))
            guard += 1
            assert guard < 10_000
        assert prof.slack == (0, 0)
        old_buf = prof._buf
        # One more insert in the middle: no slack on either side —
        # must reallocate (amortized doubling) and preserve contents.
        before = _rows(prof)
        prof.splice(2, 2, *_fields([_mk_piece(99)]))
        assert prof._buf is not old_buf
        assert prof.capacity >= 2 * (len(before) + 1)
        assert _rows(prof) == before[:2] + [_mk_piece(99)] + before[2:]

    def test_shrink_both_sides(self):
        for cut_lo, cut_hi in ((0, 3), (5, 8), (2, 6), (0, 8)):
            prof = PackedProfile.empty()
            pieces = [_mk_piece(i) for i in range(8)]
            prof.splice(0, 0, *_fields(pieces))
            prof.splice(cut_lo, cut_hi, [], [], [], [], [])
            assert _rows(prof) == pieces[:cut_lo] + pieces[cut_hi:]

    def test_from_splice_copies_parent_untouched(self):
        parent = PackedProfile.empty()
        pieces = [_mk_piece(i) for i in range(6)]
        parent.splice(0, 0, *_fields(pieces))
        child = PackedProfile.from_splice(
            parent, 2, 4, *_fields([_mk_piece(50)])
        )
        assert _rows(child) == pieces[:2] + [_mk_piece(50)] + pieces[4:]
        assert _rows(parent) == pieces  # parent only read
        assert child._buf is not parent._buf
        # Also works from a plain FlatEnvelope parent.
        flat = FlatEnvelope.empty()
        child2 = PackedProfile.from_splice(flat, 0, 0, *_fields(pieces))
        assert _rows(child2) == pieces

    def test_min_capacity_floor(self):
        prof = PackedProfile.empty(2)
        prof.splice(0, 0, *_fields([_mk_piece(0), _mk_piece(1), _mk_piece(2)]))
        assert prof.capacity >= MIN_CAPACITY or prof.capacity >= 2 * 3


class TestSpliceFuzz:
    """Hypothesis fuzz: a random splice sequence on a tiny buffer must
    match a pure-Python list model — every grow/shift boundary gets
    exercised because the initial capacity is minimal."""

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 100),  # lo selector
                st.integers(0, 100),  # hi selector
                st.integers(0, 5),  # replacement size
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_matches_list_model(self, ops):
        prof = PackedProfile.empty(2)
        model: list[tuple] = []
        counter = [0]

        def fresh(k):
            out = []
            for _ in range(k):
                counter[0] += 1
                out.append(_mk_piece(counter[0]))
            return out

        for lo_s, hi_s, k in ops:
            n = len(model)
            lo = lo_s % (n + 1)
            hi = lo + (hi_s % (n - lo + 1))
            repl = fresh(k)
            prof.splice(lo, hi, *_fields(repl))
            model[lo:hi] = repl
            assert _rows(prof) == model
            assert prof.size == len(model)
            head, tail = prof.slack
            assert head >= 0 and tail >= 0
            assert head + tail + prof.size == prof.capacity


class TestInsertParity:
    def test_incremental_matches_python_engine_tiny_capacity(self, rng):
        # Start at the smallest legal capacity so nearly every insert
        # crosses a grow/shift boundary.
        for _ in range(8):
            segs = random_image_segments(rng, rng.randint(2, 70))
            env = Envelope.empty()
            prof = PackedProfile.empty(2)
            for s in segs:
                rp = insert_segment(env, s, engine="python")
                rf = insert_segment_flat(prof, s)
                assert rf.ops == rp.ops
                assert rf.visibility == rp.visibility
                assert rf.profile is prof  # in-place: same object
                env = rp.envelope
            assert prof.to_envelope().pieces == env.pieces

    @pytest.mark.parametrize("cutoff", [1, 4])
    def test_forced_vectorized_dest_path(self, rng, cutoff, monkeypatch):
        # Force the vectorized fused kernel (with its straight-into-
        # the-buffer dest write) onto every window.
        monkeypatch.setattr(engine_mod, "FLAT_FUSED_CUTOFF", cutoff)
        segs = random_image_segments(rng, 120)
        env = Envelope.empty()
        prof = PackedProfile.empty()
        for s in segs:
            rp = insert_segment(env, s, engine="python")
            rf = insert_segment_flat(prof, s)
            assert rf.ops == rp.ops
            assert rf.visibility == rp.visibility
            env = rp.envelope
            prof = rf.profile
        assert prof.to_envelope().pieces == env.pieces

    def test_scalar_fastpath_ablation_parity(self, rng, monkeypatch):
        # USE_SCALAR_FASTPATHS off (the PR-4 cascade shape) must stay
        # bit-exact on both layouts.
        monkeypatch.setattr(splice_mod, "USE_SCALAR_FASTPATHS", False)
        segs = random_image_segments(rng, 100)
        env = Envelope.empty()
        packed = PackedProfile.empty()
        flat = FlatProfile.empty()
        for s in segs:
            rp = insert_segment(env, s, engine="python")
            r1 = insert_segment_flat(packed, s)
            r2 = insert_segment_flat(flat, s)
            assert r1.ops == rp.ops == r2.ops
            assert r1.visibility == rp.visibility == r2.visibility
            env, packed, flat = rp.envelope, r1.profile, r2.profile
        assert packed.to_envelope().pieces == env.pieces

    def test_churny_occlusion_sequence(self, rng):
        # Repeatedly overwrite the same y-range with rising segments —
        # maximal profile churn (whole-window replacements, shrinks,
        # single-piece rewrites) on one long-lived buffer.
        env = Envelope.empty()
        prof = PackedProfile.empty(2)
        for i in range(120):
            y1 = rng.uniform(0, 20)
            seg = ImageSegment(
                y1, 1.0 + i * 0.5, y1 + rng.uniform(1, 25), 1.0 + i * 0.5, i
            )
            rp = insert_segment(env, seg, engine="python")
            rf = insert_segment_flat(prof, seg)
            assert rf.ops == rp.ops
            assert rf.visibility == rp.visibility
            env = rp.envelope
        assert prof.to_envelope().pieces == env.pieces


class TestSequentialAndPhase2Toggles:
    def _run_sequential(self, terrain, engine, packed):
        from repro.hsr.sequential import SequentialHSR

        old = engine_mod.USE_PACKED_PROFILE
        engine_mod.USE_PACKED_PROFILE = packed
        try:
            return SequentialHSR(engine=engine).run(terrain)
        finally:
            engine_mod.USE_PACKED_PROFILE = old

    def test_sequential_packed_toggle_parity(self):
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=9, seed=23)
        rp = self._run_sequential(terrain, "python", True)
        r_on = self._run_sequential(terrain, "numpy", True)
        r_off = self._run_sequential(terrain, "numpy", False)
        for r in (r_on, r_off):
            assert r.stats.ops == rp.stats.ops
            assert r.stats.k == rp.stats.k
            assert r.stats.extra == rp.stats.extra
            assert r.visibility_map.segments == rp.visibility_map.segments

    def test_phase2_direct_packed_toggle_parity(self, rng):
        from repro.hsr.pct import build_pct
        from repro.hsr.phase2 import run_phase2
        from repro.ordering.separator import SeparatorTree

        segs = random_image_segments(rng, 40)
        tree = SeparatorTree(list(range(len(segs))))
        pct = build_pct(tree, segs, engine="numpy")
        ref = run_phase2(pct, segs, mode="direct", engine="python")
        old = engine_mod.USE_PACKED_PROFILE
        try:
            results = {}
            for packed in (True, False):
                engine_mod.USE_PACKED_PROFILE = packed
                results[packed] = run_phase2(
                    pct, segs, mode="direct", engine="numpy"
                )
        finally:
            engine_mod.USE_PACKED_PROFILE = old
        for res in results.values():
            assert res.visibility == ref.visibility
            assert res.ops == ref.ops
            assert res.pieces_materialised == ref.pieces_materialised


class TestStaleViews:
    def test_view_keeps_old_buffer_after_realloc(self):
        prof = PackedProfile.empty(4)
        prof.splice(0, 0, *_fields([_mk_piece(i) for i in range(4)]))
        # Exhaust the slack so the next growing splice reallocates.
        while prof.slack != (0, 0):
            n = prof.size
            prof.splice(n, n, *_fields([_mk_piece(50 + n)]))
        old_buf = prof._buf
        win = prof.window(0, prof.size)
        snapshot = win.ya.tolist()
        prof.splice(1, 1, *_fields([_mk_piece(99)]))  # forces realloc
        assert prof._buf is not old_buf
        # The pre-realloc view still reads the *old* buffer: edits to
        # the live profile can no longer reach it (stale, not
        # corrupted-in-flight), and fresh windows view the new buffer.
        prof.splice(0, 1, *_fields([_mk_piece(123)]))
        assert win.ya.tolist() == snapshot
        base = prof.window(0, prof.size).ya.base
        while getattr(base, "base", None) is not None:
            base = base.base
        assert base is prof._buf

    def test_insert_path_rederives_windows_per_insert(self, rng, monkeypatch):
        """Every window the vectorized fused kernel receives must view
        the profile's *live* buffer at call time — i.e. windows are
        re-derived after every splice, never cached across inserts."""
        import repro.envelope.flat_fused as fused_mod
        import repro.envelope.flat_splice as splice_mod

        # Pin the vectorized kernel path: the compiled core (when
        # built) would otherwise answer every insert before it.
        monkeypatch.setattr(splice_mod, "USE_COMPILED_INSERT", False)
        monkeypatch.setattr(engine_mod, "FLAT_FUSED_CUTOFF", 1)
        orig = fused_mod.fused_insert_window_flat
        checked = []

        def checking(window, *args, **kwargs):
            dest = kwargs.get("dest")
            assert dest is not None
            base = window.ya.base
            while getattr(base, "base", None) is not None:
                base = base.base
            assert base is dest._buf
            checked.append(1)
            return orig(window, *args, **kwargs)

        monkeypatch.setattr(
            fused_mod, "fused_insert_window_flat", checking
        )
        prof = PackedProfile.empty(2)
        for s in random_image_segments(rng, 100):
            prof = insert_segment_flat(prof, s).profile
        assert checked  # the kernel actually ran

    def test_splice_output_never_aliases_live_buffer(self, rng):
        # The merged arrays a splice writes come from fresh kernel
        # outputs; writing them must not corrupt values still being
        # read.  End-to-end: a long run with every window size forced
        # through every kernel stays bit-exact (checked above); here
        # pin that a window view taken just before an insert is
        # unchanged by a same-size in-place splice elsewhere.
        prof = PackedProfile.empty()
        pieces = [_mk_piece(i) for i in range(6)]
        prof.splice(0, 0, *_fields(pieces))
        head_view = prof.window(0, 2)
        before = head_view.ya.tolist()
        prof.splice(4, 5, *_fields([_mk_piece(77)]))  # same size: in place
        assert head_view.ya.tolist() == before


class TestPackedQueries:
    def test_queries_match_flat_profile(self, rng):
        segs = random_image_segments(rng, 60)
        env = build_envelope(segs, engine="python").envelope
        packed = PackedProfile.from_envelope(env)
        flat = FlatProfile.from_envelope(env)
        assert packed.to_envelope().pieces == env.pieces
        for _ in range(30):
            y1 = rng.uniform(-10, 110)
            y2 = y1 + rng.uniform(0, 50)
            assert packed.pieces_overlapping(y1, y2) == (
                flat.pieces_overlapping(y1, y2)
            )
            assert packed.value_at(y1) == flat.value_at(y1)
        n = packed.size
        for _ in range(10):
            lo = rng.randint(0, n - 1)
            hi = rng.randint(lo + 1, n)
            assert packed.window_lists(lo, hi) == flat.window_lists(lo, hi)
            assert packed.window_z_min(lo, hi) == flat.window_z_min(lo, hi)
            assert packed.window_z_max(lo, hi) == flat.window_z_max(lo, hi)

    def test_window_is_zero_copy(self, rng):
        segs = random_image_segments(rng, 30)
        prof = PackedProfile.from_envelope(
            build_envelope(segs, engine="python").envelope
        )
        w = prof.window(3, 9)
        base = w.ya.base
        while getattr(base, "base", None) is not None:
            base = base.base
        assert base is prof._buf
        assert len(w) == 6
