"""Tests for the persistent hull-augmented (ACG) search structures."""

from __future__ import annotations

import math

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import merge_envelopes
from repro.geometry.segments import ImageSegment
from repro.hsr.acg import (
    acg_splice_merge,
    collect_flip_candidates,
    collect_gaps,
    get_augment,
    winner_regions,
)
from repro.persistence import treap
from repro.persistence.envelope_store import penv_from_envelope
from tests.conftest import random_image_segments


def env_of(segs):
    return build_envelope(segs).envelope


def brute_gaps(env: Envelope, lo: float, hi: float):
    """Reference gap computation by linear scan."""
    out = []
    cursor = lo
    for p in env.pieces:
        if p.ya >= hi:
            break
        if p.yb <= lo:
            continue
        if p.ya > cursor:
            out.append((cursor, min(p.ya, hi)))
        cursor = max(cursor, p.yb)
    if cursor < hi:
        out.append((cursor, hi))
    return [g for g in out if g[1] > g[0]]


class TestAugment:
    def test_span_and_contiguity(self, rng):
        env = env_of(random_image_segments(rng, 25))
        root = penv_from_envelope(env)
        aug = get_augment(root)
        assert aug.ya_min == env.pieces[0].ya
        assert aug.yb_max == env.pieces[-1].yb
        has_gap = any(
            env.pieces[i].yb != env.pieces[i + 1].ya
            for i in range(env.size - 1)
        )
        assert aug.contiguous == (not has_gap)

    def test_hulls_are_convex_chains(self, rng):
        env = env_of(random_image_segments(rng, 40))
        root = penv_from_envelope(env)
        aug = get_augment(root)
        # Presorted hull keeps possible duplicate-x stubs at the tail;
        # the strict convexity check applies to the interior.
        assert len(aug.lower) >= 2
        assert all(
            aug.lower[i].x <= aug.lower[i + 1].x
            for i in range(len(aug.lower) - 1)
        )
        assert all(
            aug.upper[i].x <= aug.upper[i + 1].x
            for i in range(len(aug.upper) - 1)
        )

    def test_hull_bounds_all_vertices(self, rng):
        env = env_of(random_image_segments(rng, 30))
        root = penv_from_envelope(env)
        aug = get_augment(root)
        lo_min = min(p.y for p in aug.lower)
        hi_max = max(p.y for p in aug.upper)
        for p in env.pieces:
            assert p.za >= lo_min - 1e-9 and p.zb >= lo_min - 1e-9
            assert p.za <= hi_max + 1e-9 and p.zb <= hi_max + 1e-9

    def test_memoised(self, rng):
        env = env_of(random_image_segments(rng, 10))
        root = penv_from_envelope(env)
        a1 = get_augment(root)
        a2 = get_augment(root)
        assert a1 is a2


class TestCollectGaps:
    def test_matches_brute_force(self, rng):
        for _ in range(30):
            env = env_of(random_image_segments(rng, rng.randint(1, 20)))
            root = penv_from_envelope(env)
            lo = rng.uniform(-10, 50)
            hi = lo + rng.uniform(1, 120)
            got = collect_gaps(root, lo, hi)
            want = brute_gaps(env, lo, hi)
            assert len(got) == len(want), (got, want)
            for (ga, gb), (wa, wb) in zip(got, want):
                assert abs(ga - wa) <= 1e-9
                assert abs(gb - wb) <= 1e-9

    def test_empty_root(self):
        assert collect_gaps(None, 0.0, 5.0) == [(0.0, 5.0)]

    def test_no_gaps_in_contiguous(self):
        env = Envelope([Piece(0, 0, 5, 1, 0), Piece(5, 1, 9, 0, 1)])
        root = penv_from_envelope(env)
        assert collect_gaps(root, 1.0, 8.0) == []


class TestFlipCandidates:
    def test_transversal_crossing_found(self):
        env = Envelope([Piece(0, 0, 10, 10, 0)])
        root = penv_from_envelope(env)
        seg = ImageSegment(0, 10, 10, 0, 1)
        flips = collect_flip_candidates(root, seg, 0.0, 10.0)
        assert len(flips) == 1
        assert math.isclose(flips[0], 5.0)

    def test_jump_junction_found(self):
        env = Envelope([Piece(0, 0, 5, 0, 0), Piece(5, 10, 10, 10, 1)])
        root = penv_from_envelope(env)
        seg = ImageSegment(0, 5, 10, 5, 2)  # passes between the jump
        flips = collect_flip_candidates(root, seg, 0.0, 10.0)
        assert any(math.isclose(f, 5.0) for f in flips)

    def test_pruned_when_profile_above(self, rng):
        env = env_of(random_image_segments(rng, 50, z_range=(50, 60)))
        root = penv_from_envelope(env)
        lo, hi = env.y_span()
        seg = ImageSegment(lo, 1.0, hi, 2.0, 99)  # far below
        from repro.hsr.acg import _ProbeCounter

        c = _ProbeCounter()
        flips = collect_flip_candidates(root, seg, lo, hi, counter=c)
        assert flips == []
        # Hull pruning must cut the search well below the piece count.
        assert c.probes <= env.size / 2 + 10


class TestWinnerRegions:
    def test_regions_partition_segment(self, rng):
        env = env_of(random_image_segments(rng, 20))
        root = penv_from_envelope(env)
        q = random_image_segments(rng, 1)[0]
        regions, _crossings, _probes = winner_regions(root, q)
        assert regions[0][0] == q.y1
        assert regions[-1][1] == q.y2
        for (a, b, _w), (c, d, _w2) in zip(regions, regions[1:]):
            assert b == c

    def test_winner_matches_values(self, rng):
        from repro.persistence.envelope_store import penv_value_at

        for _ in range(15):
            env = env_of(random_image_segments(rng, rng.randint(1, 15)))
            root = penv_from_envelope(env)
            q = random_image_segments(rng, 1)[0]
            regions, _, _ = winner_regions(root, q)
            for (a, b, seg_wins) in regions:
                m = 0.5 * (a + b)
                diff = q.z_at(m) - penv_value_at(root, m)
                if seg_wins:
                    assert diff > -1e-7
                else:
                    assert diff < 1e-7


class TestAcgSpliceMerge:
    def test_matches_plain_merge(self, rng):
        for trial in range(25):
            base = env_of(random_image_segments(rng, rng.randint(1, 20)))
            other_segs = [
                ImageSegment(s.y1, s.z1, s.y2, s.z2, 100 + i)
                for i, s in enumerate(
                    random_image_segments(rng, rng.randint(1, 8))
                )
            ]
            other = env_of(other_segs)
            root = penv_from_envelope(base)
            new_root, _ = acg_splice_merge(root, other)
            got = Envelope([p for _, p in treap.to_list(new_root)])
            want = merge_envelopes(base, other).envelope
            assert got.approx_equal(want, eps=1e-6), (
                f"trial {trial}: acg merge diverged"
            )

    def test_merge_into_empty(self, rng):
        other = env_of(random_image_segments(rng, 5))
        root, _ = acg_splice_merge(None, other)
        got = Envelope([p for _, p in treap.to_list(root)])
        assert got.approx_equal(other)

    def test_versions_shared(self, rng):
        base = env_of(random_image_segments(rng, 60, y_range=(0, 1000)))
        root = penv_from_envelope(base)
        narrow = Envelope.from_segment(
            ImageSegment(480.0, 10000.0, 520.0, 10000.0, 777)
        )
        new_root, _ = acg_splice_merge(root, narrow)
        total, shared = treap.count_shared_nodes(root, new_root)
        assert shared > 0.5 * treap.size(root)

    def test_hidden_other_only_fills_gaps(self, rng):
        # A segment far below the profile changes nothing except in
        # the profile's support gaps (where -inf loses to anything).
        base = env_of(random_image_segments(rng, 20, z_range=(50, 60)))
        root = penv_from_envelope(base)
        lo, hi = base.y_span()
        low = Envelope.from_segment(ImageSegment(lo, 1.0, hi, 1.0, 99))
        new_root, res = acg_splice_merge(root, low)
        got = Envelope([p for _, p in treap.to_list(new_root)])
        want = merge_envelopes(base, low).envelope
        assert got.approx_equal(want)
        assert res.crossings == []  # gap flips are not transversal

    def test_hidden_other_under_contiguous_profile(self):
        base = Envelope(
            [Piece(0, 50, 5, 55, 0), Piece(5, 55, 10, 50, 1)]
        )
        root = penv_from_envelope(base)
        low = Envelope.from_segment(ImageSegment(0.0, 1.0, 10.0, 1.0, 99))
        new_root, res = acg_splice_merge(root, low)
        got = Envelope([p for _, p in treap.to_list(new_root)])
        assert got.approx_equal(base)
        assert res.crossings == []
