"""Unit tests for the terrain model."""

from __future__ import annotations

import math

import pytest

from repro.errors import TerrainError
from repro.geometry.primitives import Point3
from repro.terrain.model import Terrain


def simple_terrain():
    """Two triangles sharing an edge (a 2x2 grid cell pair)."""
    verts = [
        Point3(0, 0, 1),
        Point3(1, 0, 2),
        Point3(0, 1, 3),
        Point3(1, 1, 4),
    ]
    faces = [(0, 1, 2), (1, 3, 2)]
    return Terrain(verts, faces)


class TestConstruction:
    def test_basic_counts(self):
        t = simple_terrain()
        assert t.n_vertices == 4
        assert t.n_faces == 2
        assert t.n_edges == 5  # 4 boundary + 1 diagonal

    def test_duplicate_xy_rejected(self):
        verts = [Point3(0, 0, 1), Point3(0, 0, 2), Point3(1, 1, 0)]
        with pytest.raises(TerrainError, match="share xy"):
            Terrain(verts, [(0, 1, 2)])

    def test_bad_face_index(self):
        with pytest.raises(TerrainError, match="missing vertex"):
            Terrain([Point3(0, 0, 0), Point3(1, 0, 0), Point3(0, 1, 0)], [(0, 1, 5)])

    def test_degenerate_face(self):
        with pytest.raises(TerrainError, match="degenerate"):
            Terrain(
                [Point3(0, 0, 0), Point3(1, 0, 0), Point3(0, 1, 0)],
                [(0, 1, 1)],
            )

    def test_validate_skippable(self):
        verts = [Point3(0, 0, 1), Point3(0, 0, 2), Point3(1, 1, 0)]
        t = Terrain(verts, [(0, 1, 2)], validate=False)
        assert t.n_vertices == 3


class TestEdgesAndProjections:
    def test_edges_sorted_unique(self):
        t = simple_terrain()
        edges = t.edges
        assert edges == sorted(set(edges))
        assert all(i < j for i, j in edges)

    def test_map_segment(self):
        t = simple_terrain()
        idx = t.edges.index((0, 1))
        seg = t.map_segment(idx)
        # Edge (0,0,1)-(1,0,2): xy projection from (0,0) to (1,0).
        assert seg.y1 == 0.0 and seg.y2 == 0.0  # horizontal in map
        assert seg.is_horizontal

    def test_image_segment(self):
        t = simple_terrain()
        idx = t.edges.index((0, 2))
        seg = t.image_segment(idx)
        # Edge (0,0,1)-(0,1,3): image (y,z) from (0,1) to (1,3).
        assert (seg.y1, seg.z1, seg.y2, seg.z2) == (0.0, 1.0, 1.0, 3.0)
        assert seg.source == idx

    def test_projection_lists(self):
        t = simple_terrain()
        assert len(t.map_segments()) == t.n_edges
        assert len(t.image_segments()) == t.n_edges


class TestTransforms:
    def test_rotated_preserves_structure(self):
        t = simple_terrain()
        r = t.rotated(90.0)
        assert r.n_edges == t.n_edges
        v = r.vertices[1]
        assert math.isclose(v.x, 0.0, abs_tol=1e-12)
        assert math.isclose(v.y, 1.0)
        assert v.z == 2.0

    def test_rotation_roundtrip(self):
        t = simple_terrain()
        r = t.rotated(37.0).rotated(-37.0)
        for a, b in zip(t.vertices, r.vertices):
            assert math.isclose(a.x, b.x, abs_tol=1e-12)
            assert math.isclose(a.y, b.y, abs_tol=1e-12)

    def test_scaled(self):
        t = simple_terrain().scaled(xy=2.0, z=0.5)
        assert t.vertices[3] == Point3(2.0, 2.0, 2.0)

    def test_scaled_invalid(self):
        with pytest.raises(TerrainError):
            simple_terrain().scaled(xy=0.0)

    def test_translated(self):
        t = simple_terrain().translated(1, 2, 3)
        assert t.vertices[0] == Point3(1, 2, 4)


class TestQueries:
    def test_height_range(self):
        assert simple_terrain().height_range() == (1.0, 4.0)

    def test_xy_bounds(self):
        assert simple_terrain().xy_bounds() == (0.0, 0.0, 1.0, 1.0)

    def test_surface_height_at(self):
        t = simple_terrain()
        # At vertex 0.
        assert math.isclose(t.surface_height_at(0.0, 0.0), 1.0)
        # Outside.
        assert t.surface_height_at(5.0, 5.0) is None
        # Interior of face (0,1,2): barycentric mean near centroid.
        h = t.surface_height_at(1 / 3, 1 / 3)
        assert h is not None and 1.0 <= h <= 3.0

    def test_check_planarity_passes(self):
        simple_terrain().check_planarity()

    def test_check_planarity_detects_crossing(self):
        # Two triangles whose edges cross in xy projection but share
        # no vertex: vertices placed so edges (0,3) and (1,2) cross.
        verts = [
            Point3(0, 0, 0),
            Point3(2, 0, 0),
            Point3(0, 2, 0),
            Point3(2, 2, 0),
            Point3(3, 1, 0),
        ]
        faces = [(0, 3, 4), (1, 2, 4)]
        t = Terrain(verts, faces, validate=False)
        with pytest.raises(TerrainError, match="cross"):
            t.check_planarity()
