"""Unit tests for the reliability subsystem's numpy-free core.

Covers the report/breaker machinery, the fault-injection planner and
the input validators.  Runs on the no-numpy leg (not in the conftest
``collect_ignore`` list) — everything here is pure stdlib.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.errors import KernelFault, ValidationError
from repro.geometry.primitives import Point3
from repro.geometry.segments import ImageSegment
from repro.reliability import faultinject as fi
from repro.reliability import guard
from repro.reliability import validate_segments, validate_terrain


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """Disarm injection and reset the ambient report around each test."""
    fi.clear()
    guard.reset_ambient()
    monkeypatch.setattr(guard, "GUARDED_DISPATCH", True)
    monkeypatch.setattr(guard, "GUARDS_ENABLED", True)
    yield
    fi.clear()
    guard.reset_ambient()


# ---------------------------------------------------------------------------
# ReliabilityReport + circuit breaker
# ---------------------------------------------------------------------------


class TestReliabilityReport:
    def test_fresh_report_is_clean(self):
        rep = guard.ReliabilityReport()
        assert not rep.degraded
        assert rep.faults == 0
        assert rep.quarantined_sites() == set()
        assert rep.summary() == "reliability: no kernel faults"
        assert rep.as_dict() == {}

    def test_record_tallies_per_site(self):
        rep = guard.ReliabilityReport()
        rep.record("fused_insert", ValueError("boom"))
        rep.record("fused_insert", ValueError("boom again"))
        rep.record("packed_splice", RuntimeError("oops"))
        assert rep.faults == 3
        assert rep.degraded
        assert rep.sites["fused_insert"].count == 2
        assert rep.sites["packed_splice"].count == 1
        assert "ValueError: boom" in rep.sites["fused_insert"].causes

    def test_quarantine_at_threshold(self):
        rep = guard.ReliabilityReport()
        for _ in range(guard.FAULT_THRESHOLD - 1):
            rep.record("merge_dispatch", ValueError("x"))
        assert rep.quarantined_sites() == set()
        rep.record("merge_dispatch", ValueError("x"))
        assert rep.quarantined_sites() == {"merge_dispatch"}

    def test_causes_capped_count_keeps_going(self):
        rep = guard.ReliabilityReport()
        for i in range(guard.MAX_CAUSES + 4):
            rep.record("build_sweep", ValueError(f"cause {i}"))
        rec = rep.sites["build_sweep"]
        assert rec.count == guard.MAX_CAUSES + 4
        assert len(rec.causes) == guard.MAX_CAUSES

    def test_summary_names_site_and_quarantine(self):
        rep = guard.ReliabilityReport()
        for _ in range(guard.FAULT_THRESHOLD):
            rep.record("fused_insert", ValueError("bad lanes"))
        text = rep.summary()
        assert "fused_insert" in text
        assert "[quarantined]" in text
        assert "bad lanes" in text

    def test_as_dict_roundtrips_fields(self):
        rep = guard.ReliabilityReport()
        rep.record("profile", RuntimeError("tick"))
        d = rep.as_dict()
        assert d == {
            "profile": {
                "count": 1,
                "quarantined": False,
                "causes": ["RuntimeError: tick"],
            }
        }


class TestReportStack:
    def test_run_context_yields_fresh_report(self):
        with guard.reliability_run() as rep:
            assert guard.current_report() is rep
            assert not rep.degraded

    def test_inner_faults_visible_in_outer_report(self):
        with guard.reliability_run() as outer:
            with guard.reliability_run() as inner:
                guard.handle_fault("fused_insert", ValueError("x"))
            assert inner.faults == 1
            assert outer.faults == 1
        # The ambient report saw it too.
        assert guard.current_report().faults == 1

    def test_breaker_scoped_to_innermost_run(self):
        with guard.reliability_run():
            for _ in range(guard.FAULT_THRESHOLD):
                guard.handle_fault("fused_insert", ValueError("x"))
            assert guard.is_quarantined("fused_insert")
            assert guard.ANY_QUARANTINED
            with guard.reliability_run():
                # A fresh run starts with a closed breaker.
                assert not guard.is_quarantined("fused_insert")
                assert not guard.ANY_QUARANTINED
            assert guard.is_quarantined("fused_insert")

    def test_reset_ambient_clears_quarantine(self):
        for _ in range(guard.FAULT_THRESHOLD):
            guard.handle_fault("fused_insert", ValueError("x"))
        assert guard.ANY_QUARANTINED
        guard.reset_ambient()
        assert not guard.ANY_QUARANTINED
        assert not guard.current_report().degraded


class TestHandleFault:
    def test_strict_mode_raises_kernel_fault_with_site(self, monkeypatch):
        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        cause = ValueError("inner")
        with pytest.raises(KernelFault) as exc:
            guard.handle_fault("packed_splice", cause)
        assert exc.value.site == "packed_splice"
        assert exc.value.cause is cause
        assert "packed_splice" in str(exc.value)

    def test_guarded_mode_records(self):
        guard.handle_fault("packed_splice", ValueError("inner"))
        rep = guard.current_report()
        assert rep.sites["packed_splice"].count == 1


class TestGuardedCall:
    def test_kernel_result_passes_through(self):
        out = guard.guarded_call("fused_insert", lambda: 42, lambda: -1)
        assert out == 42
        assert not guard.current_report().degraded

    def test_kernel_exception_falls_back(self):
        def kernel():
            raise ValueError("kernel died")

        out = guard.guarded_call("fused_insert", kernel, lambda: "fallback")
        assert out == "fallback"
        assert guard.current_report().sites["fused_insert"].count == 1

    def test_check_violation_falls_back(self):
        def check(result):
            guard.violation("fused_insert", "bad result")

        out = guard.guarded_call(
            "fused_insert", lambda: "raw", lambda: "fallback", check=check
        )
        assert out == "fallback"

    def test_strict_mode_raises(self, monkeypatch):
        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)

        def kernel():
            raise ValueError("kernel died")

        with pytest.raises(KernelFault) as exc:
            guard.guarded_call("fused_insert", kernel, lambda: "fallback")
        assert exc.value.site == "fused_insert"

    def test_guards_disabled_runs_raw(self, monkeypatch):
        monkeypatch.setattr(guard, "GUARDS_ENABLED", False)

        def kernel():
            raise ValueError("kernel died")

        with pytest.raises(ValueError):
            guard.guarded_call("fused_insert", kernel, lambda: "fallback")

    def test_quarantined_site_skips_kernel(self):
        calls = {"kernel": 0, "fallback": 0}

        def kernel():
            calls["kernel"] += 1
            raise ValueError("x")

        def fallback():
            calls["fallback"] += 1
            return "py"

        with guard.reliability_run():
            for _ in range(guard.FAULT_THRESHOLD):
                assert (
                    guard.guarded_call("fused_insert", kernel, fallback)
                    == "py"
                )
            kernel_calls = calls["kernel"]
            assert guard.guarded_call("fused_insert", kernel, fallback) == "py"
            assert calls["kernel"] == kernel_calls  # breaker open: not tried
            assert calls["fallback"] == guard.FAULT_THRESHOLD + 1

    def test_injected_raise_attributes_and_recovers(self):
        with fi.inject("fused_insert", "raise") as plan:
            out = guard.guarded_call("fused_insert", lambda: "raw", lambda: "py")
        assert out == "py"
        assert plan.fired == 1
        assert guard.current_report().sites["fused_insert"].count == 1


# ---------------------------------------------------------------------------
# Fault-injection planner
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            fi.install("nonsense", "raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown injection mode"):
            fi.install("fused_insert", "explode")

    def test_armed_flag_tracks_plan(self):
        assert not fi.ARMED
        with fi.inject("fused_insert", "raise"):
            assert fi.ARMED
        assert not fi.ARMED

    def test_trip_fires_on_nth_call_only(self):
        with fi.inject("fused_insert", "raise", nth=3) as plan:
            fi.trip("fused_insert")
            fi.trip("fused_insert")
            with pytest.raises(fi.InjectedFault) as exc:
                fi.trip("fused_insert")
            assert exc.value.site == "fused_insert"
            fi.trip("fused_insert")  # one-shot: fires once
        assert plan.fired == 1
        assert plan.calls == 4

    def test_repeat_plan_fires_every_call_from_nth(self):
        with fi.inject("fused_insert", "raise", nth=2, repeat=True) as plan:
            fi.trip("fused_insert")
            for _ in range(3):
                with pytest.raises(fi.InjectedFault):
                    fi.trip("fused_insert")
        assert plan.fired == 3

    def test_other_sites_unaffected(self):
        with fi.inject("fused_insert", "raise") as plan:
            fi.trip("merge_dispatch")
            fi.trip("packed_splice")
        assert plan.fired == 0
        assert plan.calls == 0

    def test_suppressed_blocks_firing(self):
        with fi.inject("fused_insert", "raise") as plan:
            with fi.suppressed():
                assert not fi.ARMED
                fi.trip("fused_insert")
            assert fi.ARMED
        assert plan.fired == 0

    def test_configure_from_env_parses_spec(self):
        plan = fi.configure_from_env("packed_splice:nan:2")
        assert plan.site == "packed_splice"
        assert plan.mode == "nan"
        assert plan.nth == 2
        assert not plan.repeat

    def test_configure_from_env_repeat_suffix(self):
        plan = fi.configure_from_env("fused_insert:raise:1+")
        assert plan.repeat
        assert plan.nth == 1

    def test_configure_from_env_empty_is_noop(self):
        assert fi.configure_from_env("") is None
        assert fi.configure_from_env("   ") is None

    @pytest.mark.parametrize(
        "spec", ["fused_insert", "a:b:c:d", "fused_insert:raise:x"]
    )
    def test_configure_from_env_malformed(self, spec):
        with pytest.raises(ValueError, match="malformed REPRO_FAULT_INJECT"):
            fi.configure_from_env(spec)

    def test_corrupt_helpers_need_matching_site(self):
        with fi.inject("fused_insert", "nan"):
            merged = ([0.0], [1.0], [2.0], [3.0], [0])
            assert fi.corrupt_merged_lists("packed_splice", merged) is merged

    def test_corrupt_merged_lists_nan_poisons_z(self):
        with fi.inject("fused_insert", "nan") as plan:
            oya, oza, oyb, ozb, osrc = fi.corrupt_merged_lists(
                "fused_insert", ([0.0, 2.0], [1.0, 1.0], [1.0, 3.0], [1.0, 1.0], [0, 1])
            )
        assert plan.fired == 1
        assert any(z != z for z in oza)

    def test_corrupt_merged_lists_unsorted_swaps(self):
        with fi.inject("fused_insert", "unsorted") as plan:
            oya, oza, oyb, ozb, osrc = fi.corrupt_merged_lists(
                "fused_insert", ([0.0, 2.0], [1.0, 1.0], [1.0, 3.0], [1.0, 1.0], [0, 1])
            )
        assert plan.fired == 1
        assert oya[0] > oya[1]

    def test_empty_result_not_eligible(self):
        with fi.inject("fused_insert", "nan") as plan:
            merged = ([], [], [], [], [])
            assert fi.corrupt_merged_lists("fused_insert", merged) is merged
        assert plan.calls == 0


# ---------------------------------------------------------------------------
# Input validators
# ---------------------------------------------------------------------------


def _terrain(*verts):
    return SimpleNamespace(vertices=[Point3(*v) for v in verts])


class TestValidateTerrain:
    def test_accepts_good_terrain(self):
        t = _terrain((0, 0, 1), (1, 0, 2), (0, 1, 3))
        assert validate_terrain(t) is t

    def test_rejects_nan_elevation(self):
        t = _terrain((0, 0, 1), (1, 0, math.nan))
        with pytest.raises(ValidationError, match="vertex 1.*non-finite"):
            validate_terrain(t)

    def test_rejects_inf_coordinate(self):
        t = _terrain((math.inf, 0, 1))
        with pytest.raises(ValidationError, match="non-finite"):
            validate_terrain(t)

    def test_rejects_duplicate_xy(self):
        t = _terrain((0, 0, 1), (1, 1, 2), (0, 0, 5))
        with pytest.raises(ValidationError, match="vertices 0 and 2"):
            validate_terrain(t)

    def test_context_prefixes_message(self):
        t = _terrain((0, 0, math.nan))
        with pytest.raises(ValidationError, match=r"^/tmp/bad\.json: "):
            validate_terrain(t, context="/tmp/bad.json")


class TestValidateSegments:
    def test_accepts_good_segments(self):
        segs = [ImageSegment(0.0, 1.0, 2.0, 3.0, 0)]
        assert validate_segments(segs) is segs

    def test_accepts_vertical_segment(self):
        segs = [ImageSegment(1.0, 0.0, 1.0, 5.0, 0)]
        assert validate_segments(segs) is segs

    def test_rejects_non_finite_lane(self):
        segs = [ImageSegment(0.0, math.nan, 2.0, 3.0, 7)]
        with pytest.raises(ValidationError, match="segment 0.*source 7"):
            validate_segments(segs)

    def test_rejects_zero_length(self):
        segs = [
            ImageSegment(0.0, 1.0, 2.0, 3.0, 0),
            ImageSegment(5.0, 5.0, 5.0, 5.0, 1),
        ]
        with pytest.raises(ValidationError, match="segment 1.*zero length"):
            validate_segments(segs)
