"""Algebraic property tests for the envelope (upper-profile) algebra.

The point-wise maximum is associative, commutative and idempotent;
the array merge, the treap splice merge and the ACG merge must all
realise the same algebra.  Hypothesis drives random small envelopes
through these laws.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.merge import merge_envelopes
from repro.geometry.primitives import NEG_INF
from repro.geometry.segments import ImageSegment


@st.composite
def envelopes(draw, max_segments=8, src_base=0):
    n = draw(st.integers(0, max_segments))
    segs = []
    for i in range(n):
        y1 = draw(st.floats(0, 80, allow_nan=False))
        w = draw(st.floats(0.5, 30, allow_nan=False))
        z1 = draw(st.floats(0, 40, allow_nan=False))
        z2 = draw(st.floats(0, 40, allow_nan=False))
        segs.append(ImageSegment(y1, z1, y1 + w, z2, src_base + i))
    return build_envelope(segs).envelope


def sample_points(*envs: Envelope) -> list[float]:
    ys: set[float] = set()
    for e in envs:
        for p in e.pieces:
            ys.update((p.ya, p.yb, 0.5 * (p.ya + p.yb)))
    out = sorted(ys)
    mids = [0.5 * (a + b) for a, b in zip(out, out[1:])]
    return out + mids


def env_close(a: Envelope, b: Envelope, pts, tol=1e-6) -> bool:
    for y in pts:
        va, vb = a.value_at(y), b.value_at(y)
        if va == NEG_INF or vb == NEG_INF:
            if va != vb and not _near_any_boundary(y, a, b):
                return False
            continue
        if abs(va - vb) > tol:
            return False
    return True


def _near_any_boundary(y, *envs, eps=1e-9):
    for e in envs:
        for p in e.pieces:
            if abs(p.ya - y) <= eps or abs(p.yb - y) <= eps:
                return True
    return False


class TestMaxAlgebra:
    @given(envelopes(src_base=0), envelopes(src_base=100))
    @settings(max_examples=80, deadline=None)
    def test_commutative(self, a, b):
        ab = merge_envelopes(a, b).envelope
        ba = merge_envelopes(b, a).envelope
        assert env_close(ab, ba, sample_points(a, b))

    @given(
        envelopes(src_base=0),
        envelopes(src_base=100),
        envelopes(src_base=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_envelopes(
            merge_envelopes(a, b).envelope, c
        ).envelope
        right = merge_envelopes(
            a, merge_envelopes(b, c).envelope
        ).envelope
        assert env_close(left, right, sample_points(a, b, c))

    @given(envelopes())
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, a):
        aa = merge_envelopes(a, a).envelope
        assert env_close(aa, a, sample_points(a))

    @given(envelopes())
    @settings(max_examples=60, deadline=None)
    def test_identity(self, a):
        assert env_close(
            merge_envelopes(a, Envelope.empty()).envelope,
            a,
            sample_points(a),
        )

    @given(envelopes(src_base=0), envelopes(src_base=100))
    @settings(max_examples=80, deadline=None)
    def test_dominance(self, a, b):
        m = merge_envelopes(a, b).envelope
        for y in sample_points(a, b):
            vm = m.value_at(y)
            want = max(a.value_at(y), b.value_at(y))
            if want == NEG_INF:
                assert vm == NEG_INF or _near_any_boundary(y, a, b)
            else:
                assert vm >= want - 1e-7

    @given(envelopes(src_base=0), envelopes(src_base=100))
    @settings(max_examples=50, deadline=None)
    def test_merge_size_linear(self, a, b):
        # Output complexity is at most linear in input pieces plus
        # crossings (no breakpoint-product blowup).
        res = merge_envelopes(a, b)
        assert res.envelope.size <= 2 * (a.size + b.size) + 2 * len(
            res.crossings
        ) + 2

    @given(envelopes(src_base=0), envelopes(src_base=100))
    @settings(max_examples=50, deadline=None)
    def test_result_validates(self, a, b):
        merge_envelopes(a, b).envelope.validate()


class TestEngineEquivalence:
    @given(envelopes(src_base=0), envelopes(src_base=100))
    @settings(max_examples=60, deadline=None)
    def test_three_merge_engines_agree(self, a, b):
        from repro.hsr.acg import acg_splice_merge
        from repro.persistence import treap
        from repro.persistence.envelope_store import (
            penv_from_envelope,
            penv_splice_merge,
        )

        want = merge_envelopes(a, b).envelope
        pts = sample_points(a, b)

        root = penv_from_envelope(a)
        r1, _ = penv_splice_merge(root, b)
        got1 = Envelope([p for _, p in treap.to_list(r1)])
        assert env_close(got1, want, pts)

        root2 = penv_from_envelope(a)
        r2, _ = acg_splice_merge(root2, b)
        got2 = Envelope([p for _, p in treap.to_list(r2)])
        assert env_close(got2, want, pts)
