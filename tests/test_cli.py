"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(
            ["generate", "fractal", str(out), "--size", "5", "--seed", "3"]
        )
        assert rc == 0
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["format"] == "repro-terrain"

    def test_obj_output(self, tmp_path):
        out = tmp_path / "t.obj"
        rc = main(["generate", "ridge", str(out), "--rows", "6", "--cols", "6"])
        assert rc == 0
        assert out.read_text().startswith("# repro terrain")

    def test_unknown_kind(self, tmp_path):
        from repro.errors import TerrainError

        with pytest.raises(TerrainError):
            main(["generate", "marsscape", str(tmp_path / "x.json")])


class TestRun:
    def test_run_generator_json(self, capsys):
        rc = main(
            ["run", "ridge", "--json", "--algorithm", "sequential"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "sequential"
        assert payload["k"] > 0

    def test_run_parallel_reports_pram(self, capsys):
        rc = main(["run", "ridge", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["work"] > payload["depth"] > 0

    def test_run_terrain_file(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        main(["generate", "fractal", str(path), "--size", "5"])
        capsys.readouterr()
        rc = main(["run", str(path), "--algorithm", "sequential"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VisibilityMap" in out

    def test_run_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "scene.svg"
        rc = main(["run", "ridge", "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()

    def test_run_azimuth(self, capsys):
        rc = main(["run", "ridge", "--json", "--azimuth", "90"])
        assert rc == 0

    def test_zbuffer_algorithm(self, capsys):
        rc = main(["run", "ridge", "--json", "--algorithm", "zbuffer"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "zbuffer"

    def test_bad_terrain_spec(self):
        with pytest.raises(SystemExit, match="neither"):
            main(["run", "/nonexistent/terrain.json"])


class TestRenderAndInfo:
    def test_render_ascii(self, capsys):
        rc = main(["render", "ridge", "--width", "40", "--height", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 10

    def test_render_svg(self, tmp_path, capsys):
        svg = tmp_path / "r.svg"
        rc = main(["render", "ridge", "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()

    def test_info(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "E1" in out

    def test_bench_single(self, capsys):
        rc = main(["bench", "E9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E9" in out
