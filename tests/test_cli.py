"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(
            ["generate", "fractal", str(out), "--size", "5", "--seed", "3"]
        )
        assert rc == 0
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["format"] == "repro-terrain"

    def test_obj_output(self, tmp_path):
        out = tmp_path / "t.obj"
        rc = main(["generate", "ridge", str(out), "--rows", "6", "--cols", "6"])
        assert rc == 0
        assert out.read_text().startswith("# repro terrain")

    def test_unknown_kind(self, tmp_path, capsys):
        rc = main(["generate", "marsscape", str(tmp_path / "x.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "marsscape" in err


class TestRun:
    def test_run_generator_json(self, capsys):
        rc = main(
            ["run", "ridge", "--json", "--algorithm", "sequential"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "sequential"
        assert payload["k"] > 0

    def test_run_parallel_reports_pram(self, capsys):
        rc = main(["run", "ridge", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["work"] > payload["depth"] > 0

    def test_run_terrain_file(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        main(["generate", "fractal", str(path), "--size", "5"])
        capsys.readouterr()
        rc = main(["run", str(path), "--algorithm", "sequential"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VisibilityMap" in out

    def test_run_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "scene.svg"
        rc = main(["run", "ridge", "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()

    def test_run_azimuth(self, capsys):
        rc = main(["run", "ridge", "--json", "--azimuth", "90"])
        assert rc == 0

    def test_zbuffer_algorithm(self, capsys):
        rc = main(["run", "ridge", "--json", "--algorithm", "zbuffer"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "zbuffer"

    def test_bad_terrain_spec(self, capsys):
        # A ReproError exit, not a raw SystemExit: one-line `error:`
        # on stderr and return code 2 (ISSUE 9 satellite — CLI error
        # contract).
        rc = main(["run", "/nonexistent/terrain.json"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "neither" in err


class TestRenderAndInfo:
    def test_render_ascii(self, capsys):
        rc = main(["render", "ridge", "--width", "40", "--height", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 10

    def test_render_svg(self, tmp_path, capsys):
        svg = tmp_path / "r.svg"
        rc = main(["render", "ridge", "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()

    def test_info(self, capsys):
        rc = main(["info"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "E1" in out

    def test_bench_single(self, capsys):
        rc = main(["bench", "E9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E9" in out


class TestRobustExit:
    """ISSUE 6, satellite 2: library errors exit nonzero with a one-
    line message (plus a reliability summary when degradation
    happened), never a traceback.  Driven through a real subprocess so
    the installed entry point's behaviour is what's pinned."""

    def _run(self, args, tmp_path, env_extra=None):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_FAULT_INJECT", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )

    def test_malformed_terrain_file_clean_exit(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "repro-terrain", "vertices": [,]}')
        proc = self._run(["run", str(bad)], tmp_path)
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "bad.json" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_validation_error_clean_exit(self, tmp_path):
        bad = tmp_path / "nan.json"
        bad.write_text(
            '{"format": "repro-terrain",'
            ' "vertices": [[0, 0, 1], [1, 0, NaN], [0, 1, 1]],'
            ' "faces": [[0, 1, 2]]}'
        )
        proc = self._run(["run", str(bad)], tmp_path)
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "non-finite" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_injected_fault_degrades_and_reports(self, tmp_path):
        proc = self._run(
            ["run", "ridge", "--json", "--algorithm", "sequential",
             "--engine", "numpy"],
            tmp_path,
            env_extra={"REPRO_FAULT_INJECT": "fused_insert:raise:2"},
        )
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["k"] > 0
        assert "reliability:" in proc.stderr
        assert "fused_insert" in proc.stderr

    def test_serve_unknown_kind_clean_exit(self, tmp_path):
        # `repro serve` fails during terrain loading, long before any
        # socket is bound: exit 2, one-line error, no traceback.
        proc = self._run(["serve", "marsscape"], tmp_path)
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "marsscape" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_serve_bad_terrain_file_clean_exit(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        proc = self._run(["serve", str(bad)], tmp_path)
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "bad.json" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_injected_fault_strict_mode_fails_loud(self, tmp_path):
        proc = self._run(
            ["run", "ridge", "--algorithm", "sequential",
             "--engine", "numpy"],
            tmp_path,
            env_extra={
                "REPRO_FAULT_INJECT": "fused_insert:raise:2",
                "REPRO_GUARDED_DISPATCH": "0",
            },
        )
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "fused_insert" in proc.stderr
        assert "Traceback" not in proc.stderr
