"""Unit and property tests for segment-vs-profile visibility."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope, Piece
from repro.envelope.engine import HAVE_NUMPY
from repro.envelope.visibility import visible_parts
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from tests.conftest import brute_force_envelope_value, random_image_segments


def seg(y1, z1, y2, z2, src=99):
    return ImageSegment(float(y1), float(z1), float(y2), float(z2), src)


def flat(z, y1=0.0, y2=10.0, src=0):
    return Envelope([Piece(y1, float(z), y2, float(z), src)])


@pytest.fixture(
    params=[
        "python",
        pytest.param(
            "numpy",
            marks=pytest.mark.skipif(
                not HAVE_NUMPY, reason="numpy not installed"
            ),
        ),
    ]
)
def vis(request):
    """``visible_parts`` on the selected engine.

    Both engines must return identical parts, crossings and ops —
    the vertical/eps edge-case classes below run under each.
    """
    if request.param == "python":
        return visible_parts

    from repro.envelope.flat_visibility import visible_parts_flat

    def flat_vis(s, env, *, eps=EPS):
        return visible_parts_flat(s, env, eps=eps)

    return flat_vis


class TestVerticalSharedEngines:
    """``_visible_vertical`` degeneracies, on both engines."""

    def test_above_profile(self, vis):
        res = vis(seg(5, 0, 5, 2), flat(1))
        assert res.parts == [(5.0, 5.0)]
        assert res.ops == 1 and res.crossings == []

    def test_below_profile(self, vis):
        res = vis(seg(5, 0, 5, 0.5), flat(1))
        assert res.fully_hidden and res.ops == 1

    def test_exactly_at_profile_is_hidden(self, vis):
        # Coincident top endpoint: the profile owns shared geometry.
        assert vis(seg(5, 0, 5, 1.0), flat(1)).fully_hidden

    def test_eps_above_profile_is_hidden(self, vis):
        assert vis(seg(5, 0, 5, 1.0 + 1e-10), flat(1)).fully_hidden

    def test_just_past_eps_is_visible(self, vis):
        res = vis(seg(5, 0, 5, 1.0 + 1e-8), flat(1))
        assert res.parts == [(5.0, 5.0)]

    def test_in_gap(self, vis):
        env = Envelope(
            [Piece(0, 1, 3, 1, 0), Piece(7, 1, 9, 1, 1)]
        )
        res = vis(seg(5, -9, 5, -8), env)
        assert res.parts == [(5.0, 5.0)]

    def test_at_jump_breakpoint_takes_max_limit(self, vis):
        # Two pieces meet at y=5 with a jump: the profile value is the
        # max of the one-sided limits (upper semi-continuity).
        env = Envelope(
            [Piece(0, 1, 5, 1, 0), Piece(5, 3, 10, 3, 1)]
        )
        assert vis(seg(5, 0, 5, 2), env).fully_hidden
        res = vis(seg(5, 0, 5, 4), env)
        assert res.parts == [(5.0, 5.0)]

    def test_at_support_boundary(self, vis):
        # Exactly at the profile's last breakpoint; beyond it, a gap.
        assert vis(seg(10, 0, 10, 0.5), flat(1)).fully_hidden
        res = vis(seg(10 + 1e-6, 0, 10 + 1e-6, 0.5), flat(1))
        assert res.parts == [(res.parts[0].ya, res.parts[0].ya)]


class TestEpsBoundariesSharedEngines:
    """Touching endpoints and zero-width slivers, on both engines."""

    def test_touching_endpoint_keeps_closure(self, vis):
        # Rising from exactly the profile height: the visible part
        # reaches back to the shared endpoint.
        res = vis(seg(0, 1, 10, 3), flat(1))
        assert len(res.parts) == 1
        assert res.parts[0].ya <= 1e-9

    def test_zero_width_sliver_is_dropped(self, vis):
        # The segment pokes above the profile over a sub-eps interval:
        # the degenerate sliver is reported hidden.
        env = flat(1.0)
        res = vis(seg(4.0, 1.0 - 1e-12, 4.0 + 5e-10, 1.0 + 5e-13), env)
        assert res.fully_hidden

    def test_sub_eps_gap_between_parts_merges(self, vis):
        # Two profile pieces separated by a sub-eps gap: the two
        # visible slivers of a crossing segment coalesce.
        env = Envelope(
            [
                Piece(0.0, 5.0, 4.0, 5.0, 0),
                Piece(4.0 + 5e-10, 5.0, 8.0, 5.0, 1),
            ]
        )
        res = vis(seg(-2, 8, 10, 8), env)
        assert res.parts == [(-2.0, 10.0)]

    def test_eps_touching_profile_is_hidden(self, vis):
        res = vis(seg(0, 1.0 + 5e-10, 10, 1.0 - 5e-10), flat(1))
        assert res.fully_hidden

    def test_coincident_with_sliver_above(self, vis):
        # Coincident almost everywhere, rising just past eps at the
        # right end: one part, no spurious crossings at the eps edge.
        res = vis(seg(0, 1.0, 10, 1.0 + 3e-9), flat(1))
        ref = visible_parts(seg(0, 1.0, 10, 1.0 + 3e-9), flat(1))
        assert res.parts == ref.parts
        assert res.crossings == ref.crossings
        assert res.ops == ref.ops

    def test_endpoint_touch_at_piece_boundary(self, vis):
        env = Envelope(
            [Piece(0, 0, 5, 5, 0), Piece(5, 5, 10, 0, 0)]
        )
        # Touches the apex exactly; visible on neither side beyond it.
        res = vis(seg(0, 5, 10, 5), env)
        ref = visible_parts(seg(0, 5, 10, 5), env)
        assert res.parts == ref.parts and res.ops == ref.ops


class TestBasicCases:
    def test_empty_profile_fully_visible(self):
        res = visible_parts(seg(0, 1, 5, 2), Envelope.empty())
        assert res.fully_visible
        assert res.parts[0] == (0.0, 5.0)

    def test_fully_above(self):
        res = visible_parts(seg(1, 5, 9, 5), flat(1))
        assert res.fully_visible

    def test_fully_below(self):
        res = visible_parts(seg(1, 0.2, 9, 0.5), flat(1))
        assert res.fully_hidden
        assert res.crossings == []

    def test_single_crossing_rising(self):
        res = visible_parts(seg(0, 0, 10, 2), flat(1))
        assert len(res.parts) == 1
        ya, yb = res.parts[0]
        assert math.isclose(ya, 5.0)
        assert math.isclose(yb, 10.0)
        assert len(res.crossings) == 1
        assert math.isclose(res.crossings[0][0], 5.0)

    def test_double_crossing_peak(self):
        # Profile is a tent; segment is a low horizontal line crossing
        # both flanks: visible on both sides of the tent.
        env = Envelope(
            [Piece(0, 0, 5, 5, 0), Piece(5, 5, 10, 0, 0)]
        )
        res = visible_parts(seg(0, 2.5, 10, 2.5), env)
        assert len(res.parts) == 2
        assert len(res.crossings) == 2
        (a1, b1), (a2, b2) = res.parts
        assert math.isclose(b1, 2.5) and math.isclose(a2, 7.5)

    def test_visible_through_gap(self):
        env = Envelope(
            [Piece(0, 10, 3, 10, 0), Piece(7, 10, 10, 10, 1)]
        )
        res = visible_parts(seg(0, 1, 10, 1), env)
        assert len(res.parts) == 1
        assert res.parts[0] == (3.0, 7.0)

    def test_extends_past_profile(self):
        res = visible_parts(seg(-5, 2, 15, 2), flat(1, 0, 10))
        # Visible before 0, above everywhere actually since z=2 > 1.
        assert res.parts[0] == (-5.0, 15.0)

    def test_hidden_except_overhang(self):
        res = visible_parts(seg(-5, 0.5, 15, 0.5), flat(1, 0, 10))
        assert len(res.parts) == 2
        assert res.parts[0] == (-5.0, 0.0)
        assert res.parts[1] == (10.0, 15.0)

    def test_coincident_is_hidden(self):
        res = visible_parts(seg(0, 1, 10, 1), flat(1))
        assert res.fully_hidden

    def test_endpoint_touch_keeps_closure(self):
        # Segment rises from exactly the profile height at its left
        # endpoint: visible part must reach back to the endpoint.
        res = visible_parts(seg(0, 1, 10, 3), flat(1))
        assert len(res.parts) == 1
        assert res.parts[0].ya <= 1e-9

    def test_total_width_and_flags(self):
        res = visible_parts(seg(0, 2, 10, 2), flat(1, 0, 5))
        assert math.isclose(res.total_width(), 10.0)
        env2 = flat(3)
        assert visible_parts(seg(0, 2, 10, 2), env2).fully_hidden


class TestVerticalSegments:
    def test_above(self):
        res = visible_parts(seg(5, 0, 5, 2), flat(1))
        assert len(res.parts) == 1
        assert res.parts[0].ya == res.parts[0].yb == 5.0

    def test_below(self):
        assert visible_parts(seg(5, 0, 5, 0.5), flat(1)).fully_hidden

    def test_in_gap(self):
        env = Envelope([Piece(0, 1, 3, 1, 0)])
        res = visible_parts(seg(5, 0, 5, 0.5), env)
        assert len(res.parts) == 1


class TestAgainstBruteForce:
    def test_random_scan(self, rng):
        for _ in range(25):
            segs = random_image_segments(rng, rng.randint(1, 20))
            env = build_envelope(segs).envelope
            q = random_image_segments(rng, 1)[0]
            q = ImageSegment(q.y1, q.z1, q.y2, q.z2, 999)
            res = visible_parts(q, env)
            # Sample densely: visibility verdicts must match pointwise.
            for i in range(1, 100):
                y = q.y1 + (q.y2 - q.y1) * i / 100
                zq = q.z_at(y)
                ze = brute_force_envelope_value(segs, y)
                inside = any(p.ya < y < p.yb for p in res.parts)
                if zq > ze + 1e-6:
                    assert inside, f"y={y} should be visible"
                elif zq < ze - 1e-6:
                    assert not inside, f"y={y} should be hidden"

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 50, allow_nan=False),
                st.floats(0, 20, allow_nan=False),
                st.floats(0.5, 30, allow_nan=False),
                st.floats(0, 20, allow_nan=False),
            ),
            min_size=1,
            max_size=10,
        ),
        st.tuples(
            st.floats(0, 50, allow_nan=False),
            st.floats(0, 25, allow_nan=False),
            st.floats(1, 30, allow_nan=False),
            st.floats(0, 25, allow_nan=False),
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_parts_are_sane(self, raw_segs, raw_q):
        segs = [
            ImageSegment(y1, z1, y1 + w, z2, i)
            for i, (y1, z1, w, z2) in enumerate(raw_segs)
        ]
        env = build_envelope(segs).envelope
        y1, z1, w, z2 = raw_q
        q = ImageSegment(y1, z1, y1 + w, z2, 999)
        res = visible_parts(q, env)
        prev_end = None
        for p in res.parts:
            assert q.y1 - 1e-9 <= p.ya <= p.yb <= q.y2 + 1e-9
            if prev_end is not None:
                assert p.ya > prev_end  # maximal, disjoint, sorted
            prev_end = p.yb
        for (y, z) in res.crossings:
            assert q.y1 <= y <= q.y2
