"""Tests for :class:`repro.config.HsrConfig` — the unified front door."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG, HsrConfig


class TestValueSemantics:
    def test_frozen(self):
        cfg = HsrConfig()
        with pytest.raises(Exception):
            cfg.eps = 1.0  # type: ignore[misc]

    def test_hashable_and_comparable(self):
        assert HsrConfig(workers=2) == HsrConfig(workers=2)
        assert HsrConfig(workers=2) != HsrConfig(workers=3)
        assert hash(HsrConfig(eps=1e-9)) == hash(HsrConfig(eps=1e-9))
        assert len({HsrConfig(), HsrConfig(), HsrConfig(engine="python")}) == 2

    def test_replace(self):
        cfg = HsrConfig(engine="python")
        out = cfg.replace(workers=4)
        assert out.engine == "python" and out.workers == 4
        assert cfg.workers == 1  # original untouched


class TestResolve:
    def test_none_is_default(self):
        assert HsrConfig.resolve(None) is DEFAULT_CONFIG

    def test_passthrough_without_overrides(self):
        cfg = HsrConfig(workers=2)
        assert HsrConfig.resolve(cfg) is cfg

    def test_keyword_overrides_win(self):
        cfg = HsrConfig(engine="numpy", eps=1e-9)
        out = HsrConfig.resolve(cfg, engine="python", eps=1e-6)
        assert out.engine == "python" and out.eps == 1e-6
        assert cfg.engine == "numpy"  # original untouched

    def test_resolved_workers(self):
        assert HsrConfig(workers=3).resolved_workers() == 3
        assert HsrConfig(workers=0).resolved_workers() == 1

    def test_workers_auto_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert HsrConfig(workers="auto").resolved_workers() == 5

    def test_resolved_engine_python(self):
        assert HsrConfig(engine="python").resolved_engine() == "python"

    def test_resolved_engine_auto(self):
        pytest.importorskip("numpy")
        assert HsrConfig().resolved_engine() == "numpy"


class TestToggleDeferral:
    """``None`` fields track the live module globals; set fields win
    without mutating any process-wide state."""

    def test_packed_profile_tracks_global(self, monkeypatch):
        import repro.envelope.engine as engine

        cfg = HsrConfig()
        monkeypatch.setattr(engine, "USE_PACKED_PROFILE", True)
        assert cfg.packed_profile() is True
        monkeypatch.setattr(engine, "USE_PACKED_PROFILE", False)
        assert cfg.packed_profile() is False

    def test_explicit_field_wins(self, monkeypatch):
        import repro.envelope.engine as engine

        monkeypatch.setattr(engine, "USE_PACKED_PROFILE", False)
        assert HsrConfig(use_packed_profile=True).packed_profile() is True
        assert engine.USE_PACKED_PROFILE is False  # global untouched

    def test_cutoffs_defer_to_engine_defaults(self):
        import repro.envelope.engine as engine

        cfg = HsrConfig()
        assert cfg.merge_cutoff() == engine.FLAT_MERGE_CUTOFF
        assert cfg.visibility_cutoff() == engine.FLAT_VISIBILITY_CUTOFF
        assert cfg.fused_cutoff() == engine.FLAT_FUSED_CUTOFF
        assert HsrConfig(flat_merge_cutoff=7).merge_cutoff() == 7

    def test_fused_toggles_defer_to_splice(self):
        pytest.importorskip("numpy")
        import repro.envelope.flat_splice as splice

        cfg = HsrConfig()
        assert cfg.fused_insert() == splice.USE_FUSED_INSERT
        assert cfg.scalar_fastpaths() == splice.USE_SCALAR_FASTPATHS
        assert HsrConfig(use_fused_insert=False).fused_insert() is False


class TestConfigThreading:
    """Toggle ablations via config fields (no monkeypatching) stay
    bit-exact with the defaults."""

    @pytest.fixture
    def terrain(self):
        pytest.importorskip("numpy")
        from repro.terrain.generators import fractal_terrain

        return fractal_terrain(size=9, seed=5)

    def test_sequential_packed_toggle_parity(self, terrain):
        from repro.hsr.sequential import SequentialHSR

        base = SequentialHSR(config=HsrConfig(engine="python")).run(terrain)
        for packed in (False, True):
            cfg = HsrConfig(engine="numpy", use_packed_profile=packed)
            res = SequentialHSR(config=cfg).run(terrain)
            assert res.k == base.k
            assert (
                res.visibility_map.segments == base.visibility_map.segments
            )

    def test_parallel_engine_config_parity(self, terrain):
        from repro.hsr.parallel import ParallelHSR

        ref = ParallelHSR(mode="direct", engine="python").run(terrain)
        via_cfg = ParallelHSR(
            mode="direct", config=HsrConfig(engine="numpy")
        ).run(terrain)
        assert via_cfg.k == ref.k
        assert (
            via_cfg.visibility_map.segments == ref.visibility_map.segments
        )

    def test_eps_threads_through_constructor(self):
        from repro.hsr.sequential import SequentialHSR

        algo = SequentialHSR(config=HsrConfig(eps=1e-7))
        assert algo.eps == 1e-7
        # keyword shorthand overrides the config field
        algo = SequentialHSR(eps=1e-5, config=HsrConfig(eps=1e-7))
        assert algo.eps == 1e-5
