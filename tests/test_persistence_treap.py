"""Unit and property tests for the fully persistent treap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PersistenceError
from repro.persistence import treap


def build(keys):
    root = None
    for k in keys:
        root = treap.insert(root, float(k), f"v{k}")
    return root


class TestBasics:
    def test_insert_find(self):
        root = build([3, 1, 2])
        assert treap.find(root, 1.0) == "v1"
        assert treap.find(root, 2.0) == "v2"
        assert treap.find(root, 9.0) is None

    def test_insert_replaces(self):
        root = build([1])
        root = treap.insert(root, 1.0, "new")
        assert treap.size(root) == 1
        assert treap.find(root, 1.0) == "new"

    def test_to_list_sorted(self):
        root = build([5, 2, 8, 1, 9, 3])
        keys = [k for k, _ in treap.to_list(root)]
        assert keys == sorted(keys)

    def test_delete(self):
        root = build([1, 2, 3])
        root = treap.delete(root, 2.0)
        assert treap.size(root) == 2
        assert treap.find(root, 2.0) is None
        # Deleting a missing key is a no-op.
        assert treap.size(treap.delete(root, 42.0)) == 2

    def test_size_empty(self):
        assert treap.size(None) == 0
        assert treap.to_list(None) == []

    def test_kth(self):
        root = build([5, 2, 8])
        assert treap.kth(root, 0).key == 2.0
        assert treap.kth(root, 1).key == 5.0
        assert treap.kth(root, 2).key == 8.0
        with pytest.raises(PersistenceError):
            treap.kth(root, 3)
        with pytest.raises(PersistenceError):
            treap.kth(None, 0)

    def test_pred_succ(self):
        root = build([10, 20, 30])
        assert treap.pred(root, 25.0).key == 20.0
        assert treap.pred(root, 10.0) is None
        assert treap.succ(root, 15.0).key == 20.0
        assert treap.succ(root, 20.0).key == 20.0
        assert treap.succ(root, 31.0) is None

    def test_range_query(self):
        root = build(range(10))
        got = [k for k, _ in treap.range_query(root, 2.5, 7.0)]
        assert got == [3.0, 4.0, 5.0, 6.0]


class TestSplitJoin:
    def test_split(self):
        root = build([1, 2, 3, 4, 5])
        lo, hi = treap.split(root, 3.0)
        assert [k for k, _ in treap.to_list(lo)] == [1.0, 2.0]
        assert [k for k, _ in treap.to_list(hi)] == [3.0, 4.0, 5.0]

    def test_join_roundtrip(self):
        root = build([1, 2, 3, 4, 5])
        lo, hi = treap.split(root, 3.0)
        back = treap.join(lo, hi)
        assert treap.to_list(back) == treap.to_list(root)

    def test_join_empty(self):
        root = build([1])
        assert treap.join(None, root) is root
        assert treap.join(root, None) is root


class TestPersistence:
    def test_old_version_untouched(self):
        v1 = build([1, 2, 3])
        snapshot = treap.to_list(v1)
        v2 = treap.insert(v1, 4.0, "v4")
        v3 = treap.delete(v2, 1.0)
        assert treap.to_list(v1) == snapshot
        assert treap.size(v2) == 4
        assert treap.size(v3) == 3
        assert treap.find(v1, 4.0) is None

    def test_path_copying_is_logarithmic(self):
        keys = list(range(1024))
        random.Random(1).shuffle(keys)
        root = build(keys)
        before = treap.allocation_count()
        treap.insert(root, 2048.0, "x")
        created = treap.allocation_count() - before
        # Expected O(log n); 64 is a loose bound for n=1024.
        assert created <= 64

    def test_versions_share_nodes(self):
        root = build(range(256))
        v2 = treap.insert(root, 1000.0, "x")
        total, shared = treap.count_shared_nodes(root, v2)
        assert shared >= treap.size(root) - 40  # most nodes shared
        assert total <= treap.count_nodes(root) + 40

    def test_count_nodes(self):
        root = build(range(50))
        assert treap.count_nodes(root) == 50
        assert treap.count_nodes(None) == 0

    def test_deterministic_shape(self):
        a = build([3, 1, 4, 1, 5, 9, 2, 6])
        b = build([9, 6, 5, 4, 3, 2, 1])
        # Same key set (note duplicate 1 collapses) -> same shape.
        ka = [k for k, _ in treap.to_list(a)]
        kb = [k for k, _ in treap.to_list(b)]
        assert ka == kb

        def shape(n):
            if n is None:
                return None
            return (n.key, shape(n.left), shape(n.right))

        # Rebuild b with same values for exact comparison.
        a2 = build(sorted({3, 1, 4, 5, 9, 2, 6}))
        assert shape(a)[0] == shape(a2)[0]


class TestFromSorted:
    def test_matches_insertion(self):
        pairs = [(float(i), str(i)) for i in range(100)]
        a = treap.from_sorted(pairs)
        b = build(range(100))
        # from_sorted must produce the identical (priority-determined)
        # tree shape as repeated insertion.

        def shape(n):
            if n is None:
                return None
            return (n.key, shape(n.left), shape(n.right))

        assert shape(a) == tuple(
            (x if not isinstance(x, tuple) else x) for x in shape(b)
        ) or shape(a) == shape(b)

    def test_rejects_unsorted(self):
        with pytest.raises(PersistenceError):
            treap.from_sorted([(2.0, "a"), (1.0, "b")])
        with pytest.raises(PersistenceError):
            treap.from_sorted([(1.0, "a"), (1.0, "b")])

    def test_empty(self):
        assert treap.from_sorted([]) is None


class TestTreapInvariants:
    @given(st.lists(st.integers(-1000, 1000), max_size=150))
    @settings(max_examples=100, deadline=None)
    def test_bst_and_heap_properties(self, keys):
        root = build(keys)

        def check(node, lo, hi):
            if node is None:
                return
            assert lo < node.key < hi
            if node.left is not None:
                assert node.left.priority <= node.priority
            if node.right is not None:
                assert node.right.priority <= node.priority
            assert node.count == treap.size(node.left) + treap.size(
                node.right
            ) + 1
            check(node.left, lo, node.key)
            check(node.right, node.key, hi)

        check(root, float("-inf"), float("inf"))
        assert treap.size(root) == len(set(keys))

    @given(
        st.lists(st.integers(0, 100), max_size=80),
        st.integers(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_partition(self, keys, pivot):
        root = build(keys)
        lo, hi = treap.split(root, float(pivot))
        lo_keys = [k for k, _ in treap.to_list(lo)]
        hi_keys = [k for k, _ in treap.to_list(hi)]
        assert all(k < pivot for k in lo_keys)
        assert all(k >= pivot for k in hi_keys)
        assert sorted(lo_keys + hi_keys) == sorted(
            float(k) for k in set(keys)
        )
