"""Tests for the visibility-map output structure."""

from __future__ import annotations

import math

from repro.envelope.visibility import VisibilityResult, VisiblePart
from repro.geometry.segments import ImageSegment
from repro.hsr.result import HsrStats, VisibilityMap, VisibleSegment


def vm_with(*segs):
    vm = VisibilityMap()
    for s in segs:
        vm.add_segment(VisibleSegment(*s))
    return vm


class TestVisibleSegment:
    def test_point_flag(self):
        assert VisibleSegment(0, 1.0, 2.0, 1.0, 2.0).is_point
        assert not VisibleSegment(0, 1.0, 2.0, 3.0, 2.0).is_point

    def test_width(self):
        assert VisibleSegment(0, 1.0, 0.0, 4.0, 0.0).width == 3.0


class TestVisibilityMap:
    def test_empty(self):
        vm = VisibilityMap()
        assert vm.n_segments == 0
        assert vm.k == 0
        assert vm.visible_edges() == set()
        assert "0 visible segments" in vm.summary()

    def test_add_edge_result(self):
        vm = VisibilityMap()
        seg = ImageSegment(0.0, 0.0, 10.0, 10.0, 3)
        res = VisibilityResult([VisiblePart(2.0, 6.0)], [(2.0, 2.0)], 1)
        vm.add_edge_result(3, seg, res)
        assert vm.visible_edges() == {3}
        [(a, b)] = vm.edge_intervals(3)
        assert (a, b) == (2.0, 6.0)
        s = vm.segments[0]
        assert math.isclose(s.za, 2.0) and math.isclose(s.zb, 6.0)

    def test_vertical_edge_stored_as_point(self):
        vm = VisibilityMap()
        seg = ImageSegment(5.0, 1.0, 5.0, 9.0, 7)
        res = VisibilityResult([VisiblePart(5.0, 5.0)], [], 1)
        vm.add_edge_result(7, seg, res)
        assert vm.segments[0].is_point
        assert vm.segments[0].za == 9.0  # the top endpoint

    def test_k_counts_vertices_and_edges(self):
        # Two connected segments: 3 vertices + 2 edges = 5.
        vm = vm_with((0, 0.0, 0.0, 1.0, 1.0), (1, 1.0, 1.0, 2.0, 0.0))
        assert vm.k == 5

    def test_k_dedups_shared_vertices(self):
        # The same map twice: vertices dedup, edges count twice.
        vm = vm_with((0, 0.0, 0.0, 1.0, 1.0), (1, 0.0, 0.0, 1.0, 1.0))
        assert len(vm.vertices()) == 2
        assert vm.k == 4

    def test_total_visible_length(self):
        vm = vm_with((0, 0.0, 0.0, 3.0, 4.0))
        assert math.isclose(vm.total_visible_length(), 5.0)


class TestComparison:
    def test_same_maps(self):
        a = vm_with((0, 0.0, 0.0, 1.0, 0.0))
        b = vm_with((0, 0.0, 0.0, 1.0, 0.0))
        assert a.approx_same(b)
        assert a.difference_report(b) == []

    def test_split_interval_still_same(self):
        a = vm_with((0, 0.0, 0.0, 2.0, 2.0))
        b = vm_with((0, 0.0, 0.0, 1.0, 1.0), (0, 1.0, 1.0, 2.0, 2.0))
        assert a.approx_same(b)

    def test_different_extents(self):
        a = vm_with((0, 0.0, 0.0, 1.0, 0.0))
        b = vm_with((0, 0.0, 0.0, 1.5, 0.0))
        assert not a.approx_same(b)
        assert len(a.difference_report(b)) == 1

    def test_missing_edge(self):
        a = vm_with((0, 0.0, 0.0, 1.0, 0.0))
        b = VisibilityMap()
        assert not a.approx_same(b)

    def test_tolerance(self):
        a = vm_with((0, 0.0, 0.0, 1.0, 0.0))
        b = vm_with((0, 1e-9, 0.0, 1.0, 0.0))
        assert a.approx_same(b, tol=1e-6)
        assert not a.approx_same(b, tol=1e-12)


class TestHsrStats:
    def test_as_row(self):
        st = HsrStats(n_edges=10, k=5, ops=100, extra={"foo": 1.0})
        row = st.as_row()
        assert row["n"] == 10
        assert row["k"] == 5
        assert row["foo"] == 1.0
