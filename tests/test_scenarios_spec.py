"""Tests for the declarative scenario spec layer (ISSUE 9 tentpole).

Everything in this module is numpy-free on purpose: the spec machinery
(:mod:`repro.scenarios.spec`) and the ``repro scenarios`` CLI must work
on the pure-python leg, so this file is *not* in conftest's no-numpy
``collect_ignore`` list.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ScenarioError
from repro.scenarios import (
    ScenarioSpec,
    default_spec,
    load_spec,
)

MINI = {
    "format": "repro-scenarios",
    "version": 1,
    "scenarios": {
        "demo": {
            "workload": "segments",
            "roles": ["parity"],
            "cross": {"m": [8, 16], "family": ["e9"], "seed": [1, 2, 3]},
            "fixed": {"note": "x"},
            "configs": [
                {"id": "a", "engine": "python"},
                {"id": "b", "engine": "numpy"},
            ],
        }
    },
}


def mini_spec() -> ScenarioSpec:
    return ScenarioSpec.from_data(json.loads(json.dumps(MINI)))


class TestExpansion:
    def test_full_factorial_count(self):
        s = mini_spec().scenario("demo")
        assert s.n_instances == 2 * 1 * 3
        assert len(s.instances()) == 6

    def test_factors_sorted_levels_declared_order(self):
        insts = mini_spec().scenario("demo").instances()
        # Factor names iterate sorted (family < m < seed); level order
        # within a factor is exactly as declared.
        assert [k for k, _ in insts[0].factors] == ["family", "m", "seed"]
        assert [i.factor("m") for i in insts] == [8, 8, 8, 16, 16, 16]
        assert [i.factor("seed") for i in insts] == [1, 2, 3, 1, 2, 3]

    def test_expansion_deterministic(self):
        a = [i.instance_id for i in mini_spec().scenario("demo").instances()]
        b = [i.instance_id for i in mini_spec().scenario("demo").instances()]
        assert a == b
        assert a[0] == "demo[family=e9,m=8,seed=1]"

    def test_params_merges_fixed(self):
        inst = mini_spec().scenario("demo").instances()[0]
        params = inst.params()
        assert params["note"] == "x"
        assert params["m"] == 8
        assert inst.factor("note") == "x"  # falls back to fixed
        assert inst.factor("missing", 42) == 42

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(ScenarioError, match="known.*demo"):
            mini_spec().scenario("nope")

    def test_by_role(self):
        spec = mini_spec()
        assert [s.name for s in spec.by_role("parity")] == ["demo"]
        assert spec.by_role("bench") == []
        with pytest.raises(ScenarioError, match="unknown role"):
            spec.by_role("chaos")


class TestDefaultSpec:
    def test_loads_and_covers_all_workloads(self):
        spec = default_spec()
        kinds = {s.workload for s in spec.scenarios}
        assert kinds == {"terrain", "segments", "dem-file", "flyover"}
        assert spec.by_role("parity") and spec.by_role("bench")

    def test_pinned_rows_exist(self):
        pinned = default_spec().pinned_rows()
        names = {s.name for s, _ in pinned}
        assert names == {
            "bench-build-e9",
            "bench-insert-e9",
            "bench-insert-wide",
        }
        for s, inst in pinned:
            assert inst.factor("m") in s.pinned

    def test_bench_scenarios_have_two_configs(self):
        for s in default_spec().by_role("bench"):
            assert len(s.configs) == 2
            assert s.op is not None


class TestValidation:
    def _data(self, **entry):
        base = {
            "workload": "segments",
            "roles": ["parity"],
            "cross": {"m": [4]},
            "configs": [
                {"id": "a", "engine": "python"},
                {"id": "b", "engine": "numpy"},
            ],
        }
        base.update(entry)
        return {
            "format": "repro-scenarios",
            "scenarios": {"bad": base},
        }

    def test_not_a_spec(self):
        with pytest.raises(ScenarioError, match="format"):
            ScenarioSpec.from_data({"hello": 1})

    def test_empty_scenarios(self):
        with pytest.raises(ScenarioError, match="scenarios"):
            ScenarioSpec.from_data(
                {"format": "repro-scenarios", "scenarios": {}}
            )

    def test_unknown_key(self):
        with pytest.raises(ScenarioError, match="unknown keys.*turbo"):
            ScenarioSpec.from_data(self._data(turbo=True))

    def test_bad_workload(self):
        with pytest.raises(ScenarioError, match="workload"):
            ScenarioSpec.from_data(self._data(workload="voxels"))

    def test_bad_roles(self):
        with pytest.raises(ScenarioError, match="roles"):
            ScenarioSpec.from_data(self._data(roles=["decorative"]))

    def test_empty_factor(self):
        with pytest.raises(ScenarioError, match="non-empty"):
            ScenarioSpec.from_data(self._data(cross={"m": []}))

    def test_cross_fixed_overlap(self):
        with pytest.raises(ScenarioError, match="both 'cross' and"):
            ScenarioSpec.from_data(
                self._data(cross={"m": [4]}, fixed={"m": 9})
            )

    def test_config_needs_id(self):
        with pytest.raises(ScenarioError, match="'id'"):
            ScenarioSpec.from_data(
                self._data(configs=[{"engine": "python"}] * 2)
            )

    def test_duplicate_config_id(self):
        with pytest.raises(ScenarioError, match="duplicate config id"):
            ScenarioSpec.from_data(
                self._data(
                    configs=[
                        {"id": "a", "engine": "python"},
                        {"id": "a", "engine": "numpy"},
                    ]
                )
            )

    def test_unknown_config_field(self):
        with pytest.raises(ScenarioError, match="HsrConfig.*warp"):
            ScenarioSpec.from_data(
                self._data(
                    configs=[
                        {"id": "a", "warp": 9},
                        {"id": "b", "engine": "numpy"},
                    ]
                )
            )

    def test_bench_needs_op(self):
        with pytest.raises(ScenarioError, match="'op'"):
            ScenarioSpec.from_data(self._data(roles=["bench"]))

    def test_bench_needs_two_configs(self):
        with pytest.raises(ScenarioError, match="exactly 2"):
            ScenarioSpec.from_data(
                self._data(
                    roles=["bench"],
                    op="build",
                    configs=[{"id": "a", "engine": "python"}],
                )
            )

    def test_parity_needs_two_configs(self):
        with pytest.raises(ScenarioError, match=">= 2"):
            ScenarioSpec.from_data(
                self._data(configs=[{"id": "a", "engine": "python"}])
            )


class TestLoadSpec:
    def test_json_roundtrip(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(json.dumps(MINI))
        spec = load_spec(p)
        assert spec.names() == ["demo"]
        assert spec.source == str(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="gone.json"):
            load_spec(tmp_path / "gone.json")

    def test_invalid_json_has_location(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text("{broken")
        with pytest.raises(ScenarioError, match="line"):
            load_spec(p)

    def test_toml_spec(self, tmp_path):
        pytest.importorskip("tomllib")
        p = tmp_path / "s.toml"
        p.write_text(
            'format = "repro-scenarios"\n'
            "[scenarios.demo]\n"
            'workload = "segments"\n'
            'roles = ["parity"]\n'
            "[scenarios.demo.cross]\n"
            "m = [4]\n"
            "[[scenarios.demo.configs]]\n"
            'id = "a"\n'
            'engine = "python"\n'
            "[[scenarios.demo.configs]]\n"
            'id = "b"\n'
            'engine = "numpy"\n'
        )
        assert load_spec(p).scenario("demo").n_instances == 1

    def test_validation_error_names_file(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(
            json.dumps({"format": "repro-scenarios", "scenarios": {}})
        )
        with pytest.raises(ScenarioError, match="s.json"):
            load_spec(p)


class TestScenariosCli:
    def test_list_default(self, capsys):
        rc = main(["scenarios", "list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parity-terrain" in out
        assert "pinned" in out

    def test_show_expands_instances(self, capsys):
        rc = main(["scenarios", "show", "parity-coincident"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "parity-coincident[family=coincident,m=40,seed=3]" in out

    def test_show_unknown_scenario_exit_2(self, capsys):
        rc = main(["scenarios", "show", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope" in err

    def test_list_custom_spec(self, tmp_path, capsys):
        p = tmp_path / "s.json"
        p.write_text(json.dumps(MINI))
        rc = main(["scenarios", "list", "--spec", str(p)])
        assert rc == 0
        assert "demo" in capsys.readouterr().out

    def test_bad_spec_file_exit_2(self, tmp_path, capsys):
        p = tmp_path / "s.json"
        p.write_text("{broken")
        rc = main(["scenarios", "list", "--spec", str(p)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "s.json" in err

    def test_missing_spec_file_exit_2(self, tmp_path, capsys):
        rc = main(["scenarios", "list", "--spec", str(tmp_path / "no.json")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bad_spec_subprocess_no_traceback(self, tmp_path):
        # The full entry-point contract: exit code 2, a single
        # `error:` line, no traceback leaking to the terminal.
        import os
        import subprocess
        import sys

        p = tmp_path / "s.json"
        p.write_text('{"format": "wrong"}')
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "scenarios", "list",
             "--spec", str(p)],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr

    def test_perf_gate_missing_baseline_exit_2(self, tmp_path, capsys):
        rc = main(
            ["perf-gate", "--baseline", str(tmp_path / "none.json")]
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_perf_gate_bad_tolerance_exit_2(self, capsys):
        rc = main(["perf-gate", "--tolerance", "7"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "tolerance" in err
