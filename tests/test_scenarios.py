"""Scenario-matrix consumers: parity over the full factorial matrix,
bench-row generation, and the perf-regression gate (ISSUE 9 tentpole).

Requires numpy (listed in conftest's no-numpy ``collect_ignore``):
these tests actually *run* the workloads the spec declares.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import ScenarioSpec, default_spec
from repro.scenarios.instances import (
    bench_callables,
    check_parity,
    coincident_segments,
    dem_terrain_for,
    e9_segments,
    flyover_terrains,
    iter_bench_rows,
    segments_for,
    terrain_for,
    vertical_segments,
    wide_strip_segments,
)
from repro.scenarios.perfgate import run_perf_gate

SPEC = default_spec()

PARITY_INSTANCES = list(SPEC.iter_instances("parity"))


class TestParityMatrix:
    """Every config variant of every parity instance must produce the
    bit-exact same result as its scenario's reference config.  The
    matrix is data: add a factor level to default_scenarios.json and a
    new test id appears here with zero new code."""

    @pytest.mark.parametrize("inst", PARITY_INSTANCES, ids=str)
    def test_cross_config_parity(self, inst):
        check_parity(inst)

    def test_matrix_is_nontrivial(self):
        # The factorial expansion really is a matrix, not a list of
        # hand-written cases: >= 15 instances from 6 scenarios over
        # all four workload kinds.
        assert len(PARITY_INSTANCES) >= 15
        kinds = {i.scenario.workload for i in PARITY_INSTANCES}
        assert kinds == {"terrain", "segments", "dem-file", "flyover"}


class TestMaterialisers:
    def test_segment_families_match_bench_aliases(self):
        # Single source of truth: the bench module's historical
        # workload generators must be these exact functions.
        from repro.bench import envelope_bench

        assert envelope_bench._e9_segments is e9_segments
        assert envelope_bench._seq_segments is wide_strip_segments

    def test_coincident_family_duplicates_each_segment(self):
        segs = coincident_segments(10, seed=3)
        assert len(segs) == 20
        assert segs[0] == segs[1] and segs[2] == segs[3]

    def test_vertical_family_is_all_vertical(self):
        assert all(s.is_vertical for s in vertical_segments(10, seed=3))

    def test_unknown_segment_family(self):
        with pytest.raises(ScenarioError, match="unknown segment family"):
            segments_for({"family": "moebius", "m": 4})

    def test_unknown_terrain_family(self):
        with pytest.raises(ScenarioError, match="unknown terrain family"):
            terrain_for({"family": "swamp"})

    def test_observer_rotates_terrain(self):
        base = terrain_for({"family": "ridge", "size": 6, "seed": 1})
        rot = terrain_for(
            {"family": "ridge", "size": 6, "seed": 1, "observer": 30.0}
        )
        assert rot.n_edges == base.n_edges
        assert rot.vertices != base.vertices

    def test_dem_tile_loads_with_nodata_filled(self):
        terrain = dem_terrain_for(
            {"path": "data/dem_tile.asc", "format": "esri-ascii"}
        )
        # 8x8 grid -> 64 vertices; the NODATA hole is filled, not NaN.
        assert terrain.n_vertices == 64
        zs = [v.z for v in terrain.vertices]
        assert all(z == z for z in zs)  # no NaN
        assert min(zs) >= 586.2 - 1e-9
        assert -9999.0 not in zs

    def test_dem_missing_path_is_scenario_error(self):
        with pytest.raises(ScenarioError, match="dem tile"):
            dem_terrain_for(
                {"path": "data/gone.asc", "format": "esri-ascii"}
            )

    def test_flyover_frames_are_distinct_viewpoints(self):
        frames = flyover_terrains(
            {
                "family": "fractal",
                "size": 9,
                "seed": 23,
                "sweep": 90.0,
                "frames": 3,
            }
        )
        assert len(frames) == 3
        # Azimuths 0, 30, 60: frame 0 is the base, the rest rotated.
        assert frames[0].vertices != frames[1].vertices
        assert frames[1].vertices != frames[2].vertices

    def test_flyover_rejects_zero_frames(self):
        with pytest.raises(ScenarioError, match="frames"):
            flyover_terrains({"family": "fractal", "frames": 0})


def _mini_bench_spec(m=48, pinned=None, requires_ccore=False):
    return ScenarioSpec.from_data(
        {
            "format": "repro-scenarios",
            "scenarios": {
                "gate-demo": {
                    "workload": "segments",
                    "roles": ["bench"],
                    "op": "insert",
                    "requires_ccore": requires_ccore,
                    "cross": {
                        "family": ["wide-strip"],
                        "m": [m],
                        "seed": [29],
                    },
                    "pinned": pinned if pinned is not None else [m],
                    "configs": [
                        {"id": "python", "engine": "python"},
                        {"id": "numpy", "engine": "numpy"},
                    ],
                }
            },
        }
    )


class TestBenchRows:
    def test_rows_have_bench_schema(self):
        from repro.bench.envelope_bench import _time_interleaved

        rows = list(
            iter_bench_rows(
                _mini_bench_spec(), repeats=1, time_fn=_time_interleaved
            )
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["workload"] == "scenario:gate-demo"
        assert row["m"] == 48
        assert row["env_size"] > 0
        assert row["python_ms"] > 0 and row["numpy_ms"] > 0
        assert row["speedup"] == pytest.approx(
            row["python_ms"] / row["numpy_ms"]
        )

    def test_max_m_skips_large_instances(self):
        rows = list(
            iter_bench_rows(
                _mini_bench_spec(m=4096),
                repeats=1,
                time_fn=lambda fns, r: {k: 1.0 for k in fns},
                max_m=100,
            )
        )
        assert rows == []

    def test_default_bench_scenarios_all_materialise(self):
        # Every bench instance of the shipped spec can build its timed
        # callables (no missing family/op wiring); don't time them.
        for scenario in SPEC.by_role("bench"):
            for inst in scenario.instances():
                if inst.factor("m", 0) and inst.factor("m", 0) > 100:
                    continue  # keep the suite fast
                fns, m, env_size = bench_callables(scenario, inst)
                assert set(fns) == set(scenario.config_ids())
                assert m > 0


class TestPerfGate:
    """The gate compares fresh vs recorded speedup *ratios* for the
    spec's pinned rows.  Baselines here are written by the test, so
    pass/fail outcomes are deterministic by construction; the canary
    run uses real timings to prove a forced-python variant actually
    collapses the ratio."""

    def _baseline(self, tmp_path, speedup, m=48):
        p = tmp_path / "baseline.json"
        p.write_text(
            json.dumps(
                {
                    "suite": "envelope-kernel",
                    "rows": [
                        {
                            "workload": "scenario:gate-demo",
                            "m": m,
                            "speedup": speedup,
                        }
                    ],
                }
            )
        )
        return p

    def test_clean_gate_passes(self, tmp_path):
        # Recorded speedup far below anything real -> cannot fail.
        report = run_perf_gate(
            _mini_bench_spec(),
            baseline=self._baseline(tmp_path, 0.01),
            repeats=1,
        )
        assert report.passed
        assert len(report.rows) == 1
        assert report.rows[0].fresh_speedup > report.rows[0].floor
        assert "PASS" in report.format()

    def test_regressed_gate_fails(self, tmp_path):
        # Recorded speedup absurdly high -> any fresh run regresses.
        report = run_perf_gate(
            _mini_bench_spec(),
            baseline=self._baseline(tmp_path, 1e6),
            repeats=1,
        )
        assert not report.passed
        assert report.failures
        assert "FAIL" in report.format()

    def test_canary_collapses_real_speedup(self, tmp_path):
        # Self-recorded baseline: time the pinned row for real, then
        # run the gate with the canary's injected regression (variant
        # config replaced by the baseline config).  The fresh ratio
        # drops to ~1x, far below the measured floor.
        from repro.bench.envelope_bench import _time_interleaved

        spec = _mini_bench_spec(m=512)
        [(scenario, inst)] = spec.pinned_rows()
        fns, m, _ = bench_callables(scenario, inst)
        best = _time_interleaved(fns, 3)
        real = best["python"] / best["numpy"]
        assert real > 1.3  # numpy must genuinely win on this workload
        report = run_perf_gate(
            spec,
            baseline=self._baseline(tmp_path, real, m=m),
            repeats=3,
            canary=True,
        )
        assert report.canary
        assert not report.passed, (
            "canary run must fail: injected python-vs-python ratio"
            f" {report.rows[0].fresh_speedup:.2f} vs floor"
            f" {report.rows[0].floor:.2f}"
        )
        assert report.rows[0].fresh_speedup < real

    def test_missing_baseline_row_is_config_error(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps({"rows": []}))
        with pytest.raises(ScenarioError, match="no recorded row"):
            run_perf_gate(_mini_bench_spec(), baseline=p, repeats=1)

    def test_malformed_baseline_is_config_error(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text("[1, 2]")
        with pytest.raises(ScenarioError, match="rows"):
            run_perf_gate(_mini_bench_spec(), baseline=p, repeats=1)

    def test_unpinned_spec_is_config_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="no pinned"):
            run_perf_gate(
                _mini_bench_spec(pinned=[]),
                baseline=self._baseline(tmp_path, 1.0),
                repeats=1,
            )

    def test_requires_ccore_rows_skip_without_core(
        self, tmp_path, monkeypatch
    ):
        # On a no-compiler install the compiled-core pinned row is
        # ungateable (its variant config would silently fall back to
        # the cascade) — the gate must skip it, not false-fail.
        import repro.scenarios.perfgate as perfgate_mod

        monkeypatch.setattr(perfgate_mod, "_have_ccore", lambda: False)
        report = run_perf_gate(
            _mini_bench_spec(requires_ccore=True),
            baseline=self._baseline(tmp_path, 1e6),
            repeats=1,
        )
        assert report.passed
        assert not report.rows
        assert report.skipped == ["gate-demo"]
        assert "skip" in report.format()

    def test_default_spec_pinned_rows_recorded(self):
        # The shipped BENCH_envelope.json must contain every pinned
        # row of the shipped spec — otherwise CI's gate would die with
        # a config error instead of gating.  (Both pinned scenarios
        # are segment workloads, where the recorded m is the declared
        # m factor.)
        from pathlib import Path

        rows = json.loads(Path("BENCH_envelope.json").read_text())["rows"]
        keys = {(r["workload"], r["m"]) for r in rows}
        pinned = SPEC.pinned_rows()
        assert pinned
        for scenario, inst in pinned:
            assert (
                f"scenario:{scenario.name}",
                inst.factor("m"),
            ) in keys
