"""Tests for :mod:`repro.parallel_exec` — real multi-core build/merge.

Everything here runs with **2+ real worker processes** (the CI floor)
and pins bit-exactness against the in-process kernels: identical
envelope arrays, identical crossing lists (content *and* order),
identical operation counts, identical end-to-end visibility maps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HsrConfig
from repro.envelope.flat import batch_merge, build_envelope_flat, stack_envelopes
from repro.errors import KernelFault
from repro.parallel_exec import (
    available_workers,
    build_envelope_parallel,
    parallel_batch_merge,
    parallel_stats,
    reset_stats,
)
from repro.reliability import faultinject as fi
from repro.reliability import guard

from tests.conftest import random_image_segments

EPS = 1e-9

#: Floors zeroed so the pool engages on test-sized fixtures.
POOL2 = HsrConfig(
    engine="numpy",
    workers=2,
    parallel_min_segments=0,
    parallel_min_pieces=0,
)


def _fractal(size=9, seed=3):
    from repro.terrain.generators import fractal_terrain

    return fractal_terrain(size=size, seed=seed)


def _valley(rows=10, cols=10, seed=1):
    from repro.terrain.generators import valley_terrain

    return valley_terrain(rows=rows, cols=cols, seed=seed)


class TestAvailableWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert available_workers() == 7

    def test_default_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert available_workers() >= 1

    def test_old_pram_path_forwards_with_warning(self):
        from repro._compat import reset_deprecation_registry
        from repro.pram import pool

        reset_deprecation_registry()
        with pytest.warns(DeprecationWarning, match="parallel_exec"):
            n = pool.available_workers()
        assert n == available_workers()


class TestBuildParity:
    def test_build_matches_in_process(self, rng):
        from repro.envelope.build import build_envelope

        segs = random_image_segments(rng, 600)
        ref_flat = build_envelope_flat(segs, eps=EPS)
        ref = build_envelope(segs, config=HsrConfig(engine="numpy"))
        out = build_envelope_parallel(
            segs, eps=EPS, workers=2, min_segments=0
        )
        assert out is not None
        env, crossings, ops = out
        for field in ("ya", "za", "yb", "zb", "source"):
            np.testing.assert_array_equal(
                getattr(env, field), getattr(ref_flat.envelope, field)
            )
        assert crossings == ref.crossings
        assert ops == ref.ops

    def test_more_workers_same_bits(self, rng):
        segs = random_image_segments(rng, 300)
        ref = build_envelope_parallel(segs, eps=EPS, workers=2, min_segments=0)
        alt = build_envelope_parallel(segs, eps=EPS, workers=4, min_segments=0)
        assert ref is not None and alt is not None
        np.testing.assert_array_equal(ref[0].ya, alt[0].ya)
        np.testing.assert_array_equal(ref[0].source, alt[0].source)
        assert ref[1] == alt[1] and ref[2] == alt[2]

    def test_declines_below_floor(self, rng):
        reset_stats()
        segs = random_image_segments(rng, 20)
        assert (
            build_envelope_parallel(segs, eps=EPS, workers=2) is None
        )  # default floor = 2048 segments
        assert parallel_stats["declined"] == 1


class TestBatchMergeParity:
    @staticmethod
    def _stacks(rng, groups=12, per=8):
        def one():
            return stack_envelopes(
                [
                    build_envelope_flat(
                        random_image_segments(rng, per), eps=EPS
                    ).envelope
                    for _ in range(groups)
                ]
            )

        return one(), one()

    def test_merge_matches_batch_merge(self, rng):
        a, b = self._stacks(rng)
        ref = batch_merge(a, b, eps=EPS, record_crossings=True)
        out = parallel_batch_merge(
            a, b, eps=EPS, record_crossings=True, workers=3, min_pieces=0
        )
        assert out is not None
        np.testing.assert_array_equal(ref.ops, out.ops)
        for field in ("ya", "za", "yb", "zb", "source", "offsets"):
            np.testing.assert_array_equal(
                getattr(ref.merged, field), getattr(out.merged, field)
            )
        for field in (
            "cross_group",
            "cross_y",
            "cross_z",
            "cross_front",
            "cross_back",
        ):
            np.testing.assert_array_equal(
                getattr(ref, field), getattr(out, field)
            )

    def test_declines_on_single_group(self, rng):
        a = stack_envelopes(
            [build_envelope_flat(random_image_segments(rng, 8), eps=EPS).envelope]
        )
        b = stack_envelopes(
            [build_envelope_flat(random_image_segments(rng, 8), eps=EPS).envelope]
        )
        reset_stats()
        assert (
            parallel_batch_merge(
                a, b, eps=EPS, record_crossings=False, workers=2, min_pieces=0
            )
            is None
        )
        assert parallel_stats["declined"] == 1


class TestPipelineParity:
    """End-to-end: a 2-worker run is bit-exact with the python engine,
    and the pool demonstrably engaged."""

    @pytest.mark.parametrize("terrain_fn", [_fractal, _valley])
    def test_parallel_hsr_two_workers(self, terrain_fn):
        from repro.hsr.parallel import ParallelHSR

        terrain = terrain_fn()
        reset_stats()
        ref = ParallelHSR(mode="direct", engine="python").run(terrain)
        par = ParallelHSR(mode="direct", config=POOL2).run(terrain)
        assert par.k == ref.k
        assert par.stats.ops == ref.stats.ops
        assert par.visibility_map.segments == ref.visibility_map.segments
        assert parallel_stats["batched_merges"] > 0  # pool actually ran
        assert (
            parallel_stats["chunks"] >= 2 * parallel_stats["batched_merges"]
        )

    def test_sequential_hsr_config_ignores_workers(self):
        # SequentialHSR inserts one segment at a time — no batched
        # level merges — so a workers>1 config must be a no-op.
        from repro.hsr.sequential import SequentialHSR

        terrain = _fractal(size=9, seed=7)
        ref = SequentialHSR(config=HsrConfig(engine="numpy")).run(terrain)
        par = SequentialHSR(config=POOL2).run(terrain)
        assert par.k == ref.k
        assert par.visibility_map.segments == ref.visibility_map.segments

    def test_build_envelope_front_door(self, rng):
        from repro.envelope.build import build_envelope

        segs = random_image_segments(rng, 400)
        ref = build_envelope(segs, engine="python")
        par = build_envelope(segs, config=POOL2)
        assert par.ops == ref.ops
        assert par.crossings == ref.crossings
        assert [
            (p.ya, p.za, p.yb, p.zb, p.source) for p in par.envelope.pieces
        ] == [
            (p.ya, p.za, p.yb, p.zb, p.source) for p in ref.envelope.pieces
        ]


class TestFaultHandling:
    """The ``parallel_exec`` guard site: injected faults degrade to the
    in-process path bit-exact (guarded) or raise (strict)."""

    def test_injected_fault_falls_back(self, rng, monkeypatch):
        from repro.envelope.build import build_envelope

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", True)
        guard.reset_ambient()
        reset_stats()
        segs = random_image_segments(rng, 400)
        ref = build_envelope(segs, engine="python")
        with fi.inject("parallel_exec", "raise") as plan:
            par = build_envelope(segs, config=POOL2)
        assert plan.fired == 1
        assert parallel_stats["faults"] == 1
        assert par.ops == ref.ops and par.crossings == ref.crossings
        guard.reset_ambient()

    def test_strict_mode_raises(self, rng, monkeypatch):
        from repro.envelope.build import build_envelope

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        segs = random_image_segments(rng, 400)
        with fi.inject("parallel_exec", "raise"):
            with pytest.raises(KernelFault) as exc:
                build_envelope(segs, config=POOL2)
        assert exc.value.site == "parallel_exec"

    def test_single_worker_config_never_dispatches(self, rng):
        from repro.parallel_exec import maybe_build_envelope

        segs = random_image_segments(rng, 100)
        cfg = HsrConfig(workers=1, parallel_min_segments=0)
        assert maybe_build_envelope(segs, eps=EPS, config=cfg) is None
