"""Unit tests for repro.geometry.primitives."""

from __future__ import annotations

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import (
    EPS,
    Point2,
    Point3,
    almost_equal,
    bbox,
    collinear,
    cross2,
    dist2,
    inv_lerp,
    lerp,
    orient2d,
    turns_left,
    turns_right,
)


class TestPoint2:
    def test_add_sub(self):
        a = Point2(1.0, 2.0)
        b = Point2(3.0, -1.0)
        assert a + b == Point2(4.0, 1.0)
        assert b - a == Point2(2.0, -3.0)

    def test_scaled(self):
        assert Point2(2.0, -4.0).scaled(0.5) == Point2(1.0, -2.0)

    def test_tuple_compat(self):
        x, y = Point2(5.0, 6.0)
        assert (x, y) == (5.0, 6.0)


class TestPoint3:
    def test_project_xy(self):
        assert Point3(1.0, 2.0, 3.0).project_xy() == Point2(1.0, 2.0)

    def test_project_zy_is_y_then_z(self):
        p = Point3(1.0, 2.0, 3.0).project_zy()
        assert p == Point2(2.0, 3.0)


class TestOrientation:
    def test_ccw(self):
        assert orient2d(Point2(0, 0), Point2(1, 0), Point2(1, 1)) == 1

    def test_cw(self):
        assert orient2d(Point2(0, 0), Point2(1, 0), Point2(1, -1)) == -1

    def test_collinear(self):
        assert orient2d(Point2(0, 0), Point2(1, 1), Point2(2, 2)) == 0
        assert collinear(Point2(0, 0), Point2(1, 1), Point2(2, 2))

    def test_eps_band(self):
        # Signed area below eps counts as collinear.
        o, a = Point2(0, 0), Point2(1, 0)
        b = Point2(1, EPS / 10)
        assert orient2d(o, a, b) == 0
        assert orient2d(o, a, b, eps=0.0) == 1

    def test_turns(self):
        o, a = Point2(0, 0), Point2(1, 0)
        assert turns_left(o, a, Point2(1, 1))
        assert turns_right(o, a, Point2(1, -1))
        assert not turns_left(o, a, Point2(2, 0))

    def test_cross2_magnitude(self):
        # Twice the triangle area.
        assert cross2(Point2(0, 0), Point2(2, 0), Point2(0, 3)) == 6.0


class TestInterp:
    def test_lerp_endpoints_exact(self):
        a, b = 0.1, 0.3
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b

    def test_lerp_midpoint(self):
        assert lerp(0.0, 10.0, 0.5) == 5.0

    def test_inv_lerp_roundtrip(self):
        a, b = -3.0, 7.0
        for t in (0.0, 0.25, 0.5, 1.0):
            assert math.isclose(inv_lerp(a, b, lerp(a, b, t)), t)

    def test_inv_lerp_degenerate(self):
        with pytest.raises(GeometryError):
            inv_lerp(1.0, 1.0, 1.0)


class TestMisc:
    def test_almost_equal(self):
        assert almost_equal(1.0, 1.0 + EPS / 2)
        assert not almost_equal(1.0, 1.0 + 10 * EPS)

    def test_dist2(self):
        assert dist2(Point2(0, 0), Point2(3, 4)) == 5.0

    def test_bbox(self):
        pts = [Point2(1, 5), Point2(-2, 3), Point2(4, -1)]
        assert bbox(pts) == (-2, -1, 4, 5)

    def test_bbox_empty(self):
        with pytest.raises(GeometryError):
            bbox([])

    def test_bbox_single(self):
        assert bbox([Point2(2, 3)]) == (2, 3, 2, 3)
