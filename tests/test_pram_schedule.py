"""Unit tests for Brent / slow-down scheduling (Lemma 2.1/2.2)."""

from __future__ import annotations


import pytest

from repro.errors import PramError
from repro.pram.schedule import (
    PhaseCost,
    allocation_time,
    brent_time,
    phases_from_tracker,
    slowdown_time,
    speedup_curve,
)
from repro.pram.tracker import PramTracker


class TestAllocation:
    def test_formula(self):
        assert allocation_time(8, 2) == 8 * 3 / 2

    def test_trivial_sizes(self):
        assert allocation_time(0, 4) == 0.0
        assert allocation_time(1, 4) == 0.0

    def test_bad_p(self):
        with pytest.raises(PramError):
            allocation_time(8, 0)


class TestBrent:
    def test_p1_is_work_plus_depth(self):
        assert brent_time(100, 10, 1) == 110

    def test_monotone_in_p(self):
        times = [brent_time(1000, 10, p) for p in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)

    def test_saturates_at_depth(self):
        assert brent_time(1000, 10, 10**9) == pytest.approx(10, rel=1e-3)

    def test_allocation_term(self):
        base = brent_time(64, 4, 2)
        with_alloc = brent_time(64, 4, 2, allocation=True)
        assert with_alloc == base + allocation_time(64, 2)

    def test_invalid(self):
        with pytest.raises(PramError):
            brent_time(10, 1, 0)
        with pytest.raises(PramError):
            brent_time(-1, 1, 1)


class TestSlowdown:
    def test_empty(self):
        assert slowdown_time([], 4) == 0.0

    def test_single_phase(self):
        # N=8 tasks of time 3: t=3, work=24; p=4 -> 3 + 6 + alloc(8,4)
        ph = [PhaseCost(tasks=8, task_time=3)]
        expected = 3 + 24 / 4 + allocation_time(8, 4)
        assert slowdown_time(ph, 4) == pytest.approx(expected)

    def test_no_allocation(self):
        ph = [PhaseCost(tasks=8, task_time=3)]
        assert slowdown_time(ph, 4, allocation=False) == pytest.approx(9.0)

    def test_multiple_phases(self):
        ph = [PhaseCost(4, 2), PhaseCost(16, 1)]
        got = slowdown_time(ph, 2, allocation=False)
        assert got == pytest.approx((2 + 1) + (8 + 16) / 2)

    def test_requirement(self):
        assert PhaseCost(5, 3).requirement == 15


class TestSpeedupCurve:
    def test_shape(self):
        rows = speedup_curve(10000, 10, [1, 2, 4])
        assert [r[0] for r in rows] == [1, 2, 4]
        # speedup at p=1 is 1 by construction.
        assert rows[0][2] == pytest.approx(1.0)
        # speedups increase with p in the linear regime.
        assert rows[1][2] > rows[0][2]
        assert rows[2][2] > rows[1][2]

    def test_saturation(self):
        rows = speedup_curve(1000, 100, [1, 1000000])
        # Speedup can never exceed work/depth + 1.
        assert rows[-1][2] <= 1000 / 100 + 1 + 1e-9


class TestPhasesFromTracker:
    def test_roundtrip(self):
        t = PramTracker()
        with t.phase("x"):
            with t.parallel() as par:
                par.spawn(6, 2)
                par.spawn(6, 3)
        phases = phases_from_tracker(t)
        assert len(phases) == 1
        assert phases[0].tasks == 2
        assert phases[0].task_time == 3

    def test_sequential_phase(self):
        t = PramTracker()
        with t.phase("seq"):
            t.charge(10)
        phases = phases_from_tracker(t)
        assert phases[0].tasks == 1
        assert phases[0].task_time == 10
