"""Tests for the Lemma 3.2 middle-diagonal intersection recursion."""

from __future__ import annotations

import math

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope, Piece
from repro.geometry.segments import ImageSegment
from repro.hsr.cg import ProfileIndex
from repro.hsr.intersect import all_intersections_lemma32
from repro.pram.tracker import PramTracker
from tests.conftest import random_image_segments
from tests.test_hsr_cg import brute_crossings


def sawtooth(teeth: int) -> Envelope:
    pieces = []
    for i in range(teeth):
        y = float(2 * i)
        pieces.append(Piece(y, 0.0, y + 1, 2.0, i))
        pieces.append(Piece(y + 1, 2.0, y + 2, 0.0, i))
    return Envelope(pieces)


class TestLemma32:
    def test_empty_profile(self):
        idx = ProfileIndex(Envelope.empty())
        got, probes = all_intersections_lemma32(
            idx, ImageSegment(0, 0, 1, 1, 0)
        )
        assert got == [] and probes == 0

    def test_single_crossing(self):
        env = Envelope([Piece(0, 0, 10, 10, 0)])
        idx = ProfileIndex(env)
        got, _ = all_intersections_lemma32(idx, ImageSegment(0, 10, 10, 0, 1))
        assert len(got) == 1
        assert math.isclose(got[0][0], 5.0)

    def test_sawtooth_all_found(self):
        env = sawtooth(16)
        idx = ProfileIndex(env)
        seg = ImageSegment(0.0, 1.0, 32.0, 1.0, 99)
        got, _ = all_intersections_lemma32(idx, seg)
        assert len(got) == 32
        ys = [y for y, _ in got]
        assert ys == sorted(ys)

    def test_matches_brute_force_random(self, rng):
        for _ in range(30):
            env = build_envelope(
                random_image_segments(rng, rng.randint(2, 30))
            ).envelope
            idx = ProfileIndex(env)
            q = random_image_segments(rng, 1)[0]
            got, _ = all_intersections_lemma32(idx, q)
            want = brute_crossings(env, q)
            assert len(got) == len(want)
            for (gy, _), (wy, _) in zip(got, want):
                assert abs(gy - wy) <= 1e-8

    def test_matches_repeated_first(self, rng):
        env = build_envelope(random_image_segments(rng, 25)).envelope
        idx = ProfileIndex(env)
        for _ in range(20):
            q = random_image_segments(rng, 1)[0]
            a, _ = all_intersections_lemma32(idx, q)
            b, _ = idx.all_intersections(q)
            assert len(a) == len(b)

    def test_parallel_depth_less_than_work(self):
        env = sawtooth(64)
        idx = ProfileIndex(env)
        seg = ImageSegment(0.0, 1.0, 128.0, 1.0, 99)
        tracker = PramTracker()
        got, probes = all_intersections_lemma32(idx, seg, tracker=tracker)
        assert len(got) == 128
        # The recursion splits into parallel branches: depth must be
        # well below total work.
        assert tracker.depth < tracker.work / 2

    def test_probe_bound(self):
        # k_s crossings cost O((k_s + 1) log^2 m) probes.
        env = sawtooth(64)
        idx = ProfileIndex(env)
        seg = ImageSegment(0.0, 1.0, 128.0, 1.0, 99)
        got, probes = all_intersections_lemma32(idx, seg)
        ks = len(got)
        m = env.size
        assert probes <= 6 * (ks + 1) * math.log2(m) ** 2

    def test_vertical_query(self):
        idx = ProfileIndex(sawtooth(4))
        got, probes = all_intersections_lemma32(
            idx, ImageSegment(3.0, 0.0, 3.0, 5.0, 9)
        )
        assert got == [] and probes == 0
