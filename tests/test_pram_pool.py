"""Tests for execution backends (serial + process pool)."""

from __future__ import annotations


from repro.envelope.chain import Envelope, Piece
from repro.hsr.parallel import ParallelHSR
from repro.pram.pool import (
    ProcessBackend,
    SerialBackend,
    available_workers,
    default_backend,
)
from repro.terrain.generators import fractal_terrain


def square(x: int) -> int:
    return x * x


class TestSerialBackend:
    def test_map(self):
        b = SerialBackend()
        assert b.map(square, [1, 2, 3]) == [1, 4, 9]
        assert b.workers == 1
        b.close()

    def test_default_backend(self):
        assert isinstance(default_backend(), SerialBackend)


class TestAvailableWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert available_workers() == 3

    def test_env_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        assert available_workers() >= 1

    def test_env_minimum_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert available_workers() == 1


class TestProcessBackend:
    def test_map_functions(self):
        with ProcessBackend(workers=2) as b:
            assert b.map(square, list(range(20))) == [
                x * x for x in range(20)
            ]

    def test_single_item_stays_inline(self):
        with ProcessBackend(workers=2) as b:
            assert b.map(square, [7]) == [49]

    def test_envelope_tasks_pickle(self):
        from repro.hsr.pct import _merge_task

        a = Envelope([Piece(0, 0, 5, 5, 0)])
        b_env = Envelope([Piece(0, 5, 5, 0, 1)])
        with ProcessBackend(workers=2) as backend:
            results = backend.map(
                _merge_task, [(a, b_env, 1e-9)] * 8
            )
        for env, ops, _nx in results:
            assert env.size >= 2
            assert ops >= 1

    def test_pipeline_with_pool_matches_serial(self):
        t = fractal_terrain(size=9, seed=5)
        serial = ParallelHSR().run(t)
        with ProcessBackend(workers=2) as backend:
            pooled = ParallelHSR(backend=backend).run(t)
        assert pooled.visibility_map.approx_same(
            serial.visibility_map, tol=1e-9
        )
        assert pooled.k == serial.k
