"""Tests for the synthetic terrain generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TerrainError
from repro.terrain.generators import (
    GENERATORS,
    fractal_terrain,
    generate_terrain,
    grid_terrain_from_heights,
    plateau_terrain,
    random_terrain,
    ridge_terrain,
    shielded_basin_terrain,
    valley_terrain,
)


class TestGridTerrain:
    def test_shape(self):
        h = np.zeros((4, 5))
        t = grid_terrain_from_heights(h)
        assert t.n_vertices == 20
        assert t.n_faces == 2 * 3 * 4

    def test_too_small(self):
        with pytest.raises(TerrainError):
            grid_terrain_from_heights(np.zeros((1, 5)))
        with pytest.raises(TerrainError):
            grid_terrain_from_heights(np.zeros(5))

    def test_heights_preserved(self):
        h = np.arange(12, dtype=float).reshape(3, 4)
        t = grid_terrain_from_heights(h, jitter_seed=None)
        zs = sorted(v.z for v in t.vertices)
        assert zs == sorted(h.ravel().tolist())

    def test_rows_advance_along_x(self):
        h = np.zeros((3, 3))
        t = grid_terrain_from_heights(h, jitter_seed=None, spacing=2.0)
        # Vertex (r=2, c=0) must sit at larger x than (r=0, c=0).
        assert t.vertices[6].x > t.vertices[0].x
        # Vertex (r=0, c=2) must sit at larger y than (r=0, c=0).
        assert t.vertices[2].y > t.vertices[0].y

    def test_jitter_determinism(self):
        a = grid_terrain_from_heights(np.zeros((4, 4)), jitter_seed=7)
        b = grid_terrain_from_heights(np.zeros((4, 4)), jitter_seed=7)
        assert a.vertices == b.vertices

    def test_jitter_kills_degenerate_ys(self):
        t = grid_terrain_from_heights(np.zeros((5, 5)), jitter_seed=1)
        ys = sorted(v.y for v in t.vertices)
        assert all(b - a > 1e-9 for a, b in zip(ys, ys[1:]))

    def test_planarity_preserved_under_jitter(self):
        t = grid_terrain_from_heights(np.zeros((6, 6)), jitter_seed=3)
        t.check_planarity()


class TestFamilies:
    def test_fractal_size_validation(self):
        with pytest.raises(TerrainError):
            fractal_terrain(size=10)

    def test_fractal_determinism(self):
        a = fractal_terrain(size=9, seed=5)
        b = fractal_terrain(size=9, seed=5)
        assert a.vertices == b.vertices
        c = fractal_terrain(size=9, seed=6)
        assert a.vertices != c.vertices

    def test_ridge_occludes_more_than_valley(self):
        from repro.hsr.sequential import SequentialHSR

        ridge = ridge_terrain(rows=12, cols=12, seed=1)
        valley = valley_terrain(rows=12, cols=12, seed=1)
        k_ridge = SequentialHSR().run(ridge).k
        k_valley = SequentialHSR().run(valley).k
        assert k_ridge < k_valley

    def test_shielded_basin_occlusion_knob(self):
        from repro.hsr.sequential import SequentialHSR

        open_basin = shielded_basin_terrain(
            rows=12, cols=12, occlusion=0.0, seed=2
        )
        shut_basin = shielded_basin_terrain(
            rows=12, cols=12, occlusion=1.5, seed=2
        )
        assert open_basin.n_edges == shut_basin.n_edges
        k_open = SequentialHSR().run(open_basin).k
        k_shut = SequentialHSR().run(shut_basin).k
        assert k_shut < k_open / 2

    def test_plateau(self):
        t = plateau_terrain(rows=8, cols=8, steps=3, seed=0)
        assert t.n_vertices == 64

    def test_random_terrain(self):
        t = random_terrain(n_points=50, seed=3)
        assert t.n_vertices == 50
        assert t.n_faces >= 48  # Delaunay of 50 points in general position
        t.check_planarity()

    def test_random_terrain_too_small(self):
        with pytest.raises(TerrainError):
            random_terrain(n_points=2)


class TestDispatcher:
    def test_known_kinds(self):
        for kind in GENERATORS:
            t = generate_terrain(
                kind,
                **(
                    {"n_points": 20}
                    if kind == "random"
                    else {"rows": 6, "cols": 6}
                    if kind != "fractal"
                    else {"size": 5}
                ),
            )
            assert t.n_edges > 0

    def test_unknown_kind(self):
        with pytest.raises(TerrainError, match="unknown terrain kind"):
            generate_terrain("moonscape")
