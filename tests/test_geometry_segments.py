"""Unit tests for repro.geometry.segments."""

from __future__ import annotations

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import Point2
from repro.geometry.segments import (
    ImageSegment,
    MapSegment,
    line_crossing_y,
    segment_intersection_2d,
)


class TestImageSegment:
    def test_make_normalises_order(self):
        s = ImageSegment.make(Point2(5.0, 1.0), Point2(2.0, 3.0), source=7)
        assert (s.y1, s.z1, s.y2, s.z2) == (2.0, 3.0, 5.0, 1.0)
        assert s.source == 7

    def test_z_at_endpoints_exact(self):
        s = ImageSegment(0.1, 0.2, 0.9, 0.7, 0)
        assert s.z_at(0.1) == 0.2
        assert s.z_at(0.9) == 0.7

    def test_z_at_interior(self):
        s = ImageSegment(0.0, 0.0, 10.0, 20.0, 0)
        assert math.isclose(s.z_at(2.5), 5.0)

    def test_slope(self):
        s = ImageSegment(0.0, 1.0, 2.0, 5.0, 0)
        assert s.slope == 2.0

    def test_vertical(self):
        s = ImageSegment(3.0, 1.0, 3.0, 9.0, 0)
        assert s.is_vertical
        assert s.top == 9.0
        assert s.z_at(3.0) == 9.0
        with pytest.raises(GeometryError):
            _ = s.slope

    def test_covers(self):
        s = ImageSegment(1.0, 0.0, 2.0, 0.0, 0)
        assert s.covers(1.0) and s.covers(2.0) and s.covers(1.5)
        assert not s.covers(0.99)
        assert s.covers(0.99, eps=0.02)

    def test_subsegment(self):
        s = ImageSegment(0.0, 0.0, 10.0, 10.0, 3)
        sub = s.subsegment(2.0, 4.0)
        assert (sub.y1, sub.z1, sub.y2, sub.z2) == (2.0, 2.0, 4.0, 4.0)
        assert sub.source == 3

    def test_subsegment_out_of_range(self):
        s = ImageSegment(0.0, 0.0, 10.0, 10.0, 0)
        with pytest.raises(GeometryError):
            s.subsegment(-1.0, 5.0)
        with pytest.raises(GeometryError):
            s.subsegment(5.0, 4.0)

    def test_length(self):
        assert ImageSegment(0, 0, 3, 4, 0).length() == 5.0

    def test_as_points(self):
        a, b = ImageSegment(0, 1, 2, 3, 0).as_points()
        assert a == Point2(0, 1) and b == Point2(2, 3)


class TestMapSegment:
    def test_make_normalises(self):
        s = MapSegment.make(Point2(1.0, 9.0), Point2(2.0, 3.0))
        assert s.y1 <= s.y2

    def test_x_at(self):
        s = MapSegment(0.0, 0.0, 10.0, 10.0, 0)
        assert s.x_at(5.0) == 5.0
        assert s.x_at(0.0) == 0.0

    def test_horizontal_takes_near_side(self):
        s = MapSegment(2.0, 1.0, 8.0, 1.0, 0)
        assert s.is_horizontal
        assert s.x_at(1.0) == 8.0  # the x nearest the viewer at +inf


class TestLineCrossing:
    def test_simple_cross(self):
        a = ImageSegment(0.0, 0.0, 10.0, 10.0, 0)
        b = ImageSegment(0.0, 10.0, 10.0, 0.0, 1)
        y = line_crossing_y(a, b)
        assert y is not None and math.isclose(y, 5.0)

    def test_parallel(self):
        a = ImageSegment(0.0, 0.0, 10.0, 10.0, 0)
        b = ImageSegment(0.0, 1.0, 10.0, 11.0, 1)
        assert line_crossing_y(a, b) is None

    def test_vertical_raises(self):
        a = ImageSegment(0.0, 0.0, 0.0, 10.0, 0)
        b = ImageSegment(0.0, 10.0, 10.0, 0.0, 1)
        with pytest.raises(GeometryError):
            line_crossing_y(a, b)


class TestSegmentIntersection2d:
    def test_cross(self):
        p = segment_intersection_2d(
            Point2(0, 0), Point2(2, 2), Point2(0, 2), Point2(2, 0)
        )
        assert p is not None
        assert math.isclose(p.x, 1.0) and math.isclose(p.y, 1.0)

    def test_miss(self):
        p = segment_intersection_2d(
            Point2(0, 0), Point2(1, 0), Point2(0, 1), Point2(1, 1)
        )
        assert p is None

    def test_endpoint_touch(self):
        p = segment_intersection_2d(
            Point2(0, 0), Point2(1, 1), Point2(1, 1), Point2(2, 0)
        )
        assert p is not None
        assert math.isclose(p.x, 1.0) and math.isclose(p.y, 1.0)

    def test_collinear_overlap_returns_none(self):
        p = segment_intersection_2d(
            Point2(0, 0), Point2(2, 0), Point2(1, 0), Point2(3, 0)
        )
        assert p is None
