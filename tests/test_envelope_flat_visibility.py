"""Engine-equivalence suite for the batched visibility kernel.

Same contract as ``tests/test_envelope_flat.py``: the NumPy kernel
must be an *exact* replica of the scalar reference — identical parts
(bit-for-bit floats), crossings and ``ops`` for every query, on
adversarial inputs with eps-scale jitters, verticals, gaps and
near-parallel crossings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.envelope.engine as engine_mod
from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.engine import visibility_dispatch
from repro.envelope.flat import FlatEnvelope, stack_envelopes
from repro.envelope.flat_visibility import (
    batch_visible_parts,
    visible_parts_flat,
)
from repro.envelope.visibility import visible_parts
from repro.errors import EnvelopeError
from repro.geometry.segments import ImageSegment
from tests.conftest import random_image_segments

_JITTERS = (0.0, 0.0, 1e-9, -1e-9, 5e-10, 1e-12, 2e-9)


@st.composite
def adversarial_queries(draw, max_queries=6, allow_vertical=True):
    n = draw(st.integers(1, max_queries))
    out = []
    for i in range(n):
        y1 = draw(st.integers(0, 12)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        if allow_vertical and draw(st.booleans()) and i % 3 == 0:
            width = 0.0
        else:
            width = abs(
                draw(st.integers(0, 8)) * 0.5
                + draw(st.sampled_from(_JITTERS))
            )
        z1 = draw(st.integers(0, 8)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        z2 = draw(
            st.one_of(
                st.integers(0, 8).map(lambda k: k * 0.5),
                st.just(z1),
                st.sampled_from(_JITTERS).map(lambda j: z1 + j),
            )
        )
        out.append(ImageSegment(y1, z1, y1 + width, z2, 100 + i))
    return out


@st.composite
def adversarial_envelope(draw, max_segments=8):
    n = draw(st.integers(0, max_segments))
    segs = []
    for i in range(n):
        y1 = draw(st.integers(0, 12)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        width = draw(st.integers(1, 8)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        z1 = draw(st.integers(0, 8)) * 0.5 + draw(
            st.sampled_from(_JITTERS)
        )
        z2 = draw(st.integers(0, 8)) * 0.5
        segs.append(ImageSegment(y1, z1, y1 + abs(width), z2, i))
    return build_envelope(segs, engine="python").envelope


def assert_query_identical(got, ref) -> None:
    assert got.parts == ref.parts
    assert got.crossings == ref.crossings
    assert got.ops == ref.ops


class TestBatchParity:
    @given(adversarial_envelope(), adversarial_queries())
    @settings(max_examples=200, deadline=None)
    def test_adversarial(self, env, queries):
        res = batch_visible_parts(env, queries)
        for k, q in enumerate(queries):
            assert_query_identical(
                res.result_of(k), visible_parts(q, env)
            )

    @given(adversarial_envelope(), adversarial_queries())
    @settings(max_examples=50, deadline=None)
    def test_results_matches_result_of(self, env, queries):
        res = batch_visible_parts(env, queries)
        all_res = res.results()
        assert len(all_res) == len(queries)
        for k in range(len(queries)):
            assert all_res[k] == res.result_of(k)

    @pytest.mark.slow
    @given(
        adversarial_envelope(max_segments=24),
        adversarial_queries(max_queries=12),
    )
    @settings(max_examples=300, deadline=None)
    def test_adversarial_deep(self, env, queries):
        res = batch_visible_parts(env, queries)
        for k, q in enumerate(queries):
            assert_query_identical(
                res.result_of(k), visible_parts(q, env)
            )

    def test_random_large(self, rng):
        segs = random_image_segments(rng, 300)
        env = build_envelope(segs, engine="python").envelope
        queries = [
            ImageSegment(q.y1, q.z1, q.y2, q.z2, 1000 + i)
            for i, q in enumerate(random_image_segments(rng, 100))
        ]
        res = batch_visible_parts(
            FlatEnvelope.from_envelope(env), queries
        )
        for k, q in enumerate(queries):
            assert_query_identical(
                res.result_of(k), visible_parts(q, env)
            )

    def test_empty_envelope(self):
        res = batch_visible_parts(
            Envelope.empty(),
            [
                ImageSegment(0.0, 1.0, 4.0, 2.0, 0),
                ImageSegment(1.0, 0.0, 1.0, 3.0, 1),  # vertical
            ],
        )
        a = res.result_of(0)
        assert a.fully_visible and a.parts == [(0.0, 4.0)]
        assert a.ops == 1
        b = res.result_of(1)
        assert b.parts == [(1.0, 1.0)] and b.ops == 1

    def test_empty_queries(self):
        res = batch_visible_parts(Envelope.empty(), [])
        assert res.n_queries == 0 and len(res.part_query) == 0

    def test_single_query_wrapper(self, rng):
        segs = random_image_segments(rng, 40)
        env = build_envelope(segs, engine="python").envelope
        q = ImageSegment(10.0, 20.0, 80.0, 21.0, 999)
        assert_query_identical(
            visible_parts_flat(q, env), visible_parts(q, env)
        )


class TestGroupedParity:
    def test_stacked_groups(self, rng):
        envs, queries = [], []
        for g in range(40):
            n = rng.randint(0, 10)
            env = build_envelope(
                random_image_segments(rng, n), engine="python"
            ).envelope
            envs.append(FlatEnvelope.from_envelope(env))
            q = random_image_segments(rng, 1)[0]
            if g % 5 == 0:  # vertical point queries too
                q = ImageSegment(q.y1, q.z1, q.y1, q.z1 + 2.0, 900 + g)
            queries.append(q)
        res = batch_visible_parts(
            stack_envelopes(envs), queries, groups=np.arange(40)
        )
        for g in range(40):
            assert_query_identical(
                res.result_of(g),
                visible_parts(queries[g], envs[g].to_envelope()),
            )

    def test_negative_zero_boundary(self):
        # A piece starting at -0.0 queried up to +0.0: bisect treats
        # the zeros as equal, so the packed-key locate must too —
        # distinct order keys would shift the overlap range and break
        # exact ops parity (regression: multi-group path only).
        envs = [
            FlatEnvelope.from_envelope(
                build_envelope(
                    [ImageSegment(-0.0, 1.0, 5.0, 1.0, 0)],
                    engine="python",
                ).envelope
            ),
            FlatEnvelope.from_envelope(
                build_envelope(
                    [ImageSegment(0.0, 2.0, 3.0, 2.0, 1)],
                    engine="python",
                ).envelope
            ),
        ]
        queries = [
            ImageSegment(-3.0, 9.0, 0.0, 9.0, 100),
            ImageSegment(-1.0, 9.0, -0.0, 9.0, 101),
        ]
        res = batch_visible_parts(
            stack_envelopes(envs), queries, groups=np.array([0, 1])
        )
        for g in range(2):
            assert_query_identical(
                res.result_of(g),
                visible_parts(queries[g], envs[g].to_envelope()),
            )

    def test_group_validation(self):
        env = stack_envelopes([FlatEnvelope.empty()])
        seg = ImageSegment(0.0, 0.0, 1.0, 1.0, 0)
        with pytest.raises(EnvelopeError, match="length"):
            batch_visible_parts(env, [seg], groups=np.array([0, 0]))
        with pytest.raises(EnvelopeError, match="group-sorted"):
            batch_visible_parts(
                env, [seg, seg], groups=np.array([1, 0])
            )


class TestDispatch:
    def test_matches_both_sides_of_cutoff(self, rng, monkeypatch):
        segs = random_image_segments(rng, 200)
        env = build_envelope(segs, engine="python").envelope
        queries = random_image_segments(rng, 30) + [
            ImageSegment(50.0, 0.0, 50.0, 99.0, 998)  # vertical
        ]
        for cutoff in (1, 10**9):
            monkeypatch.setattr(
                engine_mod, "FLAT_VISIBILITY_CUTOFF", cutoff
            )
            for q in queries:
                ref = visible_parts(q, env)
                for engine in ("python", "numpy", None):
                    got = visibility_dispatch(q, env, engine=engine)
                    assert_query_identical(got, ref)


def _run_incremental_pair(segments, *, eps=None):
    """Run the python insert loop and the flat-profile loop over the
    same front-to-back sequence, asserting bit-exact agreement at
    every step; returns the final profiles."""
    from repro.envelope.flat_splice import (
        FlatProfile,
        insert_segment_flat,
    )
    from repro.envelope.splice import insert_segment
    from repro.geometry.primitives import EPS

    eps = EPS if eps is None else eps
    env = Envelope.empty()
    prof = FlatProfile.empty()
    for i, seg in enumerate(segments):
        ref = insert_segment(env, seg, eps=eps, engine="python")
        got = insert_segment_flat(prof, seg, eps=eps)
        assert_query_identical(got.visibility, ref.visibility)
        assert got.ops == ref.ops, f"step {i}: ops drift"
        env = ref.envelope
        prof = got.profile
        assert prof.to_envelope().pieces == env.pieces, (
            f"step {i}: profile drift"
        )
    return env, prof


class TestIncrementalRuns:
    """Full incremental (SequentialHSR-shaped) runs: the flat-native
    profile must replicate the reference insert loop bit for bit,
    including the vertical point queries and eps-scale near-ties the
    per-query suite above exercises."""

    @given(adversarial_queries(max_queries=12, allow_vertical=True))
    @settings(max_examples=200, deadline=None)
    def test_adversarial_inserts(self, segments):
        _run_incremental_pair(segments)

    @pytest.mark.slow
    @given(adversarial_queries(max_queries=20, allow_vertical=True))
    @settings(max_examples=300, deadline=None)
    def test_adversarial_inserts_deep(self, segments):
        _run_incremental_pair(segments)

    @given(adversarial_queries(max_queries=10, allow_vertical=True))
    @settings(max_examples=60, deadline=None)
    def test_adversarial_inserts_forced_flat_kernels(self, segments):
        # Force every window through the batched kernels (the
        # large-window dispatch arms) regardless of size.
        old_vis = engine_mod.FLAT_VISIBILITY_CUTOFF
        old_merge = engine_mod.FLAT_MERGE_CUTOFF
        engine_mod.FLAT_VISIBILITY_CUTOFF = 1
        engine_mod.FLAT_MERGE_CUTOFF = 1
        try:
            _run_incremental_pair(segments)
        finally:
            engine_mod.FLAT_VISIBILITY_CUTOFF = old_vis
            engine_mod.FLAT_MERGE_CUTOFF = old_merge

    def test_random_large_run(self, rng):
        segs = random_image_segments(rng, 400)
        # Sprinkle vertical edges through the sequence.
        segs = [
            ImageSegment(s.y1, s.z1, s.y1, s.z1 + 3.0, s.source)
            if i % 17 == 0
            else s
            for i, s in enumerate(segs)
        ]
        env, prof = _run_incremental_pair(segs)
        assert env.size > 0
        assert prof.size == env.size

    def test_hidden_and_vertical_share_profile(self, rng):
        # Hidden or vertical inserts must return the *same* profile
        # object (no splice performed) — mirroring insert_segment's
        # identity semantics.
        from repro.envelope.flat_splice import (
            FlatProfile,
            insert_segment_flat,
        )

        prof = insert_segment_flat(
            FlatProfile.empty(), ImageSegment(0.0, 10.0, 10.0, 10.0, 0)
        ).profile
        hidden = insert_segment_flat(
            prof, ImageSegment(2.0, 1.0, 8.0, 1.0, 1)
        )
        assert hidden.profile is prof
        assert hidden.visibility.fully_hidden
        vertical = insert_segment_flat(
            prof, ImageSegment(5.0, 0.0, 5.0, 99.0, 2)
        )
        assert vertical.profile is prof
        assert not vertical.visibility.fully_hidden


class TestSequentialThreading:
    def test_sequential_hsr_engine_parity(self, monkeypatch):
        from repro.hsr.sequential import SequentialHSR
        from repro.terrain.generators import fractal_terrain

        monkeypatch.setattr(engine_mod, "FLAT_VISIBILITY_CUTOFF", 1)
        terrain = fractal_terrain(size=9, seed=11)
        rp = SequentialHSR(engine="python").run(terrain)
        rn = SequentialHSR(engine="numpy").run(terrain)
        assert rp.stats.ops == rn.stats.ops
        assert rp.stats.k == rn.stats.k
        assert rp.visibility_map.segments == rn.visibility_map.segments
        assert rp.stats.extra == rn.stats.extra


class TestPhase2Threading:
    def test_direct_mode_engine_parity(self):
        from repro.hsr.pct import build_pct
        from repro.hsr.phase2 import run_phase2
        from repro.ordering.separator import SeparatorTree
        from repro.ordering.sweep import front_to_back_order
        from repro.terrain.generators import fractal_terrain

        terrain = fractal_terrain(size=9, seed=19)
        order = front_to_back_order(terrain)
        tree = SeparatorTree(order)
        segs = terrain.image_segments()
        pcts = {
            e: build_pct(tree, segs, engine=e)
            for e in ("python", "numpy")
        }
        rp = run_phase2(
            pcts["python"], segs, mode="direct", engine="python"
        )
        rn = run_phase2(
            pcts["numpy"], segs, mode="direct", engine="numpy"
        )
        assert rp.ops == rn.ops
        assert rp.crossings == rn.crossings
        assert set(rp.visibility) == set(rn.visibility)
        for e in rp.visibility:
            assert_query_identical(rn.visibility[e], rp.visibility[e])
        for la, lb in zip(rp.layers, rn.layers):
            assert (
                la.ops,
                la.crossings,
                la.merges,
                la.inherited_pieces,
            ) == (lb.ops, lb.crossings, lb.merges, lb.inherited_pieces)
