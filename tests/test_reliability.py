"""Fault-injection integration tests for the guarded dispatch layer.

The contract under test (ISSUE 6): with any named injection site armed
in guarded mode, the final visibility map, ``ops`` and
``max_profile_size`` are **bit-exact** with ``engine="python"`` on the
parity workloads — the fault is absorbed by the python-path retry and
shows up only in ``result.reliability``.  In strict mode
(``GUARDED_DISPATCH = False``) the same fault raises
:class:`~repro.errors.KernelFault` naming the site.
"""

from __future__ import annotations

import pytest

import repro.envelope.engine as engine_mod
from repro.errors import KernelFault
from repro.geometry.segments import ImageSegment
from repro.reliability import faultinject as fi
from repro.reliability import guard
from tests.conftest import random_image_segments


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    fi.clear()
    guard.reset_ambient()
    monkeypatch.setattr(guard, "GUARDED_DISPATCH", True)
    yield
    fi.clear()
    guard.reset_ambient()


def _fractal():
    from repro.terrain.generators import fractal_terrain

    return fractal_terrain(size=9, seed=23)


def _valley():
    from repro.terrain.generators import valley_terrain

    return valley_terrain(rows=9, cols=9, seed=7)


def _basin():
    from repro.bench.workloads import occlusion_suite

    return occlusion_suite((0.3, 1.2), rows=8, cols=8, seed=31)[0][1]


SUITES = [_fractal, _valley, _basin]


def _assert_sequential_parity(terrain, site, *, expect_record=True):
    """Numpy run under the armed plan vs an uninjected python run."""
    from repro.hsr.sequential import SequentialHSR

    rn = SequentialHSR(engine="numpy").run(terrain)
    with fi.suppressed():
        rp = SequentialHSR(engine="python").run(terrain)
    assert rn.stats.ops == rp.stats.ops
    assert rn.stats.k == rp.stats.k
    assert rn.stats.extra == rp.stats.extra
    assert rn.order == rp.order
    assert rn.visibility_map.segments == rp.visibility_map.segments
    if expect_record:
        assert rn.reliability is not None
        assert rn.reliability.sites[site].count >= 1
    return rn


class TestSequentialInjectionParity:
    """Default cutoffs: the scalar fused insert and the packed splice
    are the hot sites."""

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    @pytest.mark.parametrize("suite", SUITES, ids=["fractal", "valley", "basin"])
    def test_fused_insert(self, suite, mode):
        terrain = suite()
        with fi.inject("fused_insert", mode, nth=3) as plan:
            _assert_sequential_parity(terrain, "fused_insert")
        assert plan.fired >= 1

    @pytest.mark.parametrize("suite", SUITES, ids=["fractal", "valley", "basin"])
    def test_packed_splice_raise(self, suite):
        terrain = suite()
        with fi.inject("packed_splice", "raise", nth=5) as plan:
            _assert_sequential_parity(terrain, "packed_splice")
        assert plan.fired >= 1

    def test_uninjected_run_reports_clean(self):
        from repro.hsr.sequential import SequentialHSR

        res = SequentialHSR(engine="numpy").run(_fractal())
        assert res.reliability is not None
        assert not res.reliability.degraded


class TestForcedFlatInjectionParity:
    """Cutoffs forced to 1 — and the fused insert disabled — so the
    separate dispatch kernels (and their guards) run on every
    insert."""

    @pytest.fixture(autouse=True)
    def _force_flat(self, monkeypatch):
        import repro.envelope.flat_splice as flat_splice_mod

        monkeypatch.setattr(engine_mod, "FLAT_VISIBILITY_CUTOFF", 1)
        monkeypatch.setattr(engine_mod, "FLAT_MERGE_CUTOFF", 1)
        monkeypatch.setattr(flat_splice_mod, "USE_FUSED_INSERT", False)

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_merge_dispatch(self, mode):
        terrain = _valley()
        with fi.inject("merge_dispatch", mode, nth=2) as plan:
            _assert_sequential_parity(terrain, "merge_dispatch")
        assert plan.fired >= 1

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_visibility_dispatch(self, mode):
        terrain = _valley()
        with fi.inject("visibility_dispatch", mode, nth=2) as plan:
            _assert_sequential_parity(terrain, "visibility_dispatch")
        assert plan.fired >= 1


class TestStrictMode:
    @pytest.mark.parametrize(
        "site,mode",
        [("fused_insert", "raise"), ("fused_insert", "nan"),
         ("packed_splice", "raise")],
    )
    def test_strict_raises_naming_site(self, monkeypatch, site, mode):
        from repro.hsr.sequential import SequentialHSR

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        with fi.inject(site, mode, nth=3):
            with pytest.raises(KernelFault) as exc:
                SequentialHSR(engine="numpy").run(_fractal())
        assert exc.value.site == site

    def test_strict_merge_dispatch(self, monkeypatch):
        import repro.envelope.flat_splice as flat_splice_mod
        from repro.hsr.sequential import SequentialHSR

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        monkeypatch.setattr(engine_mod, "FLAT_MERGE_CUTOFF", 1)
        monkeypatch.setattr(engine_mod, "FLAT_VISIBILITY_CUTOFF", 1)
        monkeypatch.setattr(flat_splice_mod, "USE_FUSED_INSERT", False)
        with fi.inject("merge_dispatch", "raise", nth=2):
            with pytest.raises(KernelFault) as exc:
                SequentialHSR(engine="numpy").run(_valley())
        assert exc.value.site == "merge_dispatch"


class TestProfileTick:
    """The periodic whole-profile tick is detection-only: corruption of
    a *live* profile raises KernelFault in BOTH modes (degrading would
    hand back garbage)."""

    @pytest.mark.parametrize("mode", ["unsorted", "nan"])
    def test_guarded_mode_raises(self, mode):
        from repro.hsr.sequential import SequentialHSR

        with fi.inject("profile", mode, nth=10) as plan:
            with pytest.raises(KernelFault) as exc:
                SequentialHSR(engine="numpy").run(_fractal())
        assert exc.value.site == "profile"
        assert plan.fired == 1

    def test_strict_mode_raises(self, monkeypatch):
        from repro.hsr.sequential import SequentialHSR

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        with fi.inject("profile", "nan", nth=10):
            with pytest.raises(KernelFault) as exc:
                SequentialHSR(engine="numpy").run(_fractal())
        assert exc.value.site == "profile"


class TestCircuitBreaker:
    def test_repeat_plan_quarantines_and_stays_exact(self):
        with fi.inject("fused_insert", "raise", nth=1, repeat=True):
            res = _assert_sequential_parity(_fractal(), "fused_insert")
        rec = res.reliability.sites["fused_insert"]
        assert rec.quarantined
        # The breaker opened after FAULT_THRESHOLD faults; the rest of
        # the run routed straight to the python path, so the fault
        # count stays pinned at the threshold.
        assert rec.count == guard.FAULT_THRESHOLD
        assert res.reliability.quarantined_sites() == {"fused_insert"}

    def test_quarantine_does_not_leak_across_runs(self):
        from repro.hsr.sequential import SequentialHSR

        with fi.inject("fused_insert", "raise", nth=1, repeat=True):
            SequentialHSR(engine="numpy").run(_fractal())
        res = SequentialHSR(engine="numpy").run(_fractal())
        assert not res.reliability.degraded


class TestBuildSweep:
    """`build_envelope(engine="numpy")` is the batched build guard."""

    def _segments(self, rng):
        return random_image_segments(rng, 120)

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_guarded_recovers_bit_exact(self, rng, mode):
        from repro.envelope.build import build_envelope

        segs = self._segments(rng)
        rp = build_envelope(segs, engine="python")
        with fi.inject("build_sweep", mode) as plan:
            rn = build_envelope(segs, engine="numpy")
        assert plan.fired >= 1
        assert rn.envelope.pieces == rp.envelope.pieces
        assert rn.ops == rp.ops
        assert rn.crossings == rp.crossings
        assert guard.current_report().sites["build_sweep"].count >= 1

    def test_strict_raises(self, rng, monkeypatch):
        from repro.envelope.build import build_envelope

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        with fi.inject("build_sweep", "raise"):
            with pytest.raises(KernelFault) as exc:
                build_envelope(self._segments(rng), engine="numpy")
        assert exc.value.site == "build_sweep"


class TestPhase2Injection:
    """Direct-mode phase 2 batches its merges and visibility queries —
    the two ``phase2_*`` guard sites."""

    def _assert_parallel_parity(self, site):
        from repro.hsr.parallel import ParallelHSR

        terrain = _valley()
        rn = ParallelHSR(mode="direct", engine="numpy").run(terrain)
        with fi.suppressed():
            rp = ParallelHSR(mode="direct", engine="python").run(terrain)
        assert rn.stats.ops == rp.stats.ops
        assert rn.stats.k == rp.stats.k
        assert rn.stats.extra == rp.stats.extra
        assert rn.order == rp.order
        assert rn.visibility_map.segments == rp.visibility_map.segments
        assert rn.reliability.sites[site].count >= 1
        return rn

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_phase2_merge(self, mode):
        with fi.inject("phase2_merge", mode) as plan:
            self._assert_parallel_parity("phase2_merge")
        assert plan.fired >= 1

    @pytest.mark.parametrize("mode", ["raise", "unsorted", "nan"])
    def test_phase2_visibility(self, mode):
        with fi.inject("phase2_visibility", mode) as plan:
            self._assert_parallel_parity("phase2_visibility")
        assert plan.fired >= 1

    def test_phase2_strict_raises(self, monkeypatch):
        from repro.hsr.parallel import ParallelHSR

        monkeypatch.setattr(guard, "GUARDED_DISPATCH", False)
        with fi.inject("phase2_merge", "raise"):
            with pytest.raises(KernelFault) as exc:
                ParallelHSR(mode="direct", engine="numpy").run(_valley())
        assert exc.value.site == "phase2_merge"


class TestEnvDrivenInjection:
    def test_env_spec_installs_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fused_insert:raise:2")
        plan = fi.configure_from_env()
        assert plan is not None and plan.site == "fused_insert"
        _assert_sequential_parity(_fractal(), "fused_insert")
        assert plan.fired == 1
