"""Tests for :mod:`repro.service` — sessions, cache, and the server.

Pins the service contract: coalesced batches are bit-exact with
sequential queries, the envelope cache hits on regenerated identical
terrains (content hash, not object identity), and the asyncio server
actually coalesces concurrent clients into single kernel launches.
"""

from __future__ import annotations

import asyncio
import json

import pytest

np = pytest.importorskip("numpy")

from repro.config import HsrConfig
from repro.service import (
    EnvelopeCache,
    ViewshedServer,
    ViewshedSession,
    terrain_fingerprint,
)


def _fractal(seed=3):
    from repro.terrain.generators import fractal_terrain

    return fractal_terrain(size=9, seed=seed)


def _query_segments(terrain, count=60):
    """Deterministic probe segments spanning the terrain's y-range."""
    ys = [s.y1 for s in terrain.image_segments()] + [
        s.y2 for s in terrain.image_segments()
    ]
    lo, hi = min(ys), max(ys)
    span = hi - lo
    out = []
    for i in range(count):
        a = lo + span * (i / count)
        b = a + span / 7.0
        z = -5.0 + 20.0 * ((i * 37) % count) / count
        out.append((a, z, b, z + (i % 5) - 2.0))
    return out


class TestFingerprint:
    def test_stable_across_regeneration(self):
        assert terrain_fingerprint(_fractal()) == terrain_fingerprint(
            _fractal()
        )

    def test_distinguishes_terrains(self):
        assert terrain_fingerprint(_fractal(seed=1)) != terrain_fingerprint(
            _fractal(seed=2)
        )


class TestEnvelopeCache:
    def test_hit_miss_counters(self):
        cache = EnvelopeCache()
        assert cache.lookup(("k",)) is None
        cache.store(("k",), "env")
        assert cache.lookup(("k",)) == "env"
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_lru_eviction(self):
        cache = EnvelopeCache(maxsize=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.lookup(("a",))  # refresh a
        cache.store(("c",), 3)  # evicts b
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == 1
        assert cache.lookup(("c",)) == 3


class TestSessionQueries:
    @pytest.fixture
    def terrain(self):
        return _fractal()

    def test_batch_matches_sequential(self, terrain):
        segs = _query_segments(terrain)
        seq = ViewshedSession(terrain, cache=EnvelopeCache())
        bat = ViewshedSession(terrain, cache=EnvelopeCache())
        one_by_one = [seq.query(s) for s in segs]
        batched = bat.query_batch(segs)
        assert len(batched) == len(one_by_one)
        for a, b in zip(batched, one_by_one):
            assert a.parts == b.parts
            assert a.ops == b.ops
        assert bat.stats["batches"] == 1
        assert bat.stats["batched_queries"] == len(segs)

    def test_python_engine_batch_parity(self, terrain):
        segs = _query_segments(terrain, count=20)
        py = ViewshedSession(
            terrain,
            config=HsrConfig(engine="python"),
            cache=EnvelopeCache(),
        )
        npx = ViewshedSession(terrain, cache=EnvelopeCache())
        for a, b in zip(py.query_batch(segs), npx.query_batch(segs)):
            assert a.parts == b.parts

    def test_empty_batch(self, terrain):
        session = ViewshedSession(terrain, cache=EnvelopeCache())
        assert session.query_batch([]) == []

    def test_cache_hit_on_identical_terrain(self):
        cache = EnvelopeCache()
        s1 = ViewshedSession(_fractal(), cache=cache)
        s1.envelope()
        s2 = ViewshedSession(_fractal(), cache=cache)  # regenerated
        s2.envelope()
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_cache_miss_on_different_eps(self):
        cache = EnvelopeCache()
        ViewshedSession(_fractal(), cache=cache).envelope()
        ViewshedSession(
            _fractal(), config=HsrConfig(eps=1e-6), cache=cache
        ).envelope()
        assert cache.stats()["misses"] == 2

    def test_point_queries_match_reference(self, terrain):
        from repro.hsr.queries import point_visible

        pts = [
            (float(x), float(y), float(z))
            for x in (2.0, 8.0)
            for y in (1.0, 5.0, 9.0)
            for z in (-10.0, 2.0, 50.0)
        ]
        session = ViewshedSession(terrain, cache=EnvelopeCache())
        batched = session.points_visible(pts)
        assert batched == [point_visible(terrain, p) for p in pts]
        assert any(batched) and not all(batched)


class TestVisibleManyParity:
    def test_numpy_matches_scalar(self):
        from repro.hsr.queries import point_visible, visible_many

        terrain = _fractal(seed=11)
        rng = np.random.default_rng(42)
        pts = [tuple(map(float, row)) for row in rng.uniform(-2, 12, (300, 3))]
        # on-surface observers too (exercise the eps boundary)
        pts += [(v.x, v.y, v.z) for v in terrain.vertices[:40]]
        vec = visible_many(terrain, pts)
        ref = [point_visible(terrain, p) for p in pts]
        py = visible_many(terrain, pts, config=HsrConfig(engine="python"))
        assert vec == ref == py


class TestServerCoalescing:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_queries_coalesce(self):
        terrain = _fractal()
        segs = _query_segments(terrain, count=20)
        session = ViewshedSession(terrain, cache=EnvelopeCache())
        expected = [session.query(s) for s in segs]

        async def scenario():
            server = ViewshedServer(session, coalesce_ms=20.0)
            host, port = await server.start(port=0)

            async def client(seg):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    json.dumps({"op": "query", "segment": list(seg)}).encode()
                    + b"\n"
                )
                await writer.drain()
                resp = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                return resp

            resps = await asyncio.gather(*(client(s) for s in segs))
            stats = server.stats
            await server.stop()
            return resps, stats

        resps, stats = self._run(scenario())
        for resp, exp in zip(resps, expected):
            assert resp["ok"]
            assert resp["parts"] == [[p.ya, p.yb] for p in exp.parts]
            assert resp["ops"] == exp.ops
        assert stats["coalesced"] == len(segs)
        assert stats["batches"] < len(segs)  # genuinely coalesced

    def test_request_ops(self):
        terrain = _fractal()
        session = ViewshedSession(terrain, cache=EnvelopeCache())

        async def scenario():
            server = ViewshedServer(session, coalesce_ms=0.0)
            await server.start(port=0)
            ping = await server.handle_request({"op": "ping"})
            stats = await server.handle_request({"op": "stats"})
            pts = await server.handle_request(
                {"op": "points", "points": [[2.0, 5.0, 50.0], [2.0, 5.0, -50.0]]}
            )
            bad_op = await server.handle_request({"op": "nope"})
            bad_seg = await server.handle_request(
                {"op": "query", "segment": [1.0]}
            )
            await server.stop()
            return ping, stats, pts, bad_op, bad_seg

        ping, stats, pts, bad_op, bad_seg = self._run(scenario())
        assert ping == {"ok": True, "pong": True}
        assert stats["ok"] and stats["terrain"] == session.fingerprint
        assert pts == {"ok": True, "visible": [True, False]}
        assert not bad_op["ok"] and "unknown op" in bad_op["error"]
        assert not bad_seg["ok"]

    def test_max_batch_splits_launches(self):
        terrain = _fractal()
        segs = _query_segments(terrain, count=12)
        session = ViewshedSession(terrain, cache=EnvelopeCache())

        async def scenario():
            server = ViewshedServer(session, max_batch=4, coalesce_ms=20.0)
            await server.start(port=0)
            results = await asyncio.gather(
                *(server._enqueue_query(s) for s in segs)
            )
            stats = dict(server.stats)
            await server.stop()
            return results, stats

        results, stats = self._run(scenario())
        assert len(results) == len(segs)
        assert stats["batches"] >= 3  # 12 queries / max_batch 4
        expected = [session.query(s) for s in segs]
        for got, exp in zip(results, expected):
            assert got.parts == exp.parts
