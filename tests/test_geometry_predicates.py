"""Tests for exact geometric predicates."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.predicates import (
    incircle_exact,
    orient2d_adaptive,
    orient2d_exact,
    point_on_segment_exact,
    polygon_signed_area,
    segments_intersect_exact,
)
from repro.geometry.primitives import Point2


class TestOrientExact:
    def test_basic_signs(self):
        o, a = Point2(0, 0), Point2(1, 0)
        assert orient2d_exact(o, a, Point2(1, 1)) == 1
        assert orient2d_exact(o, a, Point2(1, -1)) == -1
        assert orient2d_exact(o, a, Point2(2, 0)) == 0

    def test_near_degenerate_decided_exactly(self):
        # Points nearly collinear at double-precision noise level: the
        # exact predicate must see through the rounding.
        o = Point2(0.0, 0.0)
        a = Point2(1e16, 1e16)
        b = Point2(1e16 + 1, 1e16 + 2)  # strictly above the diagonal
        assert orient2d_exact(o, a, b) == 1

    def test_exactly_collinear_with_float_noise(self):
        # 0.1 is not representable; tripling it stays on the exact
        # line through the stored doubles only if computed exactly.
        o = Point2(0.0, 0.0)
        a = Point2(0.1, 0.1)
        b = Point2(0.3, 0.3)
        # The stored 0.3 is NOT exactly 3*stored(0.1): sign is decided
        # by the exact arithmetic either way — it just must be stable.
        s1 = orient2d_exact(o, a, b)
        s2 = orient2d_exact(o, a, b)
        assert s1 == s2

    @given(
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
    )
    @settings(max_examples=200, deadline=None)
    def test_adaptive_matches_exact(self, o, a, b):
        po, pa, pb = Point2(*map(float, o)), Point2(*map(float, a)), Point2(
            *map(float, b)
        )
        assert orient2d_adaptive(po, pa, pb) == orient2d_exact(po, pa, pb)

    def test_antisymmetry(self):
        rng = random.Random(1)
        for _ in range(100):
            pts = [
                Point2(rng.uniform(-10, 10), rng.uniform(-10, 10))
                for _ in range(3)
            ]
            assert orient2d_exact(*pts) == -orient2d_exact(
                pts[0], pts[2], pts[1]
            )


class TestIncircle:
    def test_inside(self):
        a, b, c = Point2(0, 0), Point2(2, 0), Point2(0, 2)
        assert incircle_exact(a, b, c, Point2(0.5, 0.5)) == 1

    def test_outside(self):
        a, b, c = Point2(0, 0), Point2(2, 0), Point2(0, 2)
        assert incircle_exact(a, b, c, Point2(5, 5)) == -1

    def test_on_circle(self):
        a, b, c = Point2(0, 0), Point2(2, 0), Point2(0, 2)
        assert incircle_exact(a, b, c, Point2(2, 2)) == 0

    def test_orientation_independent(self):
        a, b, c = Point2(0, 0), Point2(2, 0), Point2(0, 2)
        d = Point2(0.5, 0.5)
        assert incircle_exact(a, b, c, d) == incircle_exact(a, c, b, d)

    def test_degenerate_triangle(self):
        a, b, c = Point2(0, 0), Point2(1, 1), Point2(2, 2)
        assert incircle_exact(a, b, c, Point2(5, 0)) == 0


class TestSegmentsIntersect:
    def test_proper_cross(self):
        assert segments_intersect_exact(
            Point2(0, 0), Point2(2, 2), Point2(0, 2), Point2(2, 0)
        )
        assert segments_intersect_exact(
            Point2(0, 0),
            Point2(2, 2),
            Point2(0, 2),
            Point2(2, 0),
            proper_only=True,
        )

    def test_endpoint_touch_not_proper(self):
        a = (Point2(0, 0), Point2(1, 1))
        b = (Point2(1, 1), Point2(2, 0))
        assert segments_intersect_exact(*a, *b)
        assert not segments_intersect_exact(*a, *b, proper_only=True)

    def test_collinear_overlap(self):
        assert segments_intersect_exact(
            Point2(0, 0), Point2(2, 0), Point2(1, 0), Point2(3, 0)
        )
        assert not segments_intersect_exact(
            Point2(0, 0), Point2(1, 0), Point2(2, 0), Point2(3, 0)
        )

    def test_disjoint(self):
        assert not segments_intersect_exact(
            Point2(0, 0), Point2(1, 0), Point2(0, 1), Point2(1, 1)
        )

    def test_t_junction(self):
        assert segments_intersect_exact(
            Point2(0, 0), Point2(2, 0), Point2(1, 0), Point2(1, 5)
        )


class TestPointOnSegment:
    def test_on(self):
        assert point_on_segment_exact(
            Point2(1, 1), Point2(0, 0), Point2(2, 2)
        )

    def test_endpoint(self):
        assert point_on_segment_exact(
            Point2(0, 0), Point2(0, 0), Point2(2, 2)
        )

    def test_on_line_beyond(self):
        assert not point_on_segment_exact(
            Point2(3, 3), Point2(0, 0), Point2(2, 2)
        )

    def test_off_line(self):
        assert not point_on_segment_exact(
            Point2(1, 2), Point2(0, 0), Point2(2, 2)
        )


class TestPolygonArea:
    def test_ccw_square(self):
        sq = [Point2(0, 0), Point2(1, 0), Point2(1, 1), Point2(0, 1)]
        assert polygon_signed_area(sq) == 1.0
        assert polygon_signed_area(sq[::-1]) == -1.0

    def test_degenerate(self):
        assert polygon_signed_area([Point2(0, 0), Point2(1, 1)]) == 0.0
