"""Tests for localised envelope insertion (sequential-algorithm core)."""

from __future__ import annotations

from repro.envelope.build import build_envelope
from repro.envelope.chain import Envelope
from repro.envelope.splice import insert_segment
from repro.geometry.segments import ImageSegment
from tests.conftest import random_image_segments


class TestInsertSegment:
    def test_insert_into_empty(self):
        seg = ImageSegment(0, 1, 5, 2, 0)
        res = insert_segment(Envelope.empty(), seg)
        assert res.envelope.size == 1
        assert res.visibility.fully_visible

    def test_hidden_leaves_envelope_unchanged(self):
        base = Envelope.from_segment(ImageSegment(0, 10, 10, 10, 0))
        seg = ImageSegment(2, 1, 8, 1, 1)
        res = insert_segment(base, seg)
        assert res.envelope is base  # identity: no splice performed
        assert res.visibility.fully_hidden

    def test_vertical_never_splices(self):
        base = Envelope.from_segment(ImageSegment(0, 1, 10, 1, 0))
        seg = ImageSegment(5, 0, 5, 9, 1)
        res = insert_segment(base, seg)
        assert res.envelope is base
        assert not res.visibility.fully_hidden

    def test_incremental_matches_batch_merge(self, rng):
        for _ in range(15):
            segs = random_image_segments(rng, rng.randint(2, 25))
            env = Envelope.empty()
            for s in segs:
                env = insert_segment(env, s).envelope
            want = build_envelope(segs).envelope
            assert env.approx_equal(want, eps=1e-7)

    def test_visibility_matches_direct_query(self, rng):
        from repro.envelope.visibility import visible_parts

        segs = random_image_segments(rng, 20)
        env = Envelope.empty()
        for s in segs:
            direct = visible_parts(s, env)
            res = insert_segment(env, s)
            assert len(direct.parts) == len(res.visibility.parts)
            env = res.envelope

    def test_splice_is_local(self, rng):
        # Pieces far from the inserted segment's span must be reused
        # by identity (no copying outside the splice range).
        segs = random_image_segments(rng, 40, y_range=(0.0, 1000.0))
        env = build_envelope(segs).envelope
        narrow = ImageSegment(495.0, 1e6, 505.0, 1e6, 777)
        res = insert_segment(env, narrow)
        old_ids = {id(p) for p in env.pieces}
        reused = sum(1 for p in res.envelope.pieces if id(p) in old_ids)
        assert reused >= env.size - 6

    def test_ops_accounting(self, rng):
        segs = random_image_segments(rng, 10)
        env = build_envelope(segs).envelope
        res = insert_segment(env, ImageSegment(20, 100, 30, 100, 50))
        assert res.ops >= 1
