"""Tests for front-to-back ordering and the separator tree."""

from __future__ import annotations

import math

import pytest

from repro.errors import OrderingError
from repro.geometry.primitives import Point3
from repro.geometry.segments import MapSegment
from repro.ordering.separator import SeparatorTree
from repro.ordering.sweep import (
    front_to_back_order,
    in_front_comparison,
    order_constraints,
)
from repro.terrain.generators import (
    fractal_terrain,
    random_terrain,
    valley_terrain,
)
from repro.terrain.model import Terrain


class TestInFrontComparison:
    def test_clear_order(self):
        a = MapSegment(10.0, 0.0, 10.0, 5.0, 0)  # vertical at x=10
        b = MapSegment(1.0, 0.0, 1.0, 5.0, 1)
        assert in_front_comparison(a, b) == 1
        assert in_front_comparison(b, a) == -1

    def test_no_overlap(self):
        a = MapSegment(0.0, 0.0, 1.0, 1.0, 0)
        b = MapSegment(5.0, 2.0, 6.0, 3.0, 1)
        assert in_front_comparison(a, b) == 0

    def test_touching_endpoints_no_constraint(self):
        a = MapSegment(0.0, 0.0, 1.0, 1.0, 0)
        b = MapSegment(9.0, 1.0, 9.0, 2.0, 1)
        assert in_front_comparison(a, b) == 0

    def test_shared_vertex_divergent(self):
        # Both start at the same map point, diverge in x.
        a = MapSegment(0.0, 0.0, 5.0, 10.0, 0)
        b = MapSegment(0.0, 0.0, -5.0, 10.0, 1)
        assert in_front_comparison(a, b) == 1


class TestOrderCorrectness:
    def _assert_valid_order(self, terrain: Terrain, order: list[int]):
        """Every in-front pair must appear in front-to-back order."""
        pos = {e: i for i, e in enumerate(order)}
        segs = terrain.map_segments()
        n = len(segs)
        for a in range(n):
            for b in range(a + 1, n):
                c = in_front_comparison(segs[a], segs[b])
                if c == 1:
                    assert pos[a] < pos[b], (
                        f"edge {a} is in front of {b} but ordered later"
                    )
                elif c == -1:
                    assert pos[b] < pos[a], (
                        f"edge {b} is in front of {a} but ordered later"
                    )

    def test_permutation(self):
        t = fractal_terrain(size=9, seed=1)
        order = front_to_back_order(t)
        assert sorted(order) == list(range(t.n_edges))

    def test_valid_on_fractal(self):
        t = fractal_terrain(size=5, seed=2)
        self._assert_valid_order(t, front_to_back_order(t))

    def test_valid_on_valley(self):
        t = valley_terrain(rows=6, cols=6, seed=3)
        self._assert_valid_order(t, front_to_back_order(t))

    def test_valid_on_random_delaunay(self):
        t = random_terrain(n_points=40, seed=4)
        self._assert_valid_order(t, front_to_back_order(t))

    def test_deterministic(self):
        t = fractal_terrain(size=9, seed=5)
        assert front_to_back_order(t) == front_to_back_order(t)

    def test_handles_horizontal_map_edges(self):
        # Exact lattice (no jitter): many edges with constant sweep y.
        import numpy as np

        from repro.terrain.generators import grid_terrain_from_heights

        t = grid_terrain_from_heights(
            np.arange(16, dtype=float).reshape(4, 4), jitter_seed=None
        )
        order = front_to_back_order(t)
        assert sorted(order) == list(range(t.n_edges))

    def test_constraint_count_linear(self):
        t = fractal_terrain(size=17, seed=6)
        cons = order_constraints(t.map_segments())
        assert len(cons) <= 3 * t.n_edges

    def test_cycle_detection(self):
        # Fabricated constraint cycle via three mutually-overlapping
        # crossing segments (invalid as terrain projections).
        segs = [
            MapSegment(0.0, 0.0, 10.0, 10.0, 0),
            MapSegment(10.0, 0.0, 0.0, 10.0, 1),
            MapSegment(5.0, -1.0, 5.5, 11.0, 2),
        ]
        # These cross, so the sweep's status order is inconsistent —
        # either an OrderingError is raised or the output is still a
        # permutation (crossings break the in-front premise, both
        # behaviours are acceptable; what must never happen is a hang
        # or a wrong-length result silently).
        verts = [Point3(0, 0, 0)]
        t = Terrain(verts, [], validate=False)
        try:
            order = front_to_back_order(t, segments=segs)
            assert sorted(order) == [0, 1, 2]
        except OrderingError:
            pass


class TestSeparatorTree:
    def test_structure(self):
        tree = SeparatorTree(list(range(10)))
        assert tree.n_leaves == 10
        assert tree.root.span == 10
        assert len(tree.leaves()) == 10
        assert tree.height == math.ceil(math.log2(10)) + 1

    def test_leaf_order(self):
        order = [4, 2, 7, 1]
        tree = SeparatorTree(order)
        leaves = sorted(tree.leaves(), key=lambda n: n.lo)
        assert [tree.leaf_edge(n) for n in leaves] == order

    def test_levels_partition(self):
        tree = SeparatorTree(list(range(13)))
        seen = set()
        for level in tree.levels():
            for node in level:
                assert node.index not in seen
                seen.add(node.index)
        assert len(seen) == tree.node_count()

    def test_children_partition_parent(self):
        tree = SeparatorTree(list(range(23)))
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.left.lo == node.lo
                assert node.left.hi == node.right.lo
                assert node.right.hi == node.hi
                assert node.left.parent is node

    def test_bottom_up_is_reverse(self):
        tree = SeparatorTree(list(range(8)))
        down = [lvl[0].depth for lvl in tree.levels()]
        up = [lvl[0].depth for lvl in tree.levels_bottom_up()]
        assert up == down[::-1]

    def test_leaf_edge_on_internal_raises(self):
        tree = SeparatorTree(list(range(4)))
        with pytest.raises(OrderingError):
            tree.leaf_edge(tree.root)

    def test_empty_rejected(self):
        with pytest.raises(OrderingError):
            SeparatorTree([])

    def test_height_logarithmic(self):
        for n in (2, 17, 100, 1000):
            tree = SeparatorTree(list(range(n)))
            assert tree.height <= math.ceil(math.log2(n)) + 1
