"""Hypothesis property suite for :mod:`repro.terrain.generators`
(ISSUE 9 satellite).

Three properties over every generator family:

* the output always passes the reliability front door
  (:func:`repro.reliability.validate_terrain`),
* generation is a pure function of its parameters (same seed, same
  terrain — vertex-for-vertex),
* degenerate parameter corners (``size=1``, ``roughness=0``, minimal
  grids) either produce a valid terrain or raise a clean
  :class:`~repro.errors.TerrainError` — never an uncaught crash.

``max_examples`` is kept small and ``deadline=None``: generating and
validating a terrain is milliseconds-to-tens-of-milliseconds, and the
point is parameter-space coverage, not volume.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TerrainError
from repro.reliability import validate_terrain
from repro.terrain.generators import (
    GENERATORS,
    fractal_terrain,
    generate_terrain,
)

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)
GRID_DIMS = st.integers(min_value=2, max_value=12)
FRACTAL_SIZES = st.sampled_from([3, 5, 9, 17])


def _params_for(kind: str, data) -> dict:
    if kind == "fractal":
        return {
            "size": data.draw(FRACTAL_SIZES, label="size"),
            "roughness": data.draw(
                st.floats(0.0, 1.0, allow_nan=False), label="roughness"
            ),
        }
    if kind == "random":
        return {
            "n_points": data.draw(
                st.integers(min_value=3, max_value=40), label="n_points"
            )
        }
    params = {
        "rows": data.draw(GRID_DIMS, label="rows"),
        "cols": data.draw(GRID_DIMS, label="cols"),
    }
    if kind == "shielded_basin":
        params["occlusion"] = data.draw(
            st.floats(0.0, 2.0, allow_nan=False), label="occlusion"
        )
    return params


@pytest.mark.parametrize("kind", sorted(GENERATORS))
class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), seed=SEEDS)
    def test_output_passes_front_door(self, kind, data, seed):
        terrain = generate_terrain(
            kind, seed=seed, **_params_for(kind, data)
        )
        validate_terrain(terrain)
        assert terrain.n_edges > 0

    @settings(max_examples=10, deadline=None)
    @given(data=st.data(), seed=SEEDS)
    def test_deterministic_per_seed(self, kind, data, seed):
        params = _params_for(kind, data)
        a = generate_terrain(kind, seed=seed, **params)
        b = generate_terrain(kind, seed=seed, **params)
        assert a.vertices == b.vertices
        assert a.faces == b.faces

    @settings(max_examples=10, deadline=None)
    @given(data=st.data(), seed=SEEDS)
    def test_different_seeds_differ(self, kind, data, seed):
        # Not a strict requirement per-family, but heights are random
        # in every family, so distinct seeds must not collapse to one
        # terrain (would mean the seed is ignored).
        params = _params_for(kind, data)
        a = generate_terrain(kind, seed=seed, **params)
        b = generate_terrain(kind, seed=seed + 1, **params)
        assert a.vertices != b.vertices


class TestDegenerateParameters:
    """Corner parameters must fail clean (TerrainError) or succeed
    valid — an uncaught IndexError/ZeroDivisionError is a bug."""

    @pytest.mark.parametrize("size", [0, 1, 2, 4, 6])
    def test_fractal_bad_sizes_raise_terrain_error(self, size):
        with pytest.raises(TerrainError, match="2\\*\\*k\\+1"):
            fractal_terrain(size=size, seed=0)

    def test_fractal_roughness_zero(self):
        # roughness=0: displacement scale collapses after one level —
        # still a valid (very smooth) terrain.
        validate_terrain(fractal_terrain(size=9, roughness=0.0, seed=5))

    def test_fractal_smallest_valid_size(self):
        validate_terrain(fractal_terrain(size=3, seed=1))

    @pytest.mark.parametrize(
        "kind", ["ridge", "valley", "plateau", "shielded_basin"]
    )
    def test_grid_families_minimal_grid(self, kind):
        validate_terrain(
            generate_terrain(kind, rows=2, cols=2, seed=3)
        )

    @pytest.mark.parametrize("kind", sorted(set(GENERATORS) - {"random"}))
    def test_degenerate_grid_1x1_fails_clean(self, kind):
        params = (
            {"size": 1} if kind == "fractal" else {"rows": 1, "cols": 1}
        )
        with pytest.raises(TerrainError):
            generate_terrain(kind, seed=0, **params)

    def test_random_too_few_points_fails_clean(self):
        with pytest.raises(TerrainError, match="at least 3"):
            generate_terrain("random", n_points=2, seed=0)

    def test_shielded_basin_occlusion_zero(self):
        validate_terrain(
            generate_terrain(
                "shielded_basin", rows=6, cols=6, occlusion=0.0, seed=7
            )
        )

    def test_unknown_kind_fails_clean(self):
        with pytest.raises(TerrainError, match="unknown"):
            generate_terrain("atlantis", seed=0)
