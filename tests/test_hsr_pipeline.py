"""Integration tests: all HSR algorithms agree on all workload families.

This is the central correctness statement of the reproduction — the
parallel algorithm (in each of its three Phase-2 engines) must produce
the identical visibility map to the incremental sequential algorithm
and the Θ(n²) brute-force baseline.
"""

from __future__ import annotations

import math

import pytest

from repro.hsr.naive import NaiveHSR
from repro.hsr.parallel import ParallelHSR
from repro.hsr.phase2 import PHASE2_MODES
from repro.hsr.sequential import SequentialHSR
from repro.ordering.sweep import front_to_back_order
from repro.pram.tracker import PramTracker
from repro.terrain.generators import (
    fractal_terrain,
    plateau_terrain,
    random_terrain,
    ridge_terrain,
    shielded_basin_terrain,
    valley_terrain,
)

FAMILIES = [
    ("fractal", lambda: fractal_terrain(size=9, seed=11)),
    ("ridge", lambda: ridge_terrain(rows=9, cols=9, seed=12)),
    ("valley", lambda: valley_terrain(rows=9, cols=9, seed=13)),
    (
        "basin-open",
        lambda: shielded_basin_terrain(rows=9, cols=9, occlusion=0.0, seed=14),
    ),
    (
        "basin-shut",
        lambda: shielded_basin_terrain(rows=9, cols=9, occlusion=1.5, seed=15),
    ),
    ("plateau", lambda: plateau_terrain(rows=9, cols=9, seed=16)),
    ("random", lambda: random_terrain(n_points=50, seed=17)),
]


@pytest.fixture(scope="module", params=FAMILIES, ids=[f[0] for f in FAMILIES])
def family(request):
    name, make = request.param
    terrain = make()
    seq = SequentialHSR().run(terrain)
    return name, terrain, seq


class TestAgreement:
    def test_sequential_vs_naive(self, family):
        _, terrain, seq = family
        naive = NaiveHSR().run(terrain)
        assert seq.visibility_map.approx_same(
            naive.visibility_map, tol=1e-6
        ), "\n".join(
            seq.visibility_map.difference_report(naive.visibility_map)[:5]
        )

    @pytest.mark.parametrize("mode", PHASE2_MODES)
    def test_parallel_vs_sequential(self, family, mode):
        _, terrain, seq = family
        par = ParallelHSR(mode=mode).run(terrain)
        assert par.visibility_map.approx_same(
            seq.visibility_map, tol=1e-6
        ), "\n".join(
            par.visibility_map.difference_report(seq.visibility_map)[:5]
        )

    def test_k_matches(self, family):
        _, terrain, seq = family
        par = ParallelHSR().run(terrain)
        assert par.k == seq.k


class TestOrderIndependence:
    def test_any_valid_order_same_output(self):
        # The visibility map must not depend on which linear extension
        # of the in-front order is used: reversing tie-breaks by
        # passing the order reversed-stable is not valid, but two runs
        # over rotated terrains that realign must agree.
        t = fractal_terrain(size=9, seed=21)
        order = front_to_back_order(t)
        seq1 = SequentialHSR().run(t, order=order)
        seq2 = SequentialHSR().run(t)  # recomputed order
        assert seq1.visibility_map.approx_same(seq2.visibility_map)

    def test_shared_order_across_algorithms(self):
        t = valley_terrain(rows=8, cols=8, seed=22)
        order = front_to_back_order(t)
        a = SequentialHSR().run(t, order=order)
        b = ParallelHSR().run(t, order=order)
        assert a.visibility_map.approx_same(b.visibility_map)


class TestStructuralInvariants:
    def test_front_edge_always_fully_visible(self, family):
        """The front-most edge in the order can never be occluded."""
        _, terrain, seq = family
        first = seq.order[0]
        intervals = seq.visibility_map.edge_intervals(first)
        seg = terrain.image_segment(first)
        assert intervals, "front edge must be visible"
        if not seg.is_vertical:
            total = sum(b - a for a, b in intervals)
            assert total == pytest.approx(seg.y2 - seg.y1, abs=1e-9)

    def test_visible_parts_within_projection(self, family):
        _, terrain, seq = family
        for e in seq.visibility_map.visible_edges():
            seg = terrain.image_segment(e)
            for (a, b) in seq.visibility_map.edge_intervals(e):
                assert seg.y1 - 1e-9 <= a <= b <= seg.y2 + 1e-9

    def test_k_at_least_visible_edges(self, family):
        _, _, seq = family
        assert seq.k >= len(seq.visibility_map.visible_edges())

    def test_horizon_edges_visible(self, family):
        """Every edge contributing to the final profile (the horizon)
        must have a visible portion."""
        _, terrain, seq = family
        horizon = SequentialHSR().final_profile(terrain)
        visible = seq.visibility_map.visible_edges()
        for src in horizon.sources():
            assert src in visible, f"horizon edge {src} reported hidden"


class TestTrackerIntegration:
    def test_work_depth_positive_and_consistent(self):
        t = fractal_terrain(size=9, seed=31)
        tracker = PramTracker()
        ParallelHSR().run(t, tracker=tracker)
        assert tracker.work > t.n_edges
        assert 0 < tracker.depth < tracker.work
        # Phase records cover ordering + phase1 + phase2.
        names = [p.name for p in tracker.phases]
        assert names == ["ordering", "phase1", "phase2"]

    def test_depth_polylog_bound(self):
        # Generous constant: depth within 6·log^4(n) for small n.
        t = fractal_terrain(size=17, seed=32)
        tracker = PramTracker()
        ParallelHSR().run(t, tracker=tracker)
        n = t.n_edges
        assert tracker.depth <= 6.0 * math.log2(n) ** 4

    def test_mode_invalid(self):
        with pytest.raises(ValueError):
            ParallelHSR(mode="quantum")


class TestRotatedViews:
    @pytest.mark.parametrize("azimuth", [30.0, 90.0, 215.0])
    def test_rotated_terrain_still_consistent(self, azimuth):
        t = random_terrain(n_points=40, seed=41).rotated(azimuth)
        seq = SequentialHSR().run(t)
        par = ParallelHSR().run(t)
        assert par.visibility_map.approx_same(seq.visibility_map, tol=1e-6)

    def test_rotation_changes_visibility(self):
        t = ridge_terrain(rows=9, cols=9, seed=42)
        k_front = SequentialHSR().run(t).k
        k_side = SequentialHSR().run(t.rotated(90.0)).k
        # Looking along the ridges vs across them must differ.
        assert k_front != k_side
