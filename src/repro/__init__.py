"""repro — output-size sensitive parallel hidden-surface removal for terrains.

A production-quality reproduction of:

    Neelima Gupta and Sandeep Sen,
    "An Improved Output-size Sensitive Parallel Algorithm for
    Hidden-Surface Removal for Terrains", IPPS 1998.

Top-level convenience API (full API in the subpackages)::

    from repro import generate_terrain, ParallelHSR, SequentialHSR

    terrain = generate_terrain("fractal", n_points=500, seed=7)
    result = ParallelHSR().run(terrain)
    print(result.visibility_map.summary())

Subpackages
-----------
``repro.geometry``     geometry kernel (points, segments, hulls, predicates)
``repro.envelope``     upper-profile algebra
``repro.persistence``  persistent treap & envelope store
``repro.pram``         simulated CREW PRAM (work/depth, scheduling, pools)
``repro.terrain``      TIN model, generators, triangulation, DEM, I/O
``repro.ordering``     front-to-back ordering & separator tree
``repro.hsr``          the paper's algorithm + baselines
``repro.render``       SVG / ASCII rendering of visibility maps
``repro.bench``        experiment harness reproducing every paper claim
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "Terrain",
    "generate_terrain",
    "ParallelHSR",
    "SequentialHSR",
    "NaiveHSR",
    "VisibilityMap",
    "PramTracker",
    "Envelope",
    "ReliabilityReport",
    "reliability_run",
    "validate_terrain",
    "validate_segments",
]

# Re-exports resolved lazily to keep `import repro` cheap; the heavy
# modules (terrain generators, hsr pipeline) load on first access.
_LAZY = {
    "Terrain": ("repro.terrain", "Terrain"),
    "generate_terrain": ("repro.terrain", "generate_terrain"),
    "ParallelHSR": ("repro.hsr", "ParallelHSR"),
    "SequentialHSR": ("repro.hsr", "SequentialHSR"),
    "NaiveHSR": ("repro.hsr", "NaiveHSR"),
    "VisibilityMap": ("repro.hsr", "VisibilityMap"),
    "PramTracker": ("repro.pram", "PramTracker"),
    "Envelope": ("repro.envelope", "Envelope"),
    "ReliabilityReport": ("repro.reliability", "ReliabilityReport"),
    "reliability_run": ("repro.reliability", "reliability_run"),
    "validate_terrain": ("repro.reliability", "validate_terrain"),
    "validate_segments": ("repro.reliability", "validate_segments"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
