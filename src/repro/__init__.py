"""repro — output-size sensitive parallel hidden-surface removal for terrains.

A production-quality reproduction of:

    Neelima Gupta and Sandeep Sen,
    "An Improved Output-size Sensitive Parallel Algorithm for
    Hidden-Surface Removal for Terrains", IPPS 1998.

Top-level convenience API (full API in the subpackages)::

    from repro import HsrConfig, ParallelHSR, generate_terrain

    terrain = generate_terrain("fractal", n_points=500, seed=7)
    config = HsrConfig(workers=4)        # multi-core envelope builds
    result = ParallelHSR(config=config).run(terrain)
    print(result.visibility_map.summary())

and the query service façade::

    from repro import ViewshedSession

    session = ViewshedSession(terrain, config=config)
    parts = session.query_batch([(0.0, 5.0, 32.0, 5.0), ...])
    flags = session.points_visible([(10.0, 4.0, 9.0), ...])

Everything configurable goes through one frozen
:class:`~repro.config.HsrConfig` threaded through every front door
(algorithms, queries, sessions, the ``repro serve`` CLI); see
``docs/API.md`` for the full façade and the deprecation table.

Subpackages
-----------
``repro.geometry``       geometry kernel (points, segments, hulls, predicates)
``repro.envelope``       upper-profile algebra
``repro.persistence``    persistent treap & envelope store
``repro.pram``           simulated CREW PRAM (work/depth, scheduling, pools)
``repro.parallel_exec``  real multi-core build/merge execution (shared memory)
``repro.terrain``        TIN model, generators, triangulation, DEM, I/O
``repro.ordering``       front-to-back ordering & separator tree
``repro.hsr``            the paper's algorithm + baselines
``repro.service``        batched viewshed query service (sessions + server)
``repro.render``         SVG / ASCII rendering of visibility maps
``repro.bench``          experiment harness reproducing every paper claim
"""

from repro._version import __version__

__all__ = [
    "__version__",
    # configuration (the one knob object)
    "HsrConfig",
    "DEFAULT_CONFIG",
    # terrain
    "Terrain",
    "generate_terrain",
    # algorithms
    "ParallelHSR",
    "SequentialHSR",
    "NaiveHSR",
    "VisibilityMap",
    # queries
    "point_visible",
    "visible_many",
    "VisibilityOracle",
    "batch_visible_parts",
    # service
    "ViewshedSession",
    "ViewshedServer",
    # infrastructure
    "PramTracker",
    "Envelope",
    "ReliabilityReport",
    "reliability_run",
    "validate_terrain",
    "validate_segments",
]

# Re-exports resolved lazily to keep `import repro` cheap; the heavy
# modules (terrain generators, hsr pipeline) load on first access.
_LAZY = {
    "HsrConfig": ("repro.config", "HsrConfig"),
    "DEFAULT_CONFIG": ("repro.config", "DEFAULT_CONFIG"),
    "Terrain": ("repro.terrain", "Terrain"),
    "generate_terrain": ("repro.terrain", "generate_terrain"),
    "ParallelHSR": ("repro.hsr", "ParallelHSR"),
    "SequentialHSR": ("repro.hsr", "SequentialHSR"),
    "NaiveHSR": ("repro.hsr", "NaiveHSR"),
    "VisibilityMap": ("repro.hsr", "VisibilityMap"),
    "point_visible": ("repro.hsr.queries", "point_visible"),
    "visible_many": ("repro.hsr.queries", "visible_many"),
    "VisibilityOracle": ("repro.hsr.queries", "VisibilityOracle"),
    "batch_visible_parts": (
        "repro.envelope.flat_visibility",
        "batch_visible_parts",
    ),
    "ViewshedSession": ("repro.service", "ViewshedSession"),
    "ViewshedServer": ("repro.service", "ViewshedServer"),
    "PramTracker": ("repro.pram", "PramTracker"),
    "Envelope": ("repro.envelope", "Envelope"),
    "ReliabilityReport": ("repro.reliability", "ReliabilityReport"),
    "reliability_run": ("repro.reliability", "reliability_run"),
    "validate_terrain": ("repro.reliability", "validate_terrain"),
    "validate_segments": ("repro.reliability", "validate_segments"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
