"""Point-visibility queries against a terrain.

Utilities answering "is this 3-D point visible from the viewing
direction?" — the primitive underlying GIS viewshed products, signal
line-of-sight checks and flight-path planning.  A point ``p`` is
visible from ``x = +inf`` iff no terrain surface in front of it rises
to its height at its image ordinate, i.e. iff

    p.z  >  sup { envelope of edges strictly in front of p } (p.y)

(strictly in front: edge xy-projection passes ``p.y`` at larger x).

Three implementations are provided:

* :func:`point_visible` — direct evaluation: scan the edges once,
  O(n) per query, exact.  The reference.
* :func:`visible_many` — the batch form: under ``engine="numpy"``
  the per-edge scan vectorises over observer blocks (bit-exact with
  the scalar scan — the running maximum is order-independent and the
  interpolation replicates :meth:`~repro.geometry.segments.MapSegment.
  x_at` / ``z_at`` including their endpoint shortcuts); under
  ``engine="python"`` it is the scalar loop.
* :class:`VisibilityOracle` — batch preprocessing: sorts edges front
  to back once and builds *prefix profiles* at checkpoints, answering
  each query from the nearest checkpoint profile plus a local scan —
  O(n/c · 1 + log) per query for ``c`` checkpoints, trading memory
  for query time.  Cross-checked against the reference in tests.

All three take the observer either as a
:class:`~repro.geometry.primitives.Point3` or as any ``(x, y, z)``
sequence — the same observer type :class:`repro.service.
ViewshedSession` accepts — and an :class:`repro.config.HsrConfig`;
the old per-function ``eps=`` keyword still works but is deprecated
(one warning per process) in favour of ``config``.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence, Union

from repro._compat import warn_once
from repro.envelope.chain import Envelope
from repro.envelope.splice import insert_segment
from repro.geometry.primitives import NEG_INF, Point3
from repro.ordering.sweep import front_to_back_order
from repro.terrain.model import Terrain

__all__ = ["point_visible", "visible_many", "VisibilityOracle", "Observer"]

#: Any observer spec the query layer accepts: a ``Point3`` or a plain
#: ``(x, y, z)`` sequence (the JSON shape the service receives).
Observer = Union[Point3, Sequence[float]]


def as_observer(p: Observer) -> Point3:
    """Normalise an observer spec to :class:`Point3`."""
    if isinstance(p, Point3):
        return p
    x, y, z = p
    return Point3(float(x), float(y), float(z))


def _resolve(config, eps, key: str):
    """Shared ``(config, deprecated eps=)`` normalisation."""
    from repro.config import HsrConfig

    if eps is not None:
        warn_once(
            key,
            f"{key}(..., eps=...) is deprecated; pass"
            " config=HsrConfig(eps=...) instead",
        )
    return HsrConfig.resolve(config, eps=eps)


def point_visible(
    terrain: Terrain,
    p: Observer,
    *,
    eps: Optional[float] = None,
    config=None,
) -> bool:
    """True when ``p`` is visible from ``x = +inf`` (see module doc).

    Points strictly above every occluder are visible; a point exactly
    on a front surface (within the config's ``eps``) counts as
    visible — it *is* the surface being seen.
    """
    cfg = _resolve(config, eps, "point_visible")
    p = as_observer(p)
    eps_v = cfg.eps
    best = NEG_INF
    for e in range(terrain.n_edges):
        m = terrain.map_segment(e)
        if not (m.y1 <= p.y <= m.y2):
            continue
        if m.x_at(p.y) <= p.x + eps_v:
            continue  # not strictly in front
        s = terrain.image_segment(e)
        z = s.z_at(p.y)
        if z > best:
            best = z
    return best == NEG_INF or p.z >= best - eps_v


#: Observers per vectorized block: bounds the (block × edges) broadcast
#: temporaries to a few MB on realistic terrains.
_POINT_BLOCK = 256


def visible_many(
    terrain: Terrain,
    observers: Sequence[Observer],
    *,
    config=None,
) -> list[bool]:
    """Batch :func:`point_visible` over many observers.

    Under the numpy engine the scan runs as blocked array sweeps over
    (observer × edge) panels; results are bit-exact with the scalar
    reference (asserted in ``tests/test_service.py``).
    """
    from repro.config import HsrConfig

    cfg = HsrConfig.resolve(config)
    points = [as_observer(p) for p in observers]
    if cfg.resolved_engine() != "numpy" or terrain.n_edges == 0:
        return [point_visible(terrain, p, config=cfg) for p in points]
    return _visible_many_numpy(terrain, points, cfg.eps)


def _terrain_query_arrays(terrain: Terrain):
    """The per-edge lanes the vectorized point kernel scans: map-
    segment endpoints (front test) and image-segment endpoints
    (height evaluation), one row per edge."""
    import numpy as np

    n = terrain.n_edges
    mat = np.empty((n, 8), dtype=np.float64)
    for e in range(n):
        m = terrain.map_segment(e)
        s = terrain.image_segment(e)
        mat[e] = (m.x1, m.y1, m.x2, m.y2, s.y1, s.z1, s.y2, s.z2)
    return mat


def _visible_many_numpy(
    terrain: Terrain, points: Sequence[Point3], eps: float
) -> list[bool]:
    """Blocked vectorization of the reference scan.

    Replicates the scalar float arithmetic exactly: ``lerp``'s
    ``t == 0 / t == 1`` endpoint shortcuts become ``where`` selects
    (``y == y1`` makes ``t`` exactly ``0.0`` and ``y == y2`` exactly
    ``1.0``, so selecting on ``t`` covers the ``x_at``/``z_at``
    shortcuts too), horizontal map segments and vertical image
    segments take their max-endpoint branches, and every divide runs
    on a masked-safe denominator (the numpy CI leg promotes
    RuntimeWarning to error).  The reference's running ``max`` is
    order-independent, so one array reduction matches it bitwise.
    """
    import numpy as np

    mat = _terrain_query_arrays(terrain)
    mx1, my1, mx2, my2 = mat[:, 0], mat[:, 1], mat[:, 2], mat[:, 3]
    sy1, sz1, sy2, sz2 = mat[:, 4], mat[:, 5], mat[:, 6], mat[:, 7]
    m_horiz = my1 == my2
    s_vert = sy1 == sy2
    m_top = np.maximum(mx1, mx2)
    s_top = np.maximum(sz1, sz2)
    md = np.where(m_horiz, 1.0, my2 - my1)
    sd = np.where(s_vert, 1.0, sy2 - sy1)

    out: list[bool] = []
    for base in range(0, len(points), _POINT_BLOCK):
        block = points[base : base + _POINT_BLOCK]
        py = np.array([p.y for p in block])[:, None]
        px = np.array([p.x for p in block])[:, None]
        pz = np.array([p.z for p in block])[:, None]

        covers = (my1 <= py) & (py <= my2)
        tm = (py - my1) / md
        xv = np.where(
            m_horiz,
            m_top,
            np.where(
                tm == 0.0,
                mx1,
                np.where(tm == 1.0, mx2, mx1 + (mx2 - mx1) * tm),
            ),
        )
        front = covers & (xv > px + eps)

        ts = (py - sy1) / sd
        zv = np.where(
            s_vert,
            s_top,
            np.where(
                ts == 0.0,
                sz1,
                np.where(ts == 1.0, sz2, sz1 + (sz2 - sz1) * ts),
            ),
        )
        best = np.where(front, zv, NEG_INF).max(axis=1)
        vis = (best == NEG_INF) | (pz[:, 0] >= best - eps)
        out.extend(bool(v) for v in vis)
    return out


class VisibilityOracle:
    """Preprocessed point-visibility for many queries on one terrain.

    Parameters
    ----------
    terrain:
        The scene.
    checkpoints:
        Number of prefix profiles to materialise (defaults to
        ``~sqrt(n)``, balancing memory against per-query scan length).
    config:
        :class:`repro.config.HsrConfig`; the old ``eps=`` keyword is
        deprecated in its favour.
    """

    def __init__(
        self,
        terrain: Terrain,
        *,
        checkpoints: int | None = None,
        eps: Optional[float] = None,
        config=None,
    ):
        cfg = _resolve(config, eps, "VisibilityOracle")
        self.terrain = terrain
        self.config = cfg
        self.eps = cfg.eps
        self.order = front_to_back_order(terrain)
        n = len(self.order)
        c = checkpoints or max(1, int(math.isqrt(n)))
        stride = max(1, n // c)
        #: positions in the order at which profiles are snapshotted;
        #: checkpoint i covers the prefix order[:cut[i]].
        self._cuts: list[int] = list(range(0, n + 1, stride))
        if self._cuts[-1] != n:
            self._cuts.append(n)
        #: x-depth of each ordered edge (min over the segment — an
        #: edge is certainly in front of p when even its farthest
        #: point is nearer than p... we instead store per-edge depth
        #: range and resolve borderline edges in the local scan).
        self._profiles: list[Envelope] = []
        env = Envelope.empty()
        cut_iter = iter(self._cuts)
        next_cut = next(cut_iter)
        pos = 0
        if next_cut == 0:
            self._profiles.append(env)
            next_cut = next(cut_iter, None)  # type: ignore[assignment]
        for pos, edge in enumerate(self.order, start=1):
            env = insert_segment(
                env, terrain.image_segment(edge), eps=self.eps
            ).envelope
            if next_cut is not None and pos == next_cut:
                self._profiles.append(env)
                next_cut = next(cut_iter, None)  # type: ignore[assignment]
        #: for the front-in-front test we need, per ordered position,
        #: the x of the edge at arbitrary y — keep map segments handy.
        self._map_segs = [terrain.map_segment(e) for e in self.order]
        self._image_segs = [terrain.image_segment(e) for e in self.order]

    @property
    def n_checkpoints(self) -> int:
        return len(self._profiles)

    def visible(self, p: Observer) -> bool:
        """Visibility of ``p`` (matches :func:`point_visible`).

        Every ordered edge before the first one that covers ``p.y``
        *without* being in front of ``p`` is either in front or
        irrelevant at ``p.y``, so the deepest checkpoint at or before
        that position can be queried wholesale in ``O(log)``; only the
        remainder is scanned edge by edge.  For points deep inside the
        scene this skips most height evaluations (measured in the
        test-suite); the asymptotic worst case stays ``O(n)`` — making
        the split worst-case sublinear is precisely the dynamic
        ray-shooting machinery of Reif–Sen that the paper's parallel
        structure replaces.
        """
        p = as_observer(p)
        n = len(self.order)
        first_bad = n
        for i, m in enumerate(self._map_segs):
            if m.y1 <= p.y <= m.y2 and m.x_at(p.y) <= p.x + self.eps:
                first_bad = i
                break
        ck = bisect.bisect_right(self._cuts, first_bad) - 1
        cut = self._cuts[ck]
        best = self._profiles[ck].value_at(p.y)
        for i in range(cut, n):
            m = self._map_segs[i]
            if not (m.y1 <= p.y <= m.y2):
                continue
            if m.x_at(p.y) <= p.x + self.eps:
                continue
            z = self._image_segs[i].z_at(p.y)
            if z > best:
                best = z
        return best == NEG_INF or p.z >= best - self.eps

    def visible_many(self, points: Sequence[Observer]) -> list[bool]:
        """Batch query."""
        return [self.visible(p) for p in points]
