"""Point-visibility queries against a terrain.

Utilities answering "is this 3-D point visible from the viewing
direction?" — the primitive underlying GIS viewshed products, signal
line-of-sight checks and flight-path planning.  A point ``p`` is
visible from ``x = +inf`` iff no terrain surface in front of it rises
to its height at its image ordinate, i.e. iff

    p.z  >  sup { envelope of edges strictly in front of p } (p.y)

(strictly in front: edge xy-projection passes ``p.y`` at larger x).

Two implementations are provided:

* :func:`point_visible` — direct evaluation: scan the edges once,
  O(n) per query, exact.  The reference.
* :class:`VisibilityOracle` — batch preprocessing: sorts edges front
  to back once and builds *prefix profiles* at checkpoints, answering
  each query from the nearest checkpoint profile plus a local scan —
  O(n/c · 1 + log) per query for ``c`` checkpoints, trading memory
  for query time.  Cross-checked against the reference in tests.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from repro.envelope.chain import Envelope
from repro.envelope.splice import insert_segment
from repro.geometry.primitives import EPS, NEG_INF, Point3
from repro.ordering.sweep import front_to_back_order
from repro.terrain.model import Terrain

__all__ = ["point_visible", "VisibilityOracle"]


def point_visible(
    terrain: Terrain, p: Point3, *, eps: float = EPS
) -> bool:
    """True when ``p`` is visible from ``x = +inf`` (see module doc).

    Points strictly above every occluder are visible; a point exactly
    on a front surface (within ``eps``) counts as visible — it *is*
    the surface being seen.
    """
    best = NEG_INF
    for e in range(terrain.n_edges):
        m = terrain.map_segment(e)
        if not (m.y1 <= p.y <= m.y2):
            continue
        if m.x_at(p.y) <= p.x + eps:
            continue  # not strictly in front
        s = terrain.image_segment(e)
        z = s.z_at(p.y)
        if z > best:
            best = z
    return best == NEG_INF or p.z >= best - eps


class VisibilityOracle:
    """Preprocessed point-visibility for many queries on one terrain.

    Parameters
    ----------
    terrain:
        The scene.
    checkpoints:
        Number of prefix profiles to materialise (defaults to
        ``~sqrt(n)``, balancing memory against per-query scan length).
    """

    def __init__(
        self,
        terrain: Terrain,
        *,
        checkpoints: int | None = None,
        eps: float = EPS,
    ):
        self.terrain = terrain
        self.eps = eps
        self.order = front_to_back_order(terrain)
        n = len(self.order)
        c = checkpoints or max(1, int(math.isqrt(n)))
        stride = max(1, n // c)
        #: positions in the order at which profiles are snapshotted;
        #: checkpoint i covers the prefix order[:cut[i]].
        self._cuts: list[int] = list(range(0, n + 1, stride))
        if self._cuts[-1] != n:
            self._cuts.append(n)
        #: x-depth of each ordered edge (min over the segment — an
        #: edge is certainly in front of p when even its farthest
        #: point is nearer than p... we instead store per-edge depth
        #: range and resolve borderline edges in the local scan).
        self._profiles: list[Envelope] = []
        env = Envelope.empty()
        cut_iter = iter(self._cuts)
        next_cut = next(cut_iter)
        pos = 0
        if next_cut == 0:
            self._profiles.append(env)
            next_cut = next(cut_iter, None)  # type: ignore[assignment]
        for pos, edge in enumerate(self.order, start=1):
            env = insert_segment(
                env, terrain.image_segment(edge), eps=eps
            ).envelope
            if next_cut is not None and pos == next_cut:
                self._profiles.append(env)
                next_cut = next(cut_iter, None)  # type: ignore[assignment]
        #: for the front-in-front test we need, per ordered position,
        #: the x of the edge at arbitrary y — keep map segments handy.
        self._map_segs = [terrain.map_segment(e) for e in self.order]
        self._image_segs = [terrain.image_segment(e) for e in self.order]

    @property
    def n_checkpoints(self) -> int:
        return len(self._profiles)

    def visible(self, p: Point3) -> bool:
        """Visibility of ``p`` (matches :func:`point_visible`).

        Every ordered edge before the first one that covers ``p.y``
        *without* being in front of ``p`` is either in front or
        irrelevant at ``p.y``, so the deepest checkpoint at or before
        that position can be queried wholesale in ``O(log)``; only the
        remainder is scanned edge by edge.  For points deep inside the
        scene this skips most height evaluations (measured in the
        test-suite); the asymptotic worst case stays ``O(n)`` — making
        the split worst-case sublinear is precisely the dynamic
        ray-shooting machinery of Reif–Sen that the paper's parallel
        structure replaces.
        """
        n = len(self.order)
        first_bad = n
        for i, m in enumerate(self._map_segs):
            if m.y1 <= p.y <= m.y2 and m.x_at(p.y) <= p.x + self.eps:
                first_bad = i
                break
        ck = bisect.bisect_right(self._cuts, first_bad) - 1
        cut = self._cuts[ck]
        best = self._profiles[ck].value_at(p.y)
        for i in range(cut, n):
            m = self._map_segs[i]
            if not (m.y1 <= p.y <= m.y2):
                continue
            if m.x_at(p.y) <= p.x + self.eps:
                continue
            z = self._image_segs[i].z_at(p.y)
            if z > best:
                best = z
        return best == NEG_INF or p.z >= best - self.eps

    def visible_many(self, points: Sequence[Point3]) -> list[bool]:
        """Batch query."""
        return [self.visible(p) for p in points]
