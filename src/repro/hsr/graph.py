"""Visibility map as a planar graph.

The paper defines the output size as "the number of vertices and edges
of the displayed image as a (planar) graph" (§1.1).  This module
materialises that graph explicitly (as a :class:`networkx.Graph`),
which downstream consumers — mesh simplifiers, silhouette extractors,
label placers — can traverse, and which lets the test-suite check
graph-theoretic invariants of the output (planarity bounds, component
structure, degree distribution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hsr.result import VisibilityMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

__all__ = ["visibility_graph", "graph_summary"]

#: Quantum for identifying coincident image vertices (matches
#: :mod:`repro.hsr.result`).
_Q = 1e-6


def _key(y: float, z: float) -> tuple[float, float]:
    return (round(y / _Q) * _Q, round(z / _Q) * _Q)


def visibility_graph(vmap: VisibilityMap) -> "networkx.Graph":
    """Build the image's planar graph.

    Nodes are quantised image points carrying a ``pos=(y, z)``
    attribute; edges carry the set of source terrain edges in
    ``sources`` (coincident visible segments merge into one graph
    edge) and their Euclidean ``length``.  Point-degenerate visible
    segments (vertically projected edges) become isolated nodes.
    """
    import networkx as nx

    g = nx.Graph()
    for s in vmap.segments:
        a = _key(s.ya, s.za)
        b = _key(s.yb, s.zb)
        if a not in g:
            g.add_node(a, pos=a)
        if s.is_point or a == b:
            continue
        if b not in g:
            g.add_node(b, pos=b)
        if g.has_edge(a, b):
            g.edges[a, b]["sources"].add(s.edge)
        else:
            length = ((b[0] - a[0]) ** 2 + (b[1] - a[1]) ** 2) ** 0.5
            g.add_edge(a, b, sources={s.edge}, length=length)
    return g


def graph_summary(vmap: VisibilityMap) -> dict[str, float]:
    """Scalar graph statistics of the visible image.

    Keys: ``nodes``, ``edges``, ``components``, ``max_degree``,
    ``total_length``, ``k`` (nodes + edges — the paper's output size,
    possibly smaller than ``vmap.k`` when coincident segments merge).
    """
    import networkx as nx

    g = visibility_graph(vmap)
    degrees = [d for _, d in g.degree()]
    return {
        "nodes": float(g.number_of_nodes()),
        "edges": float(g.number_of_edges()),
        "components": float(nx.number_connected_components(g))
        if g.number_of_nodes()
        else 0.0,
        "max_degree": float(max(degrees, default=0)),
        "total_length": float(
            sum(data["length"] for _, _, data in g.edges(data=True))
        ),
        "k": float(g.number_of_nodes() + g.number_of_edges()),
    }
