"""Lemma 3.2: all intersections of a segment with a profile by
middle-diagonal splitting.

    "Split the segment s around the middle diagonal d (among the
    diagonals that the segment spans).  Find the intersection closest
    to d in both the subsegments and recurse."

The recursion tree has one leaf per discovered intersection and depth
``O(log m)`` (each level halves the spanned diagonal range), and the
two recursive calls are independent — on a PRAM they run in parallel,
which is how Lemma 2.1 turns ``k_s`` sequential searches into
``O(T_I log m)`` parallel time.  The implementation mirrors that
structure: the recursion charges a tracker with parallel branches so
depth measurements reflect the lemma (experiment E10).
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.segments import ImageSegment
from repro.hsr.cg import ProfileIndex
from repro.pram.tracker import PramTracker

__all__ = ["all_intersections_lemma32"]


def _closest_left(
    index: ProfileIndex, a: float, b: float, u: float, v: float
) -> tuple[Optional[tuple[float, float]], int]:
    """Rightmost crossing in ``(u, v)`` — mirror of first-in-range."""
    probes = 0
    eps = index.eps

    def walk(node, u: float, v: float):
        nonlocal probes
        if node is None or u >= v:
            return None
        if v <= node.ya or u >= node.yb:
            return None
        probes += 1
        if node.ya >= u and node.yb <= v:
            dmin = index._hull_extreme(node.lower, a, b, maximize=False)
            if dmin > eps:
                return None
            dmax = index._hull_extreme(node.upper, a, b, maximize=True)
            if dmax < -eps:
                return None
        if node.is_leaf:
            return index._piece_crossing(
                index.env.pieces[node.lo], a, b, u, v
            )
        hit = walk(node.right, u, v)
        if hit is not None:
            return hit
        return walk(node.left, u, v)

    return (walk(index.root, u, v), probes)


def all_intersections_lemma32(
    index: ProfileIndex,
    seg: ImageSegment,
    *,
    tracker: Optional[PramTracker] = None,
) -> tuple[list[tuple[float, float]], int]:
    """All transversal crossings of ``seg`` with the indexed profile,
    by the Lemma 3.2 middle-diagonal recursion.

    Returns ``(crossings in y-order, total probes)``.  When a tracker
    is supplied the two half-recursions are charged as parallel
    branches, so measured depth is ``O(T_I · log m)`` as the lemma
    states.
    """
    if index.root is None or seg.is_vertical:
        return ([], 0)
    a = seg.slope
    b = seg.z1 - a * seg.y1
    env = index.env
    probes_total = 0
    found: list[tuple[float, float]] = []

    def middle_diagonal(u: float, v: float) -> Optional[float]:
        """The envelope breakpoint most evenly splitting the pieces
        the range spans (the paper's 'middle diagonal')."""
        lo, hi = env.pieces_overlapping(u, v)
        if hi - lo < 2:
            return None
        mid = (lo + hi) // 2
        d = env.pieces[mid].ya
        if not (u < d < v):
            return None
        return d

    def recurse(u: float, v: float) -> None:
        nonlocal probes_total
        if u >= v:
            return
        d = middle_diagonal(u, v)
        if d is None:
            # The range spans at most one diagonal: solve directly.
            hit, probes = index._first_in_range(a, b, u, v)
            probes_total += probes
            if tracker is not None:
                tracker.charge(probes + 1)
            while hit is not None:
                found.append(hit)
                hit, probes = index._first_in_range(
                    a, b, hit[0] + 1e-12, v
                )
                probes_total += probes
            return
        # Closest intersections to d on each side.
        left_hit, p1 = _closest_left(index, a, b, u, d)
        right_hit, p2 = index._first_in_range(a, b, d, v)
        probes_total += p1 + p2
        if tracker is not None:
            tracker.charge(p1 + p2 + 1, max(p1, p2) + 1)
        branches: list[tuple[float, float]] = []
        if left_hit is not None:
            found.append(left_hit)
            branches.append((u, left_hit[0] - 1e-12))
        if right_hit is not None:
            found.append(right_hit)
            branches.append((right_hit[0] + 1e-12, v))
        if not branches:
            return
        if tracker is not None:
            with tracker.parallel() as par:
                for (bu, bv) in branches:
                    with par.branch():
                        recurse(bu, bv)
        else:
            for (bu, bv) in branches:
                recurse(bu, bv)

    recurse(seg.y1, seg.y2)
    found.sort()
    return (found, probes_total)
