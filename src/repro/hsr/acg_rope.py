"""Chunk-augmented Chazelle–Guibas search on rope profile versions.

The rope analogue of :mod:`repro.hsr.acg`: where the treap memoises a
hull augmentation per *node*, the rope memoises one per *chunk*
(:attr:`repro.persistence.rope.Chunk._aug`).  Chunks are immutable and
shared between versions, so — exactly like the treap's node
augmentations — a chunk augmentation computed for one profile version
is reused by every layer-mate sharing that chunk (the paper's "single
ACG structure for all the profiles", §3.1).

The search itself is a pruned scan over the (short) chunk spine
instead of a tree descent: a chunk wholly inside the query range whose
lower hull lies strictly above the segment's supporting line (or upper
hull strictly below) is skipped without opening its pieces; only
inconclusive chunks are opened.  Junction candidates at chunk seams
are always checked — a pruned chunk's *interior* junctions cannot
straddle the line (every vertex is strictly on one side), but its
boundary vertex pairs with a neighbouring chunk's vertex, which may
sit on the other side.

Event emission differs from the treap walk only in degenerate
tangencies (the treap clamps candidate endpoints by ancestor spans,
which is tree-shape-dependent); region outputs agree — the phase-2
mode tests compare visibility across all engines.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import NamedTuple, Optional

from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import Crossing, MergeResult
from repro.geometry.convex import (
    lower_hull_presorted,
    upper_hull_presorted,
)
from repro.geometry.primitives import EPS, Point2
from repro.geometry.segments import ImageSegment
from repro.hsr.acg import _hull_max, _hull_min, _ProbeCounter
from repro.persistence.rope import (
    Chunk,
    Rope,
    rope_from_envelope,
    rope_splice_merge,
    rope_value_at,
)

__all__ = [
    "ChunkAugment",
    "chunk_augment",
    "collect_gaps_rope",
    "collect_flip_candidates_rope",
    "winner_regions_rope",
    "acg_rope_splice_merge",
]


class ChunkAugment(NamedTuple):
    """Memoised chunk summary (the treap's per-node ``Augment``,
    lifted to a whole chunk)."""

    ya_min: float
    za_first: float
    yb_max: float
    zb_last: float
    contiguous: bool
    lower: tuple[Point2, ...]
    upper: tuple[Point2, ...]


def chunk_augment(chunk: Chunk) -> ChunkAugment:
    """The chunk's augmentation, computed on first use and cached on
    the (immutable, version-shared) chunk."""
    aug = chunk._aug
    if aug is not None:
        return aug
    pieces = chunk.pieces
    pts: list[Point2] = []
    for p in pieces:
        pts.append(Point2(p.ya, p.za))
        pts.append(Point2(p.yb, p.zb))
    aug = ChunkAugment(
        pieces[0].ya,
        pieces[0].za,
        pieces[-1].yb,
        pieces[-1].zb,
        all(
            pieces[k].yb == pieces[k + 1].ya
            for k in range(len(pieces) - 1)
        ),
        tuple(lower_hull_presorted(pts)),
        tuple(upper_hull_presorted(pts)),
    )
    chunk._aug = aug
    return aug


def _first_chunk(rope: Rope, lo: float) -> int:
    """Index of the first chunk that can overlap ``(lo, ...)``."""
    return max(0, bisect_right(rope.starts, lo) - 1)


def collect_gaps_rope(
    rope: Rope,
    lo: float,
    hi: float,
    counter: Optional[_ProbeCounter] = None,
) -> list[tuple[float, float]]:
    """Maximal sub-intervals of ``[lo, hi]`` not covered by any piece —
    the rope analogue of :func:`repro.hsr.acg.collect_gaps`.  Cost
    O(log chunks + touched chunks); contiguous chunks are skipped
    without opening their pieces."""
    out: list[tuple[float, float]] = []
    a = lo
    n = len(rope.chunks)
    c = _first_chunk(rope, lo)
    while c < n and a < hi:
        if counter is not None:
            counter.probes += 1
        chunk = rope.chunks[c]
        aug = chunk_augment(chunk)
        if aug.yb_max <= a:
            c += 1
            continue
        if aug.ya_min >= hi:
            break
        if a < aug.ya_min:
            out.append((a, min(hi, aug.ya_min)))
            a = aug.ya_min
        if aug.contiguous:
            a = max(a, min(hi, aug.yb_max))
        else:
            for p in chunk.pieces:
                if counter is not None:
                    counter.probes += 1
                if a >= hi:
                    break
                if p.yb <= a:
                    continue
                if p.ya >= hi:
                    break
                if a < p.ya:
                    out.append((a, min(hi, p.ya)))
                a = max(a, min(hi, p.yb))
        c += 1
    if a < hi:
        out.append((a, hi))
    return out


def collect_flip_candidates_rope(
    rope: Rope,
    seg: ImageSegment,
    lo: float,
    hi: float,
    *,
    eps: float = EPS,
    counter: Optional[_ProbeCounter] = None,
) -> list[float]:
    """y-values in ``(lo, hi)`` where ``seg`` may exchange dominance
    with the profile — transversal crossings, tangential contacts and
    straddled jump junctions, hull-pruned per chunk (Lemma 3.6's
    search on the chunk spine)."""
    sa = seg.slope
    sb = seg.z1 - sa * seg.y1
    out: list[float] = []

    def junction(p1: Piece, p2: Piece) -> None:
        y = p1.yb
        if p2.ya == y and lo < y < hi:
            z1, z2 = p1.zb, p2.za
            sy = sa * y + sb
            if min(z1, z2) - eps <= sy <= max(z1, z2) + eps:
                out.append(y)

    n = len(rope.chunks)
    c = _first_chunk(rope, lo)
    prev_piece: Optional[Piece] = (
        rope.chunks[c - 1].pieces[-1] if c > 0 else None
    )
    while c < n:
        if counter is not None:
            counter.probes += 1
        chunk = rope.chunks[c]
        aug = chunk_augment(chunk)
        if aug.yb_max <= lo:
            prev_piece = chunk.pieces[-1]
            c += 1
            continue
        if aug.ya_min >= hi:
            break
        # Chunk-seam junction: checked even when a side is pruned (a
        # pruned chunk's boundary vertex can still straddle the line
        # paired with its neighbour's).
        if prev_piece is not None:
            junction(prev_piece, chunk.pieces[0])
        pruned = False
        if aug.ya_min >= lo and aug.yb_max <= hi:
            # Chunk wholly inside the query range: hulls decide.
            if _hull_min(aug.lower, sa, sb) > eps:
                pruned = True  # strictly above the line: no flips
            elif _hull_max(aug.upper, sa, sb) < -eps:
                pruned = True  # strictly below: flips only at gaps
        if not pruned:
            pieces = chunk.pieces
            for k, piece in enumerate(pieces):
                if piece.yb <= lo:
                    continue
                if piece.ya >= hi:
                    break
                if counter is not None:
                    counter.probes += 1
                pu = max(lo, piece.ya)
                pv = min(hi, piece.yb)
                if pu < pv:
                    du = piece.z_at(pu) - (sa * pu + sb)
                    dv = piece.z_at(pv) - (sa * pv + sb)
                    su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
                    sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
                    if su * sv < 0:
                        t = du / (du - dv)
                        w = pu + t * (pv - pu)
                        if pu < w < pv:
                            out.append(w)
                    # Tangential contacts (see the treap version): emit
                    # the endpoint so region-midpoint probes never land
                    # on a zero of the difference.
                    if su == 0 and lo < pu < hi:
                        out.append(pu)
                    if sv == 0 and lo < pv < hi:
                        out.append(pv)
                if k > 0:
                    junction(pieces[k - 1], piece)
        prev_piece = chunk.pieces[-1]
        c += 1
    return sorted(out)


def winner_regions_rope(
    rope: Rope, seg: ImageSegment, *, eps: float = EPS
) -> tuple[list[tuple[float, float, bool]], list[float], int]:
    """Partition ``[seg.y1, seg.y2]`` into maximal regions where
    either the profile or the segment dominates — the rope analogue of
    :func:`repro.hsr.acg.winner_regions`, same return convention
    ``(regions, crossings, probes)``."""
    counter = _ProbeCounter()
    lo, hi = seg.y1, seg.y2
    events: set = {lo, hi}
    for ga, gb in collect_gaps_rope(rope, lo, hi, counter):
        events.add(ga)
        events.add(gb)
    flips = collect_flip_candidates_rope(
        rope, seg, lo, hi, eps=eps, counter=counter
    )
    events.update(flips)
    ys = sorted(events)
    raw: list[tuple[float, float, bool]] = []
    for u, v in zip(ys, ys[1:]):
        if v - u <= 0:
            continue
        m = 0.5 * (u + v)
        counter.probes += 1
        seg_wins = seg.z_at(m) - rope_value_at(rope, m) > eps
        if raw and raw[-1][2] == seg_wins and raw[-1][1] == u:
            raw[-1] = (raw[-1][0], v, seg_wins)
        else:
            raw.append((u, v, seg_wins))
    boundaries = {r[0] for r in raw[1:]}
    crossings = [y for y in flips if y in boundaries]
    return raw, crossings, counter.probes


def acg_rope_splice_merge(
    rope: Rope, other: Envelope, *, eps: float = EPS
) -> tuple[Rope, MergeResult]:
    """Merge ``other`` into a rope version using chunk-ACG searches —
    the rope analogue of :func:`repro.hsr.acg.acg_splice_merge`
    (functionally identical results; the test suite asserts parity
    against the plain merge)."""
    if not other.pieces:
        return rope, MergeResult(Envelope.empty(), [], 0)
    if rope.total == 0:
        return rope_from_envelope(other), MergeResult(other, [], other.size)
    ops = 0
    crossings: list[Crossing] = []
    new_rope = rope
    for piece in other.pieces:
        seg = piece.as_segment()
        if seg.is_vertical:  # pieces are never vertical, defensive
            continue
        regions, cross_ys, probes = winner_regions_rope(
            new_rope, seg, eps=eps
        )
        ops += probes
        for y in cross_ys:
            crossings.append(Crossing(y, seg.z_at(y), -1, piece.source))
        for (ra, rb, seg_wins) in regions:
            if not seg_wins or rb <= ra:
                continue
            clip = piece.clipped(max(ra, piece.ya), min(rb, piece.yb))
            new_rope, res = rope_splice_merge(
                new_rope, Envelope([clip]), eps=eps
            )
            ops += res.ops
    return new_rope, MergeResult(Envelope([]), crossings, ops)
