"""Phase 2: actual profiles by systolic prefix propagation.

From the paper (§2.1/§3.1): starting at the PCT root, proceed layer by
layer toward the leaves.  Every node holds an *inherited* profile —
the actual profile ``P_i`` of all edges preceding its subtree — and
produces its children's inherited profiles:

    left.inherited  = v.inherited                      (shared!)
    right.inherited = merge(v.inherited, Phase1(left))

At a leaf with front-to-back position ``i`` the inherited profile is
exactly ``P_{i-1}``, and the visible portion of edge ``e_i`` is the
part of its projection above it.

Two interchangeable engines compute the merges (same output, different
cost profile — experiment E11's ablation):

``direct``
    Array-envelope merges by local splice
    (:func:`repro.envelope.splice.splice_merge`): only the window of
    the inherited profile overlapping the intermediate envelope goes
    through the merge sweep, but each merge still *copies* the full
    inherited profile into the child's (per-layer copying Θ(Σ |P_i|),
    reported as ``pieces_materialised`` — the cost the persistent
    representation is there to avoid).
``persistent``
    Profiles are persistent-treap versions; a merge splices only the
    y-range of the intermediate profile and shares the rest (paper
    Figs. 1/3 — this is where the persistent structure earns the
    output-sensitive work bound).  Left children share their parent's
    version outright: zero copying.
``acg``
    Like ``persistent``, but crossings inside the spliced range are
    located by hull-pruned searches on the augmented (Chazelle–Guibas
    style) structure instead of a linear sweep —
    see :mod:`repro.hsr.acg`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.envelope.chain import Envelope
from repro.envelope.engine import resolve_engine
from repro.envelope.splice import splice_merge
from repro.envelope.visibility import VisibilityResult, visible_parts
from repro.errors import HsrError
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.hsr.pct import PCT
from repro.persistence import treap
from repro.persistence.envelope_store import (
    penv_splice_merge,
    penv_visible_parts,
)
from repro.pram.tracker import PramTracker
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = ["Phase2Result", "run_phase2", "PHASE2_MODES"]

PHASE2_MODES = ("direct", "persistent", "acg")


@dataclass
class LayerStats:
    """Per-PCT-layer instrumentation (the paper's analysis is
    per-layer: "all the intersections at the next layer of PCT")."""

    depth: int
    merges: int = 0
    ops: int = 0
    crossings: int = 0
    inherited_pieces: int = 0
    shared_nodes: int = 0
    total_nodes: int = 0


@dataclass
class Phase2Result:
    """Visibility per edge + instrumentation."""

    visibility: dict[int, VisibilityResult] = field(default_factory=dict)
    ops: int = 0
    crossings: int = 0
    layers: list[LayerStats] = field(default_factory=list)
    #: persistent modes: treap nodes allocated during phase 2.
    nodes_allocated: int = 0
    #: direct mode: envelope pieces materialised (the copying cost).
    pieces_materialised: int = 0


def run_phase2(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    *,
    mode: str = "persistent",
    eps: float = EPS,
    tracker: Optional[PramTracker] = None,
    measure_sharing: bool = False,
    engine: Optional[str] = None,
    config=None,
) -> Phase2Result:
    """Run Phase 2 over a built PCT (see module docstring).

    ``engine`` selects the envelope merge kernel for the ``direct``
    mode's array merges (see :mod:`repro.envelope.engine`); the
    persistent/ACG modes splice treap versions and take no kernel
    choice.  A ``config`` (:class:`repro.config.HsrConfig`) with
    ``workers > 1`` splits the ``direct`` mode's level merges across
    the :mod:`repro.parallel_exec` process pool, bit-exact.
    """
    if mode not in PHASE2_MODES:
        raise HsrError(
            f"unknown phase-2 mode {mode!r}; choose from {PHASE2_MODES}"
        )
    if mode == "direct":
        return _phase2_direct(
            pct, image_segments, eps, tracker, engine, config
        )
    return _phase2_persistent(
        pct,
        image_segments,
        eps,
        tracker,
        use_acg=(mode == "acg"),
        measure_sharing=measure_sharing,
    )


def _merge_depth(ops: int) -> float:
    return max(1.0, math.log2(ops + 1))


def _phase2_direct(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    engine: Optional[str] = None,
    config=None,
) -> Phase2Result:
    if resolve_engine(engine) == "numpy":
        return _phase2_direct_flat(pct, image_segments, eps, tracker, config)
    tree = pct.tree
    out = Phase2Result()
    inherited: dict[int, Envelope] = {tree.root.index: Envelope.empty()}

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None
        for node in level:
            P = inherited.pop(node.index)
            stats.inherited_pieces += P.size
            if node.is_leaf:
                edge = tree.order[node.lo]
                vis = visible_parts(image_segments[edge], P, eps=eps)
                out.visibility[edge] = vis
                out.ops += vis.ops
                stats.ops += vis.ops
                if par is not None:
                    par.spawn(vis.ops, _merge_depth(vis.ops))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = P
                res = splice_merge(
                    P, pct.envelope_of(node.left), eps=eps, engine="python"
                )
                inherited[node.right.index] = res.envelope
                out.ops += res.ops
                out.crossings += len(res.crossings)
                out.pieces_materialised += res.materialised
                stats.merges += 1
                stats.ops += res.ops
                stats.crossings += len(res.crossings)
                if par is not None:
                    par.spawn(res.ops, _merge_depth(res.ops))
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        out.layers.append(stats)
    return out


def _phase2_direct_flat(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    config=None,
) -> Phase2Result:
    """``direct`` mode on the NumPy kernel.

    Inherited profiles stay as
    :class:`~repro.envelope.flat.FlatEnvelope` arrays through the
    merge cascade.  Each merge is the same local splice as the scalar
    engine's :func:`~repro.envelope.splice.splice_merge` — only the
    window of the inherited profile overlapping the intermediate
    envelope enters the sweep, located per node and spliced back with
    array concatenates — and, since a layer's merges are independent,
    all of a layer's windows run as *one*
    :func:`~repro.envelope.flat.batch_merge` sweep.  A layer's leaf
    visibility queries are independent too, so they run as one
    :func:`~repro.envelope.flat_visibility.batch_visible_parts` call
    over the stacked inherited profiles (one group per leaf); no
    profile is ever materialised back to piece tuples.
    """
    import numpy as np

    import repro.envelope.engine as _engine
    from repro.envelope.flat import (
        FlatEnvelope,
        batch_merge,
        stack_envelopes,
    )
    from repro.envelope.flat_visibility import batch_visible_parts

    packed = (
        config.packed_profile()
        if config is not None
        else _engine.USE_PACKED_PROFILE
    )
    use_pool = config is not None and config.resolved_workers() > 1
    if use_pool:
        from repro.parallel_exec import maybe_batch_merge

    if packed:
        from repro.envelope.packed import PackedProfile
    else:
        PackedProfile = None

    tree = pct.tree
    out = Phase2Result()
    inherited: dict[int, FlatEnvelope] = {
        tree.root.index: FlatEnvelope.empty()
    }

    def intermediate_flat(node) -> "object":
        flat = pct.flat_envelopes.get(node.index)
        if flat is None:  # PCT built by the Python engine
            flat = FlatEnvelope.from_envelope(pct.envelope_of(node))
        return flat

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None

        internals = [node for node in level if not node.is_leaf]
        if internals:
            parents = [inherited[node.index] for node in internals]
            inters = [intermediate_flat(node.left) for node in internals]
            # Windowed splice merges, batched: only the overlapped
            # window of each inherited profile enters the sweep;
            # empty intermediates pass the parent through shared
            # (exactly the scalar ``splice_merge`` semantics).
            live = [i for i in range(len(internals)) if len(inters[i])]
            spans = []
            for i in live:
                P, B = parents[i], inters[i]
                spans.append(
                    P.pieces_overlapping(float(B.ya[0]), float(B.yb[-1]))
                )
            def merge_kernel():
                merged: list = [None] * len(internals)
                ops_l = [0] * len(internals)
                cross_l = [0] * len(internals)
                sizes_l = [0] * len(internals)
                if not live:
                    return merged, ops_l, cross_l, sizes_l
                lefts = stack_envelopes(
                    [
                        parents[i].window(lo, hi)
                        for i, (lo, hi) in zip(live, spans)
                    ]
                )
                rights = stack_envelopes([inters[i] for i in live])
                res = None
                if use_pool:
                    res = maybe_batch_merge(
                        lefts, rights, eps=eps, config=config
                    )
                if res is None:
                    res = batch_merge(lefts, rights, eps=eps)
                live_ops = res.ops.tolist()
                live_cross = np.diff(
                    np.searchsorted(
                        res.cross_group, np.arange(len(live) + 1)
                    )
                ).tolist()
                groups = [res.merged.group(g) for g in range(len(live))]
                if _fi.ARMED:
                    groups = _fi.corrupt_env_list("phase2_merge", groups)
                # Validate before any splice: the parents are only
                # ever read, so the python fallback recomputes every
                # merge of this layer from intact state.
                for m in groups:
                    _guard.check_flat(
                        "phase2_merge", m.ya, m.za, m.yb, m.zb
                    )
                for g, i in enumerate(live):
                    lo, hi = spans[g]
                    m = groups[g]
                    if PackedProfile is not None:
                        # Accumulate the right child's profile into a
                        # fresh packed buffer: one allocation + three
                        # segment writes instead of five per-field
                        # concatenates.  The parent is only read, so
                        # the left child keeps sharing it; the moved
                        # element count equals the result size — the
                        # quantity ``pieces_materialised`` reports.
                        new = PackedProfile.from_splice(
                            parents[i], lo, hi, m.ya, m.za, m.yb, m.zb, m.source
                        )
                    else:
                        new = parents[i].splice(
                            lo, hi, m.ya, m.za, m.yb, m.zb, m.source
                        )
                    merged[i] = new
                    ops_l[i] = live_ops[g]
                    cross_l[i] = live_cross[g]
                    sizes_l[i] = new.size
                return merged, ops_l, cross_l, sizes_l

            def merge_fallback():
                # Scalar splice merges per node (the python engine's
                # exact semantics) — results, ops, crossing counts and
                # the materialised piece counts are bit-identical to
                # the batched kernel's.
                merged: list = [None] * len(internals)
                ops_l = [0] * len(internals)
                cross_l = [0] * len(internals)
                sizes_l = [0] * len(internals)
                for i in live:
                    res = splice_merge(
                        parents[i].to_envelope(),
                        inters[i].to_envelope(),
                        eps=eps,
                        engine="python",
                    )
                    env = FlatEnvelope.from_envelope(res.envelope)
                    if PackedProfile is not None:
                        env = PackedProfile.pack(env)
                    merged[i] = env
                    ops_l[i] = res.ops
                    cross_l[i] = len(res.crossings)
                    sizes_l[i] = res.materialised
                return merged, ops_l, cross_l, sizes_l

            merged_envs, ops_list, cross_counts, sizes = _guard.guarded_call(
                "phase2_merge", merge_kernel, merge_fallback
            )
            for i in range(len(internals)):
                if merged_envs[i] is None:  # empty intermediate: share
                    merged_envs[i] = parents[i]

        leaves = [node for node in level if node.is_leaf]
        if leaves:
            leaf_envs = [inherited[node.index] for node in leaves]
            lsegs = [
                image_segments[tree.order[node.lo]] for node in leaves
            ]

            def vis_kernel():
                res = batch_visible_parts(
                    stack_envelopes(leaf_envs),
                    lsegs,
                    groups=np.arange(len(leaves)),
                    eps=eps,
                ).results()
                if _fi.ARMED:
                    res = _fi.corrupt_vis_list("phase2_visibility", res)
                for s, v in zip(lsegs, res):
                    _guard.check_visibility(
                        "phase2_visibility", v, s.y1, s.y2, eps
                    )
                return res

            def vis_fallback():
                # Scalar per-leaf queries — the python engine's path.
                return [
                    visible_parts(s, e.to_envelope(), eps=eps)
                    for s, e in zip(lsegs, leaf_envs)
                ]

            leaf_vis = _guard.guarded_call(
                "phase2_visibility", vis_kernel, vis_fallback
            )

        mi = li = 0
        for node in level:
            P = inherited.pop(node.index)
            stats.inherited_pieces += P.size
            if node.is_leaf:
                edge = tree.order[node.lo]
                vis = leaf_vis[li]
                li += 1
                out.visibility[edge] = vis
                out.ops += vis.ops
                stats.ops += vis.ops
                if par is not None:
                    par.spawn(vis.ops, _merge_depth(vis.ops))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = P
                ops = ops_list[mi]
                n_cross = cross_counts[mi]
                inherited[node.right.index] = merged_envs[mi]
                out.ops += ops
                out.crossings += n_cross
                out.pieces_materialised += sizes[mi]
                stats.merges += 1
                stats.ops += ops
                stats.crossings += n_cross
                if par is not None:
                    par.spawn(ops, _merge_depth(ops))
                mi += 1
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        out.layers.append(stats)
    return out


def _phase2_persistent(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    *,
    use_acg: bool,
    measure_sharing: bool,
) -> Phase2Result:
    from repro.hsr.acg import acg_splice_merge  # local: avoid cycle

    tree = pct.tree
    out = Phase2Result()
    alloc_before = treap.allocation_count()
    inherited: dict[int, treap.Root] = {tree.root.index: None}

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None
        for node in level:
            root = inherited.pop(node.index)
            if node.is_leaf:
                edge = tree.order[node.lo]
                vis = penv_visible_parts(
                    root, image_segments[edge], eps=eps
                )
                out.visibility[edge] = vis
                cost = vis.ops + _locate_cost(root)
                out.ops += cost
                stats.ops += cost
                if par is not None:
                    par.spawn(cost, _merge_depth(cost))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = root  # shared version
                intermediate = pct.envelope_of(node.left)
                if use_acg:
                    new_root, res = acg_splice_merge(
                        root, intermediate, eps=eps
                    )
                else:
                    new_root, res = penv_splice_merge(
                        root, intermediate, eps=eps
                    )
                inherited[node.right.index] = new_root
                cost = res.ops + _locate_cost(root)
                out.ops += cost
                out.crossings += len(res.crossings)
                stats.merges += 1
                stats.ops += cost
                stats.crossings += len(res.crossings)
                if par is not None:
                    par.spawn(cost, _merge_depth(cost))
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        if measure_sharing:
            roots = list(inherited.values())
            total, shared = treap.count_shared_nodes(*roots)
            stats.total_nodes = total
            stats.shared_nodes = shared
        out.layers.append(stats)
    out.nodes_allocated = treap.allocation_count() - alloc_before
    return out


def _locate_cost(root: treap.Root) -> int:
    """O(log n) tree-descent charge for splice boundary location."""
    n = treap.size(root)
    return max(1, int(math.log2(n + 1)))
