"""Phase 2: actual profiles by systolic prefix propagation.

From the paper (§2.1/§3.1): starting at the PCT root, proceed layer by
layer toward the leaves.  Every node holds an *inherited* profile —
the actual profile ``P_i`` of all edges preceding its subtree — and
produces its children's inherited profiles:

    left.inherited  = v.inherited                      (shared!)
    right.inherited = merge(v.inherited, Phase1(left))

At a leaf with front-to-back position ``i`` the inherited profile is
exactly ``P_{i-1}``, and the visible portion of edge ``e_i`` is the
part of its projection above it.

Two interchangeable engines compute the merges (same output, different
cost profile — experiment E11's ablation):

``direct``
    Array-envelope merges by local splice
    (:func:`repro.envelope.splice.splice_merge`): only the window of
    the inherited profile overlapping the intermediate envelope goes
    through the merge sweep, but each merge still *copies* the full
    inherited profile into the child's (per-layer copying Θ(Σ |P_i|),
    reported as ``pieces_materialised`` — the cost the persistent
    representation is there to avoid).
``persistent``
    Profiles are persistent versions; a merge splices only the
    y-range of the intermediate profile and shares the rest (paper
    Figs. 1/3 — this is where the persistent structure earns the
    output-sensitive work bound).  Left children share their parent's
    version outright: zero copying.  Two store backends
    (:data:`repro.persistence.envelope_store.BACKENDS`): the default
    chunked **rope** drives each layer's merges and leaf queries
    through the batched numpy kernels on the chunks' cached lane
    blocks; the per-node **treap** is the scalar parity oracle.
``acg``
    Like ``persistent``, but crossings inside the spliced range are
    located by hull-pruned searches on the augmented (Chazelle–Guibas
    style) structure instead of a linear sweep — per treap node
    (:mod:`repro.hsr.acg`) or per rope chunk
    (:mod:`repro.hsr.acg_rope`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.envelope.chain import Envelope, Piece
from repro.envelope.engine import resolve_engine
from repro.envelope.splice import splice_merge
from repro.envelope.visibility import VisibilityResult, visible_parts
from repro.errors import HsrError
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.hsr.pct import PCT
from repro.persistence import rope as _rope
from repro.persistence import treap
from repro.persistence.envelope_store import (
    penv_splice_merge,
    penv_visible_parts,
    resolve_backend,
)
from repro.pram.tracker import PramTracker
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = ["Phase2Result", "run_phase2", "PHASE2_MODES"]

PHASE2_MODES = ("direct", "persistent", "acg")


@dataclass
class LayerStats:
    """Per-PCT-layer instrumentation (the paper's analysis is
    per-layer: "all the intersections at the next layer of PCT")."""

    depth: int
    merges: int = 0
    ops: int = 0
    crossings: int = 0
    inherited_pieces: int = 0
    shared_nodes: int = 0
    total_nodes: int = 0


@dataclass
class Phase2Result:
    """Visibility per edge + instrumentation."""

    visibility: dict[int, VisibilityResult] = field(default_factory=dict)
    ops: int = 0
    crossings: int = 0
    layers: list[LayerStats] = field(default_factory=list)
    #: persistent modes: piece slots allocated during phase 2 (treap
    #: nodes, or slots written into fresh rope chunks — same unit).
    nodes_allocated: int = 0
    #: direct mode: envelope pieces materialised (the copying cost).
    pieces_materialised: int = 0


def run_phase2(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    *,
    mode: str = "persistent",
    eps: float = EPS,
    tracker: Optional[PramTracker] = None,
    measure_sharing: bool = False,
    engine: Optional[str] = None,
    config=None,
    backend: Optional[str] = None,
) -> Phase2Result:
    """Run Phase 2 over a built PCT (see module docstring).

    ``engine`` selects the envelope merge kernel for the ``direct``
    mode's array merges and for the rope backend's batched layer
    merges (see :mod:`repro.envelope.engine`).  ``backend`` selects
    the persistent store for the ``persistent``/``acg`` modes
    (``"rope"``/``"treap"``; defaults to the process-wide
    :data:`~repro.persistence.envelope_store.PERSISTENT_BACKEND`).
    A ``config`` (:class:`repro.config.HsrConfig`) with ``workers > 1``
    splits the ``direct`` mode's level merges across the
    :mod:`repro.parallel_exec` process pool, bit-exact.
    """
    if mode not in PHASE2_MODES:
        raise HsrError(
            f"unknown phase-2 mode {mode!r}; choose from {PHASE2_MODES}"
        )
    if mode == "direct":
        return _phase2_direct(
            pct, image_segments, eps, tracker, engine, config
        )
    if resolve_backend(backend) == "rope":
        return _phase2_persistent_rope(
            pct,
            image_segments,
            eps,
            tracker,
            use_acg=(mode == "acg"),
            measure_sharing=measure_sharing,
            engine=engine,
        )
    return _phase2_persistent(
        pct,
        image_segments,
        eps,
        tracker,
        use_acg=(mode == "acg"),
        measure_sharing=measure_sharing,
    )


def _merge_depth(ops: int) -> float:
    return max(1.0, math.log2(ops + 1))


def _phase2_direct(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    engine: Optional[str] = None,
    config=None,
) -> Phase2Result:
    if resolve_engine(engine) == "numpy":
        return _phase2_direct_flat(pct, image_segments, eps, tracker, config)
    tree = pct.tree
    out = Phase2Result()
    inherited: dict[int, Envelope] = {tree.root.index: Envelope.empty()}

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None
        for node in level:
            P = inherited.pop(node.index)
            stats.inherited_pieces += P.size
            if node.is_leaf:
                edge = tree.order[node.lo]
                vis = visible_parts(image_segments[edge], P, eps=eps)
                out.visibility[edge] = vis
                out.ops += vis.ops
                stats.ops += vis.ops
                if par is not None:
                    par.spawn(vis.ops, _merge_depth(vis.ops))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = P
                res = splice_merge(
                    P, pct.envelope_of(node.left), eps=eps, engine="python"
                )
                inherited[node.right.index] = res.envelope
                out.ops += res.ops
                out.crossings += len(res.crossings)
                out.pieces_materialised += res.materialised
                stats.merges += 1
                stats.ops += res.ops
                stats.crossings += len(res.crossings)
                if par is not None:
                    par.spawn(res.ops, _merge_depth(res.ops))
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        out.layers.append(stats)
    return out


def _phase2_direct_flat(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    config=None,
) -> Phase2Result:
    """``direct`` mode on the NumPy kernel.

    Inherited profiles stay as
    :class:`~repro.envelope.flat.FlatEnvelope` arrays through the
    merge cascade.  Each merge is the same local splice as the scalar
    engine's :func:`~repro.envelope.splice.splice_merge` — only the
    window of the inherited profile overlapping the intermediate
    envelope enters the sweep, located per node and spliced back with
    array concatenates — and, since a layer's merges are independent,
    all of a layer's windows run as *one*
    :func:`~repro.envelope.flat.batch_merge` sweep.  A layer's leaf
    visibility queries are independent too, so they run as one
    :func:`~repro.envelope.flat_visibility.batch_visible_parts` call
    over the stacked inherited profiles (one group per leaf); no
    profile is ever materialised back to piece tuples.
    """
    import numpy as np

    import repro.envelope.engine as _engine
    from repro.envelope.flat import (
        FlatEnvelope,
        batch_merge,
        stack_envelopes,
    )
    from repro.envelope.flat_visibility import batch_visible_parts

    packed = (
        config.packed_profile()
        if config is not None
        else _engine.USE_PACKED_PROFILE
    )
    use_pool = config is not None and config.resolved_workers() > 1
    if use_pool:
        from repro.parallel_exec import maybe_batch_merge

    if packed:
        from repro.envelope.packed import PackedProfile
    else:
        PackedProfile = None

    tree = pct.tree
    out = Phase2Result()
    inherited: dict[int, FlatEnvelope] = {
        tree.root.index: FlatEnvelope.empty()
    }

    def intermediate_flat(node) -> "object":
        flat = pct.flat_envelopes.get(node.index)
        if flat is None:  # PCT built by the Python engine
            flat = FlatEnvelope.from_envelope(pct.envelope_of(node))
        return flat

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None

        internals = [node for node in level if not node.is_leaf]
        if internals:
            parents = [inherited[node.index] for node in internals]
            inters = [intermediate_flat(node.left) for node in internals]
            # Windowed splice merges, batched: only the overlapped
            # window of each inherited profile enters the sweep;
            # empty intermediates pass the parent through shared
            # (exactly the scalar ``splice_merge`` semantics).
            live = [i for i in range(len(internals)) if len(inters[i])]
            spans = []
            for i in live:
                P, B = parents[i], inters[i]
                spans.append(
                    P.pieces_overlapping(float(B.ya[0]), float(B.yb[-1]))
                )
            def merge_kernel():
                merged: list = [None] * len(internals)
                ops_l = [0] * len(internals)
                cross_l = [0] * len(internals)
                sizes_l = [0] * len(internals)
                if not live:
                    return merged, ops_l, cross_l, sizes_l
                lefts = stack_envelopes(
                    [
                        parents[i].window(lo, hi)
                        for i, (lo, hi) in zip(live, spans)
                    ]
                )
                rights = stack_envelopes([inters[i] for i in live])
                res = None
                if use_pool:
                    res = maybe_batch_merge(
                        lefts, rights, eps=eps, config=config
                    )
                if res is None:
                    res = batch_merge(lefts, rights, eps=eps)
                live_ops = res.ops.tolist()
                live_cross = np.diff(
                    np.searchsorted(
                        res.cross_group, np.arange(len(live) + 1)
                    )
                ).tolist()
                groups = [res.merged.group(g) for g in range(len(live))]
                if _fi.ARMED:
                    groups = _fi.corrupt_env_list("phase2_merge", groups)
                # Validate before any splice: the parents are only
                # ever read, so the python fallback recomputes every
                # merge of this layer from intact state.
                for m in groups:
                    _guard.check_flat(
                        "phase2_merge", m.ya, m.za, m.yb, m.zb
                    )
                for g, i in enumerate(live):
                    lo, hi = spans[g]
                    m = groups[g]
                    if PackedProfile is not None:
                        # Accumulate the right child's profile into a
                        # fresh packed buffer: one allocation + three
                        # segment writes instead of five per-field
                        # concatenates.  The parent is only read, so
                        # the left child keeps sharing it; the moved
                        # element count equals the result size — the
                        # quantity ``pieces_materialised`` reports.
                        new = PackedProfile.from_splice(
                            parents[i], lo, hi, m.ya, m.za, m.yb, m.zb, m.source
                        )
                    else:
                        new = parents[i].splice(
                            lo, hi, m.ya, m.za, m.yb, m.zb, m.source
                        )
                    merged[i] = new
                    ops_l[i] = live_ops[g]
                    cross_l[i] = live_cross[g]
                    sizes_l[i] = new.size
                return merged, ops_l, cross_l, sizes_l

            def merge_fallback():
                # Scalar splice merges per node (the python engine's
                # exact semantics) — results, ops, crossing counts and
                # the materialised piece counts are bit-identical to
                # the batched kernel's.
                merged: list = [None] * len(internals)
                ops_l = [0] * len(internals)
                cross_l = [0] * len(internals)
                sizes_l = [0] * len(internals)
                for i in live:
                    res = splice_merge(
                        parents[i].to_envelope(),
                        inters[i].to_envelope(),
                        eps=eps,
                        engine="python",
                    )
                    env = FlatEnvelope.from_envelope(res.envelope)
                    if PackedProfile is not None:
                        env = PackedProfile.pack(env)
                    merged[i] = env
                    ops_l[i] = res.ops
                    cross_l[i] = len(res.crossings)
                    sizes_l[i] = res.materialised
                return merged, ops_l, cross_l, sizes_l

            merged_envs, ops_list, cross_counts, sizes = _guard.guarded_call(
                "phase2_merge", merge_kernel, merge_fallback
            )
            for i in range(len(internals)):
                if merged_envs[i] is None:  # empty intermediate: share
                    merged_envs[i] = parents[i]

        leaves = [node for node in level if node.is_leaf]
        if leaves:
            leaf_envs = [inherited[node.index] for node in leaves]
            lsegs = [
                image_segments[tree.order[node.lo]] for node in leaves
            ]

            def vis_kernel():
                res = batch_visible_parts(
                    stack_envelopes(leaf_envs),
                    lsegs,
                    groups=np.arange(len(leaves)),
                    eps=eps,
                ).results()
                if _fi.ARMED:
                    res = _fi.corrupt_vis_list("phase2_visibility", res)
                for s, v in zip(lsegs, res):
                    _guard.check_visibility(
                        "phase2_visibility", v, s.y1, s.y2, eps
                    )
                return res

            def vis_fallback():
                # Scalar per-leaf queries — the python engine's path.
                return [
                    visible_parts(s, e.to_envelope(), eps=eps)
                    for s, e in zip(lsegs, leaf_envs)
                ]

            leaf_vis = _guard.guarded_call(
                "phase2_visibility", vis_kernel, vis_fallback
            )

        mi = li = 0
        for node in level:
            P = inherited.pop(node.index)
            stats.inherited_pieces += P.size
            if node.is_leaf:
                edge = tree.order[node.lo]
                vis = leaf_vis[li]
                li += 1
                out.visibility[edge] = vis
                out.ops += vis.ops
                stats.ops += vis.ops
                if par is not None:
                    par.spawn(vis.ops, _merge_depth(vis.ops))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = P
                ops = ops_list[mi]
                n_cross = cross_counts[mi]
                inherited[node.right.index] = merged_envs[mi]
                out.ops += ops
                out.crossings += n_cross
                out.pieces_materialised += sizes[mi]
                stats.merges += 1
                stats.ops += ops
                stats.crossings += n_cross
                if par is not None:
                    par.spawn(ops, _merge_depth(ops))
                mi += 1
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        out.layers.append(stats)
    return out


def _phase2_persistent(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    *,
    use_acg: bool,
    measure_sharing: bool,
) -> Phase2Result:
    from repro.hsr.acg import acg_splice_merge  # local: avoid cycle

    tree = pct.tree
    out = Phase2Result()
    alloc_before = treap.allocation_count()
    inherited: dict[int, treap.Root] = {tree.root.index: None}

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None
        for node in level:
            root = inherited.pop(node.index)
            if node.is_leaf:
                edge = tree.order[node.lo]
                vis = penv_visible_parts(
                    root, image_segments[edge], eps=eps
                )
                out.visibility[edge] = vis
                cost = vis.ops + _locate_cost(root)
                out.ops += cost
                stats.ops += cost
                if par is not None:
                    par.spawn(cost, _merge_depth(cost))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = root  # shared version
                intermediate = pct.envelope_of(node.left)
                if use_acg:
                    new_root, res = acg_splice_merge(
                        root, intermediate, eps=eps
                    )
                else:
                    new_root, res = penv_splice_merge(
                        root, intermediate, eps=eps
                    )
                inherited[node.right.index] = new_root
                cost = res.ops + _locate_cost(root)
                out.ops += cost
                out.crossings += len(res.crossings)
                stats.merges += 1
                stats.ops += cost
                stats.crossings += len(res.crossings)
                if par is not None:
                    par.spawn(cost, _merge_depth(cost))
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        if measure_sharing:
            roots = list(inherited.values())
            total, shared = treap.count_shared_nodes(*roots)
            stats.total_nodes = total
            stats.shared_nodes = shared
        out.layers.append(stats)
    out.nodes_allocated = treap.allocation_count() - alloc_before
    return out


def _locate_cost(root: treap.Root) -> int:
    """O(log n) tree-descent charge for splice boundary location."""
    return _size_locate_cost(treap.size(root))


def _size_locate_cost(n: int) -> int:
    """The boundary-location charge as a function of the profile's
    piece count only — identical for both persistent backends (the
    rope's two-level bisect is the same O(log n)), keeping the
    phase-2 ``ops`` accounting bit-exact across them."""
    return max(1, int(math.log2(n + 1)))


def _phase2_persistent_rope(
    pct: PCT,
    image_segments: Sequence[ImageSegment],
    eps: float,
    tracker: Optional[PramTracker],
    *,
    use_acg: bool,
    measure_sharing: bool,
    engine: Optional[str] = None,
) -> Phase2Result:
    """``persistent``/``acg`` modes on the rope backend.

    Identical propagation and accounting to the treap implementation
    (`ops` adds the same :func:`_size_locate_cost` charge; sharing is
    metered piece-weighted by
    :func:`~repro.persistence.rope.count_shared_chunks`), but on the
    numpy engine a layer's splice merges run as *one*
    :func:`~repro.envelope.flat.batch_merge` over the ropes' chunk-
    block windows and a layer's leaf queries as one
    :func:`~repro.envelope.flat_visibility.batch_visible_parts` —
    the windows never round-trip through per-piece python.  Each
    node's commit is the ordinary chunk-granular path copy (guard
    site ``rope_splice``).
    """
    if use_acg:
        from repro.hsr.acg_rope import acg_rope_splice_merge

    batched = not use_acg and resolve_engine(engine) == "numpy"
    tree = pct.tree
    out = Phase2Result()
    alloc_before = _rope.allocation_count()
    inherited: dict[int, _rope.Rope] = {tree.root.index: _rope.EMPTY}

    for level in tree.levels():
        stats = LayerStats(depth=level[0].depth)
        par_ctx = tracker.parallel() if tracker is not None else None
        par = par_ctx.__enter__() if par_ctx is not None else None

        merges: dict[int, tuple[_rope.Rope, int, int]] = {}
        leaf_vis: dict[int, VisibilityResult] = {}
        if batched:
            merges = _rope_layer_merges(
                pct, level, inherited, eps,
                measure_sharing=measure_sharing,
            )
            leaf_vis = _rope_layer_visibility(
                tree, level, inherited, image_segments, eps
            )

        for node in level:
            root = inherited.pop(node.index)
            if node.is_leaf:
                edge = tree.order[node.lo]
                if node.index in leaf_vis:
                    vis = leaf_vis[node.index]
                else:
                    vis = _rope.rope_visible_parts(
                        root, image_segments[edge], eps=eps
                    )
                out.visibility[edge] = vis
                cost = vis.ops + _size_locate_cost(root.total)
                out.ops += cost
                stats.ops += cost
                if par is not None:
                    par.spawn(cost, _merge_depth(cost))
            else:
                assert node.left is not None and node.right is not None
                inherited[node.left.index] = root  # shared version
                if node.index in merges:
                    new_root, ops, n_cross = merges[node.index]
                else:
                    intermediate = pct.envelope_of(node.left)
                    if use_acg:
                        new_root, res = acg_rope_splice_merge(
                            root, intermediate, eps=eps
                        )
                    else:
                        new_root, res = _rope.rope_splice_merge(
                            root, intermediate, eps=eps
                        )
                    ops, n_cross = res.ops, len(res.crossings)
                inherited[node.right.index] = new_root
                cost = ops + _size_locate_cost(root.total)
                out.ops += cost
                out.crossings += n_cross
                stats.merges += 1
                stats.ops += cost
                stats.crossings += n_cross
                if par is not None:
                    par.spawn(cost, _merge_depth(cost))
        if par_ctx is not None:
            par_ctx.__exit__(None, None, None)
        if measure_sharing:
            total, shared = _rope.count_shared_pieces(
                *inherited.values()
            )
            stats.total_nodes = total
            stats.shared_nodes = shared
        out.layers.append(stats)
    out.nodes_allocated = _rope.allocation_count() - alloc_before
    return out


def _rope_layer_merges(
    pct: PCT,
    level,
    inherited: dict[int, "_rope.Rope"],
    eps: float,
    *,
    measure_sharing: bool = False,
) -> dict[int, tuple["_rope.Rope", int, int]]:
    """One batched sweep for all of a layer's splice merges.

    Returns ``{node.index: (new_rope, ops, n_crossings)}`` for every
    internal node of the level.  The sweep runs under the
    ``phase2_merge`` guard (fallback: per-node scalar merges over the
    same windows — bit-identical results); each commit then runs the
    normal chunk path copy under its own ``rope_splice`` guard.

    On the happy path each merged run stays in lane form end to end —
    :func:`~repro.persistence.rope.commit_splice_lanes` slices the
    successor's fresh chunks out of one commit block without ever
    materialising a :class:`Piece`.  Under ``measure_sharing`` the
    commits switch to the scalar piece path: E5's layer sharing meter
    (:func:`~repro.persistence.rope.count_shared_pieces`) counts piece
    *object* identity, which only exists when boundary slots refold as
    the same tuples — results are bit-exact either way, only the
    sharing accounting granularity differs.
    """
    import numpy as np

    from repro.envelope.flat import (
        FlatEnvelope,
        batch_merge,
        stack_envelopes,
    )

    results: dict[int, tuple["_rope.Rope", int, int]] = {}
    live: list[tuple] = []  # (node, root, SpliceRange, inter, flat)
    for node in level:
        if node.is_leaf:
            continue
        root = inherited[node.index]
        inter = pct.envelope_of(node.left)
        if not inter.pieces:
            results[node.index] = (root, 0, 0)
            continue
        if root.total == 0:
            results[node.index] = (
                _rope.rope_from_envelope(inter),
                inter.size,
                0,
            )
            continue
        ya, yb = inter.y_span()
        flat = pct.flat_envelopes.get(node.left.index)
        if flat is None:  # PCT built by the python engine
            flat = FlatEnvelope.from_envelope(inter)
        live.append((node, root, _rope.SpliceRange(root, ya, yb), flat))
    if not live:
        return results

    def kernel():
        lefts = stack_envelopes(
            [FlatEnvelope(*sr.window_lanes()) for _, _, sr, _ in live]
        )
        rights = stack_envelopes([flat for *_, flat in live])
        res = batch_merge(lefts, rights, eps=eps)
        ops = res.ops.tolist()
        cross = np.diff(
            np.searchsorted(res.cross_group, np.arange(len(live) + 1))
        ).tolist()
        groups = [res.merged.group(g) for g in range(len(live))]
        if _fi.ARMED:
            groups = _fi.corrupt_env_list("phase2_merge", groups)
        for m in groups:
            _guard.check_flat("phase2_merge", m.ya, m.za, m.yb, m.zb)
        out = []
        for g, m in enumerate(groups):
            if measure_sharing:
                payload = list(
                    map(
                        Piece,
                        m.ya.tolist(),
                        m.za.tolist(),
                        m.yb.tolist(),
                        m.zb.tolist(),
                        m.source.tolist(),
                    )
                )
            else:
                payload = (m.ya, m.za, m.yb, m.zb, m.source)
            out.append((payload, ops[g], cross[g]))
        return out

    def fallback():
        # Scalar sweeps per node over the same extracted windows —
        # exactly what rope_splice_merge runs on the python engine.
        from repro.envelope.merge import merge_envelopes

        out = []
        for _, _, sr, flat in live:
            res = merge_envelopes(
                Envelope(sr.mid_pieces()), flat.to_envelope(), eps=eps
            )
            out.append(
                (list(res.envelope.pieces), res.ops, len(res.crossings))
            )
        return out

    per_node = _guard.guarded_call("phase2_merge", kernel, fallback)
    for (node, root, sr, _), (payload, ops, n_cross) in zip(
        live, per_node
    ):
        carry = sr.carry
        if carry is not None and not (carry.ya < carry.yb):
            carry = None
        if isinstance(payload, tuple):  # lane-native happy path
            new_root = _rope.commit_splice_lanes(root, sr, payload, carry)
        else:  # scalar pieces: measure_sharing, or the guard fallback
            pieces = payload + [carry] if carry is not None else payload
            new_root = _rope.commit_splice(root, sr, pieces)
        results[node.index] = (new_root, ops, n_cross)
    return results


def _rope_layer_visibility(
    tree,
    level,
    inherited: dict[int, "_rope.Rope"],
    image_segments: Sequence[ImageSegment],
    eps: float,
) -> dict[int, VisibilityResult]:
    """One batched visibility query for all of a layer's leaves, over
    the ropes' range-extracted chunk-block windows (guard site
    ``phase2_visibility``; fallback: scalar per-leaf queries)."""
    import numpy as np

    from repro.envelope.flat import FlatEnvelope, stack_envelopes
    from repro.envelope.flat_visibility import batch_visible_parts

    leaves = [node for node in level if node.is_leaf]
    if not leaves:
        return {}
    segs = [image_segments[tree.order[node.lo]] for node in leaves]
    windows = []
    for node, seg in zip(leaves, segs):
        root = inherited[node.index]
        if seg.is_vertical:
            ya, yb = seg.y1, seg.y1 + 1e-12
        else:
            ya, yb = seg.y1, seg.y2
        windows.append(FlatEnvelope(*_rope.range_lanes(root, ya, yb)))

    def kernel():
        res = batch_visible_parts(
            stack_envelopes(windows),
            segs,
            groups=np.arange(len(leaves)),
            eps=eps,
        ).results()
        if _fi.ARMED:
            res = _fi.corrupt_vis_list("phase2_visibility", res)
        for s, v in zip(segs, res):
            _guard.check_visibility(
                "phase2_visibility", v, s.y1, s.y2, eps
            )
        return res

    def fallback():
        # Scalar per-leaf queries — the python engine's path.
        return [
            _rope.rope_visible_parts(inherited[n.index], s, eps=eps)
            for n, s in zip(leaves, segs)
        ]

    vis = _guard.guarded_call("phase2_visibility", kernel, fallback)
    return {n.index: v for n, v in zip(leaves, vis)}
