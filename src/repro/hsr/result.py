"""Hidden-surface-removal output: the visibility map.

The algorithm's output is *object-space* and device-independent
(paper §1.1): a combinatorial description of the visible image — a
planar graph in the image (zy) plane whose edges are the visible
sub-segments of terrain edges and whose vertices are their endpoints
(original vertex images and profile crossings).  The output size ``k``
is the number of vertices plus edges of this graph, which is what
Theorem 3.1's bound is sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, NamedTuple, Optional

from repro.envelope.visibility import VisibilityResult
from repro.geometry.segments import ImageSegment

__all__ = ["VisibleSegment", "VisibilityMap", "HsrStats", "HsrResult"]

#: Rounding grid for identifying coincident image vertices.
_VERTEX_QUANTUM = 1e-6


class VisibleSegment(NamedTuple):
    """One visible sub-segment of a terrain edge in the image plane.

    Degenerate (``ya == yb``) entries record visible vertically-
    projected edges, which appear as single points in the image.
    """

    edge: int
    ya: float
    za: float
    yb: float
    zb: float

    @property
    def is_point(self) -> bool:
        return self.ya == self.yb

    @property
    def width(self) -> float:
        return self.yb - self.ya


class VisibilityMap:
    """The visible image as a collection of :class:`VisibleSegment`.

    Construction is incremental (the pipelines append per-edge results
    via :meth:`add_edge_result`); derived quantities (vertex count,
    ``k``) are computed lazily and cached.
    """

    def __init__(self) -> None:
        self.segments: list[VisibleSegment] = []
        self._by_edge: dict[int, list[VisibleSegment]] = {}
        self._k: Optional[int] = None

    # -- construction ----------------------------------------------------

    def add_segment(self, seg: VisibleSegment) -> None:
        self.segments.append(seg)
        self._by_edge.setdefault(seg.edge, []).append(seg)
        self._k = None

    def add_edge_result(
        self, edge: int, image_seg: ImageSegment, result: VisibilityResult
    ) -> None:
        """Record the visible parts of one edge.

        ``image_seg`` is the edge's image projection; each visible part
        is clipped out of it.  Vertical projections store their top
        point.
        """
        for part in result.parts:
            if image_seg.is_vertical or part.ya == part.yb:
                self.add_segment(
                    VisibleSegment(
                        edge,
                        part.ya,
                        image_seg.top,
                        part.ya,
                        image_seg.top,
                    )
                )
            else:
                sub = image_seg.subsegment(part.ya, part.yb)
                self.add_segment(
                    VisibleSegment(edge, sub.y1, sub.z1, sub.y2, sub.z2)
                )

    # -- queries -----------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def visible_edges(self) -> set[int]:
        """Terrain edges with at least one visible part."""
        return set(self._by_edge)

    def edge_intervals(self, edge: int) -> list[tuple[float, float]]:
        """Visible y-intervals of one edge, sorted."""
        return sorted(
            (s.ya, s.yb) for s in self._by_edge.get(edge, [])
        )

    def per_edge_intervals(self) -> dict[int, list[tuple[float, float]]]:
        return {e: self.edge_intervals(e) for e in self._by_edge}

    def vertices(self) -> set[tuple[float, float]]:
        """Distinct image vertices (quantised endpoint coordinates)."""
        q = _VERTEX_QUANTUM
        out: set[tuple[float, float]] = set()
        for s in self.segments:
            out.add((round(s.ya / q) * q, round(s.za / q) * q))
            out.add((round(s.yb / q) * q, round(s.zb / q) * q))
        return out

    @property
    def k(self) -> int:
        """Output size: image vertices + image edges (paper §1.1)."""
        if self._k is None:
            n_points = sum(1 for s in self.segments if s.is_point)
            proper = self.n_segments - n_points
            self._k = len(self.vertices()) + proper
        return self._k

    def total_visible_length(self) -> float:
        """Total arc length of the visible image (a robust scalar for
        cross-algorithm comparison)."""
        total = 0.0
        for s in self.segments:
            dy = s.yb - s.ya
            dz = s.zb - s.za
            total += (dy * dy + dz * dz) ** 0.5
        return total

    # -- comparison ---------------------------------------------------------

    def approx_same(
        self, other: "VisibilityMap", *, tol: float = 1e-6
    ) -> bool:
        """Structural comparison of two visibility maps.

        Two maps agree when every edge has the same visible y-intervals
        up to ``tol`` (interval lists are merged before comparison so a
        part split in two by one algorithm still matches).
        """
        edges = self.visible_edges() | other.visible_edges()
        for e in edges:
            a = _merge_intervals(self.edge_intervals(e), tol)
            b = _merge_intervals(other.edge_intervals(e), tol)
            if len(a) != len(b):
                return False
            for (a1, a2), (b1, b2) in zip(a, b):
                if abs(a1 - b1) > tol or abs(a2 - b2) > tol:
                    return False
        return True

    def difference_report(
        self, other: "VisibilityMap", *, tol: float = 1e-6
    ) -> list[str]:
        """Human-readable mismatch list (empty when maps agree)."""
        report: list[str] = []
        edges = self.visible_edges() | other.visible_edges()
        for e in sorted(edges):
            a = _merge_intervals(self.edge_intervals(e), tol)
            b = _merge_intervals(other.edge_intervals(e), tol)
            if a != b and (
                len(a) != len(b)
                or any(
                    abs(x1 - y1) > tol or abs(x2 - y2) > tol
                    for (x1, x2), (y1, y2) in zip(a, b)
                )
            ):
                report.append(f"edge {e}: {a} vs {b}")
        return report

    def summary(self) -> str:
        return (
            f"VisibilityMap: {self.n_segments} visible segments over"
            f" {len(self.visible_edges())} edges, k={self.k}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.summary()}>"


def _merge_intervals(
    intervals: Iterable[tuple[float, float]], tol: float
) -> list[tuple[float, float]]:
    """Merge touching/overlapping intervals (within ``tol``)."""
    out: list[tuple[float, float]] = []
    for ya, yb in sorted(intervals):
        if out and ya <= out[-1][1] + tol:
            out[-1] = (out[-1][0], max(out[-1][1], yb))
        else:
            out.append((ya, yb))
    return out


@dataclass
class HsrStats:
    """Instrumentation from one HSR run."""

    n_edges: int = 0
    k: int = 0
    ops: int = 0
    crossings_found: int = 0
    wall_time_s: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, float]:
        row: dict[str, float] = {
            "n": self.n_edges,
            "k": self.k,
            "ops": self.ops,
            "crossings": self.crossings_found,
            "seconds": self.wall_time_s,
        }
        row.update(self.extra)
        return row


@dataclass
class HsrResult:
    """Output + instrumentation of an HSR pipeline run.

    ``reliability`` carries the run's
    :class:`~repro.reliability.guard.ReliabilityReport` when the
    pipeline ran under guarded dispatch — deliberately *not* part of
    ``stats.extra``, which the engine-parity suites compare bit-exact
    (a degraded run's stats are identical to a healthy one's; only the
    incident log differs).
    """

    visibility_map: VisibilityMap
    stats: HsrStats
    order: list[int] = field(default_factory=list)
    tracker: object = None  # Optional[PramTracker]; object to avoid import cycle
    reliability: object = None  # Optional[ReliabilityReport]; same reason

    @property
    def k(self) -> int:
        return self.visibility_map.k
