"""Naive Θ(n²) object-space baseline.

For every edge, find all edges in front of it by pairwise comparison
(the in-front relation is decidable per pair because non-crossing
projections keep a constant x-order over their common y-range), build
the occluders' upper envelope from scratch, and clip.

This is the "worst-case optimal" style of algorithm the paper's
introduction contrasts with: its cost is Θ(n²) *regardless of the
output size*, which is exactly what experiment E3's crossover exposes
— for heavily occluded scenes (small ``k``) the output-sensitive
algorithms win by a growing factor.
"""

from __future__ import annotations

import time

from repro.envelope.build import build_envelope
from repro.envelope.visibility import visible_parts
from repro.geometry.primitives import EPS
from repro.hsr.result import HsrResult, HsrStats, VisibilityMap
from repro.ordering.sweep import in_front_comparison
from repro.terrain.model import Terrain

__all__ = ["NaiveHSR"]


class NaiveHSR:
    """All-pairs occlusion baseline (see module docstring)."""

    def __init__(self, *, eps: float = EPS):
        self.eps = eps

    def run(self, terrain: Terrain) -> HsrResult:
        t0 = time.perf_counter()
        map_segs = terrain.map_segments()
        image_segs = terrain.image_segments()
        n = len(map_segs)
        vmap = VisibilityMap()
        ops = 0
        for e in range(n):
            occluders = []
            for f in range(n):
                if f == e:
                    continue
                ops += 1
                if in_front_comparison(map_segs[f], map_segs[e]) == 1:
                    occluders.append(image_segs[f])
            env_res = build_envelope(occluders, eps=self.eps)
            ops += env_res.ops
            res = visible_parts(image_segs[e], env_res.envelope, eps=self.eps)
            ops += res.ops
            vmap.add_edge_result(e, image_segs[e], res)
        stats = HsrStats(
            n_edges=n,
            k=vmap.k,
            ops=ops,
            wall_time_s=time.perf_counter() - t0,
        )
        return HsrResult(vmap, stats)
