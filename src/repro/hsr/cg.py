"""Static Chazelle–Guibas structure over a profile (paper Fig. 2).

A balanced binary tree over the pieces of one envelope; every node is
augmented with the lower and upper convex chains of its span's
vertices (the paper's ACG: "we augment each edge ab of the CG data
structure with the lower convex chain of the vertices of the profile
between a and b", §3.1, following Preparata–Vitter).

Supported queries:

* :meth:`ProfileIndex.first_intersection` — the leftmost transversal
  crossing of a segment with the profile at ``y >= y_from``; the CG
  search of Lemma 3.6, descending level by level with an ``O(log h)``
  hull probe per node — ``O(log² m)`` total, which experiment E6
  verifies by probe counting.
* :meth:`ProfileIndex.all_intersections` — every crossing, via the
  Lemma 3.2 recursion: split the segment at the middle diagonal and
  recurse into both halves (the two halves are independent — the
  parallel tasks of the paper's processor allocation).

This static structure is the validation/benchmark twin of the
shared persistent variant in :mod:`repro.hsr.acg`; construction cost
and query probes here correspond to Lemmas 3.3–3.5 (E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.envelope.chain import Envelope, Piece
from repro.geometry.convex import (
    hull_extreme_index,
    lower_hull_presorted,
    upper_hull_presorted,
)
from repro.geometry.primitives import EPS, Point2
from repro.geometry.segments import ImageSegment

__all__ = ["CGNode", "ProfileIndex"]


@dataclass
class CGNode:
    """Tree node spanning the contiguous piece range ``[lo, hi)``."""

    lo: int
    hi: int
    ya: float
    yb: float
    contiguous: bool
    lower: tuple[Point2, ...]
    upper: tuple[Point2, ...]
    left: Optional["CGNode"] = None
    right: Optional["CGNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.hi - self.lo == 1


class ProfileIndex:
    """Balanced hull-augmented tree over an envelope (see module doc).

    Attributes
    ----------
    build_ops:
        Hull points processed during construction — the Lemma 3.3/3.4
        build cost measured by experiment E7.
    """

    def __init__(self, env: Envelope, *, eps: float = EPS):
        self.env = env
        self.eps = eps
        self.build_ops = 0
        self.root: Optional[CGNode] = (
            self._build(0, env.size) if env.size else None
        )

    # -- construction ----------------------------------------------------

    def _build(self, lo: int, hi: int) -> CGNode:
        pieces = self.env.pieces
        if hi - lo == 1:
            p = pieces[lo]
            pts = (Point2(p.ya, p.za), Point2(p.yb, p.zb))
            self.build_ops += 2
            lower = tuple(lower_hull_presorted(pts))
            upper = tuple(upper_hull_presorted(pts))
            return CGNode(lo, hi, p.ya, p.yb, True, lower, upper)
        mid = (lo + hi) // 2
        left = self._build(lo, mid)
        right = self._build(mid, hi)
        contiguous = (
            left.contiguous
            and right.contiguous
            and pieces[mid - 1].yb == pieces[mid].ya
        )
        pts = list(left.lower) + list(right.lower)
        self.build_ops += len(pts)
        lower = tuple(lower_hull_presorted(pts))
        pts = list(left.upper) + list(right.upper)
        self.build_ops += len(pts)
        upper = tuple(upper_hull_presorted(pts))
        return CGNode(
            lo, hi, left.ya, right.yb, contiguous, lower, upper, left, right
        )

    # -- queries -----------------------------------------------------------

    def _hull_extreme(
        self, hull: tuple[Point2, ...], a: float, b: float, *, maximize: bool
    ) -> float:
        i = hull_extreme_index(
            hull, lambda p: p.y - (a * p.x + b), maximize=maximize
        )
        p = hull[i]
        return p.y - (a * p.x + b)

    def first_intersection(
        self, seg: ImageSegment, *, y_from: Optional[float] = None
    ) -> tuple[Optional[tuple[float, float]], int]:
        """Leftmost transversal crossing of ``seg`` with the profile at
        ``y >= y_from`` (default: the segment's start).

        Returns ``((y, z) | None, probes)`` where ``probes`` counts
        visited tree nodes (each performing one ``O(log h)`` hull
        probe) — the Lemma 3.6 cost.
        """
        if self.root is None or seg.is_vertical:
            return (None, 0)
        a = seg.slope
        b = seg.z1 - a * seg.y1
        lo = seg.y1 if y_from is None else max(seg.y1, y_from)
        hi = seg.y2
        probes = 0

        def walk(node: Optional[CGNode], u: float, v: float):
            nonlocal probes
            if node is None or u >= v:
                return None
            if v <= node.ya or u >= node.yb:
                return None
            probes += 1
            if node.ya >= u and node.yb <= v:
                dmin = self._hull_extreme(node.lower, a, b, maximize=False)
                if dmin > self.eps:
                    return None
                dmax = self._hull_extreme(node.upper, a, b, maximize=True)
                if dmax < -self.eps:
                    return None
            if node.is_leaf:
                return self._piece_crossing(
                    self.env.pieces[node.lo], a, b, u, v
                )
            hit = walk(node.left, u, v)
            if hit is not None:
                return hit
            return walk(node.right, u, v)

        return (walk(self.root, lo, hi), probes)

    def _piece_crossing(
        self, piece: Piece, a: float, b: float, u: float, v: float
    ) -> Optional[tuple[float, float]]:
        pu = max(u, piece.ya)
        pv = min(v, piece.yb)
        if pu >= pv:
            return None
        du = piece.z_at(pu) - (a * pu + b)
        dv = piece.z_at(pv) - (a * pv + b)
        eps = self.eps
        su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
        sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
        if su * sv >= 0:
            return None
        t = du / (du - dv)
        w = pu + t * (pv - pu)
        if not (pu < w < pv):
            return None
        return (w, a * w + b)

    def all_intersections(
        self, seg: ImageSegment
    ) -> tuple[list[tuple[float, float]], int]:
        """All transversal crossings by repeated pruned descent: find
        any crossing, split the range there, recurse on both sides —
        ``O((k_s + 1))`` descents of ``O(log² m)`` probes each.

        (The faithful middle-diagonal recursion of Lemma 3.2, which
        exposes the two halves as *parallel* tasks, lives in
        :func:`repro.hsr.intersect.all_intersections_lemma32`; both
        return identical crossing sets.)
        """
        if self.root is None or seg.is_vertical:
            return ([], 0)
        a = seg.slope
        b = seg.z1 - a * seg.y1
        probes_total = 0
        found: list[tuple[float, float]] = []

        def crossings_in(u: float, v: float) -> None:
            nonlocal probes_total
            # Find any crossing in (u, v) by descent; then split there.
            hit, probes = self._first_in_range(a, b, u, v)
            probes_total += probes
            if hit is None:
                return
            y, z = hit
            found.append((y, z))
            crossings_in(u, y - 1e-12)
            crossings_in(y + 1e-12, v)

        crossings_in(seg.y1, seg.y2)
        found.sort()
        return (found, probes_total)

    def _first_in_range(self, a: float, b: float, u: float, v: float):
        probes = 0

        def walk(node: Optional[CGNode], u: float, v: float):
            nonlocal probes
            if node is None or u >= v:
                return None
            if v <= node.ya or u >= node.yb:
                return None
            probes += 1
            if node.ya >= u and node.yb <= v:
                dmin = self._hull_extreme(node.lower, a, b, maximize=False)
                if dmin > self.eps:
                    return None
                dmax = self._hull_extreme(node.upper, a, b, maximize=True)
                if dmax < -self.eps:
                    return None
            if node.is_leaf:
                return self._piece_crossing(
                    self.env.pieces[node.lo], a, b, u, v
                )
            hit = walk(node.left, u, v)
            if hit is not None:
                return hit
            return walk(node.right, u, v)

        return (walk(self.root, u, v), probes)

    # -- metrics ------------------------------------------------------------

    def node_count(self) -> int:
        def count(node: Optional[CGNode]) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        return count(self.root)

    def height(self) -> int:
        def h(node: Optional[CGNode]) -> int:
            if node is None:
                return 0
            return 1 + max(h(node.left), h(node.right))

        return h(self.root)
