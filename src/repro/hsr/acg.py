"""Augmented Chazelle–Guibas search on persistent profile versions.

The paper (§3.1, Figs. 2–3) detects segment/profile intersections with
a balanced structure whose edges carry *lower convex chains* of the
profile vertices they span, searched level by level in ``O(log²)``.
Instead of keeping one such structure per profile, it keeps a single
shared one for all profiles of a PCT layer, with the chains stored
persistently.

Here the persistent treap that *is* the profile version doubles as
that structure: every (immutable) treap node lazily memoises an
augmentation —

    (support span, first/last values, contiguity flag,
     lower hull, upper hull of its subtree's piece vertices)

Because nodes are immutable and shared across versions, an
augmentation computed for one profile version is reused by every
layer-mate sharing that subtree — precisely the paper's "single ACG
structure for all the profiles".

Queries prune subtrees by evaluating the linear functional
``z - line(y)`` at hull extremes: if every subtree vertex lies
strictly above the query segment's line the subtree cannot contribute
a visibility flip (the segment is hidden throughout); strictly below
likewise (the segment is exposed throughout, flips can only occur at
support gaps, which are collected separately).  Only inconclusive
subtrees are opened, giving the output-sensitive search of Lemma 3.6.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import Crossing, MergeResult
from repro.geometry.convex import (
    hull_extreme_index,
    lower_hull_presorted,
    upper_hull_presorted,
)
from repro.geometry.primitives import EPS, Point2
from repro.geometry.segments import ImageSegment
from repro.persistence import treap
from repro.persistence.envelope_store import penv_splice_merge, penv_value_at
from repro.persistence.treap import Root, TreapNode

__all__ = [
    "Augment",
    "get_augment",
    "collect_gaps",
    "collect_flip_candidates",
    "winner_regions",
    "acg_splice_merge",
]


class Augment(NamedTuple):
    """Memoised subtree summary (see module docstring)."""

    ya_min: float
    za_first: float
    yb_max: float
    zb_last: float
    contiguous: bool
    lower: tuple[Point2, ...]
    upper: tuple[Point2, ...]


def get_augment(node: TreapNode) -> Augment:
    """The node's subtree augmentation, computed on first use and
    cached on the (immutable, version-shared) node."""
    aug = node.augment
    if aug is not None:
        return aug
    piece: Piece = node.value
    pts: list[Point2] = []
    left_aug = get_augment(node.left) if node.left is not None else None
    right_aug = get_augment(node.right) if node.right is not None else None
    if left_aug is not None:
        pts.extend(left_aug.lower)
    own = [Point2(piece.ya, piece.za), Point2(piece.yb, piece.zb)]
    pts.extend(own)
    if right_aug is not None:
        pts.extend(right_aug.lower)
    lower = tuple(lower_hull_presorted(pts))
    pts = []
    if left_aug is not None:
        pts.extend(left_aug.upper)
    pts.extend(own)
    if right_aug is not None:
        pts.extend(right_aug.upper)
    upper = tuple(upper_hull_presorted(pts))

    ya_min = left_aug.ya_min if left_aug is not None else piece.ya
    za_first = left_aug.za_first if left_aug is not None else piece.za
    yb_max = right_aug.yb_max if right_aug is not None else piece.yb
    zb_last = right_aug.zb_last if right_aug is not None else piece.zb
    contiguous = (
        (left_aug is None or (left_aug.contiguous and left_aug.yb_max == piece.ya))
        and (
            right_aug is None
            or (right_aug.contiguous and right_aug.ya_min == piece.yb)
        )
    )
    aug = Augment(ya_min, za_first, yb_max, zb_last, contiguous, lower, upper)
    node.augment = aug
    return aug


def _hull_min(hull: tuple[Point2, ...], a: float, b: float) -> float:
    """min over hull points of ``z - (a*y + b)``; hull points are
    stored as ``(y, z)`` so the functional is ``p.y - (a*p.x + b)``."""
    i = hull_extreme_index(hull, lambda p: p.y - (a * p.x + b), maximize=False)
    p = hull[i]
    return p.y - (a * p.x + b)


def _hull_max(hull: tuple[Point2, ...], a: float, b: float) -> float:
    i = hull_extreme_index(hull, lambda p: p.y - (a * p.x + b), maximize=True)
    p = hull[i]
    return p.y - (a * p.x + b)


class _ProbeCounter:
    __slots__ = ("probes",)

    def __init__(self) -> None:
        self.probes = 0


def collect_gaps(
    root: Root, lo: float, hi: float, counter: Optional[_ProbeCounter] = None
) -> list[tuple[float, float]]:
    """Maximal sub-intervals of ``[lo, hi]`` not covered by any piece
    of the profile version — each boundary is a visibility flip for a
    segment spanning it.  Cost O(log n + gaps) thanks to the
    contiguity prune."""
    out: list[tuple[float, float]] = []

    def walk(node: Root, a: float, b: float) -> None:
        if a >= b:
            return
        if counter is not None:
            counter.probes += 1
        if node is None:
            out.append((a, b))
            return
        aug = get_augment(node)
        if aug.contiguous and aug.ya_min <= a and b <= aug.yb_max:
            return
        if b <= aug.ya_min or a >= aug.yb_max:
            out.append((a, b))
            return
        piece: Piece = node.value
        walk(node.left, a, min(b, piece.ya))
        walk(node.right, max(a, piece.yb), b)

    walk(root, lo, hi)
    # Walk emits in-order but boundary effects can split a gap exactly
    # at a subtree frontier; merge adjacent.
    out.sort()
    merged: list[tuple[float, float]] = []
    for g in out:
        if merged and g[0] <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], g[1]))
        else:
            merged.append(g)
    return merged


def collect_flip_candidates(
    root: Root,
    seg: ImageSegment,
    lo: float,
    hi: float,
    *,
    eps: float = EPS,
    counter: Optional[_ProbeCounter] = None,
) -> list[float]:
    """y-values in ``(lo, hi)`` where ``seg`` may exchange dominance
    with the profile: transversal piece crossings and straddled jump
    junctions.  Hull pruning skips subtrees wholly above or wholly
    below the segment's supporting line (Lemma 3.6's search)."""
    a = seg.slope
    b = seg.z1 - a * seg.y1
    out: list[float] = []

    def walk(node: Root, u: float, v: float) -> None:
        if node is None or u >= v:
            return
        if counter is not None:
            counter.probes += 1
        aug = get_augment(node)
        if v <= aug.ya_min or u >= aug.yb_max:
            return
        if aug.ya_min >= u and aug.yb_max <= v:
            # Subtree wholly inside the query range: hulls decide.
            if _hull_min(aug.lower, a, b) > eps:
                return  # chain strictly above the line: no flips
            if _hull_max(aug.upper, a, b) < -eps:
                return  # chain strictly below: flips only at gaps
        piece: Piece = node.value
        pu = max(u, piece.ya)
        pv = min(v, piece.yb)
        if pu < pv:
            du = piece.z_at(pu) - (a * pu + b)
            dv = piece.z_at(pv) - (a * pv + b)
            su = 0 if abs(du) <= eps else (1 if du > 0 else -1)
            sv = 0 if abs(dv) <= eps else (1 if dv > 0 else -1)
            if su * sv < 0:
                t = du / (du - dv)
                w = pu + t * (pv - pu)
                if pu < w < pv:
                    out.append(w)
            # Tangential contacts: diff vanishes at a piece endpoint
            # without a strict sign flip.  Emit the endpoint as an
            # event so the region-midpoint probe can never land on a
            # zero of diff and misclassify the whole region.
            if su == 0 and u < pu < v:
                out.append(pu)
            if sv == 0 and u < pv < v:
                out.append(pv)
        # Jump junctions with the neighbouring subtrees (inclusive
        # straddle: grazing the top/bottom of a jump is a tangency and
        # must split regions too).
        if node.left is not None:
            laug = get_augment(node.left)
            y = piece.ya
            if laug.yb_max == y and u < y < v:
                z1, z2 = laug.zb_last, piece.za
                sy = a * y + b
                if min(z1, z2) - eps <= sy <= max(z1, z2) + eps:
                    out.append(y)
        if node.right is not None:
            raug = get_augment(node.right)
            y = piece.yb
            if raug.ya_min == y and u < y < v:
                z1, z2 = piece.zb, raug.za_first
                sy = a * y + b
                if min(z1, z2) - eps <= sy <= max(z1, z2) + eps:
                    out.append(y)
        walk(node.left, u, min(v, piece.ya))
        walk(node.right, max(u, piece.yb), v)

    walk(root, lo, hi)
    return sorted(out)


def winner_regions(
    root: Root, seg: ImageSegment, *, eps: float = EPS
) -> tuple[list[tuple[float, float, bool]], list[float], int]:
    """Partition ``[seg.y1, seg.y2]`` into maximal regions where either
    the profile or the segment dominates.

    Returns ``(regions, crossings, probes)``: regions as
    ``(ya, yb, seg_wins)``, the transversal crossing ordinates, and the
    number of tree probes performed (the measured query cost for
    experiments E6/E10).
    """
    counter = _ProbeCounter()
    lo, hi = seg.y1, seg.y2
    events: set[float] = {lo, hi}
    for ga, gb in collect_gaps(root, lo, hi, counter):
        events.add(ga)
        events.add(gb)
    flips = collect_flip_candidates(
        root, seg, lo, hi, eps=eps, counter=counter
    )
    events.update(flips)
    ys = sorted(events)
    raw: list[tuple[float, float, bool]] = []
    for u, v in zip(ys, ys[1:]):
        if v - u <= 0:
            continue
        m = 0.5 * (u + v)
        counter.probes += 1
        seg_wins = seg.z_at(m) - penv_value_at(root, m) > eps
        if raw and raw[-1][2] == seg_wins and raw[-1][1] == u:
            raw[-1] = (raw[-1][0], v, seg_wins)
        else:
            raw.append((u, v, seg_wins))
    # True crossings = flip candidates that actually separate regions
    # with opposite winners.
    boundaries = {r[0] for r in raw[1:]}
    crossings = [y for y in flips if y in boundaries]
    return raw, crossings, counter.probes


def acg_splice_merge(
    root: Root, other: Envelope, *, eps: float = EPS
) -> tuple[Root, MergeResult]:
    """Merge ``other`` into the profile version using ACG searches.

    Functionally identical to
    :func:`repro.persistence.envelope_store.penv_splice_merge` (the
    test-suite asserts it), but locates the changed regions by
    hull-pruned search instead of sweeping the whole overlap range —
    the paper's output-sensitive Phase-2 engine.
    """
    if not other.pieces:
        return root, MergeResult(Envelope.empty(), [], 0)
    if root is None:
        return (
            treap.from_sorted([(p.ya, p) for p in other.pieces]),
            MergeResult(other, [], other.size),
        )
    ops = 0
    crossings: list[Crossing] = []
    new_root = root
    for piece in other.pieces:
        seg = piece.as_segment()
        if seg.is_vertical:  # pieces are never vertical, defensive
            continue
        regions, cross_ys, probes = winner_regions(new_root, seg, eps=eps)
        ops += probes
        for y in cross_ys:
            crossings.append(
                Crossing(y, seg.z_at(y), -1, piece.source)
            )
        for (ra, rb, seg_wins) in regions:
            # Keep even eps-narrow regions: the midpoint test already
            # required the segment to dominate by > eps in *height*,
            # so a narrow region is real content, not noise.
            if not seg_wins or rb <= ra:
                continue
            clip = piece.clipped(max(ra, piece.ya), min(rb, piece.yb))
            new_root, res = penv_splice_merge(
                new_root, Envelope([clip]), eps=eps
            )
            ops += res.ops
    merged_view = Envelope([])  # callers use the root; view elided
    return new_root, MergeResult(merged_view, crossings, ops)


def acg_first_intersection(
    root: Root, seg: ImageSegment, *, eps: float = EPS
) -> Optional[tuple[float, float]]:
    """First (smallest-y) visibility flip of ``seg`` against the
    profile version — the CG primitive of Lemma 3.6, exposed for tests
    and benchmarks."""
    regions, cross_ys, _ = winner_regions(root, seg, eps=eps)
    if cross_ys:
        y = cross_ys[0]
        return (y, seg.z_at(y))
    # A flip can also occur at a gap boundary (jump onto/off support).
    for i in range(1, len(regions)):
        y = regions[i][0]
        return (y, seg.z_at(y))
    return None
