"""Image-space z-buffer baseline (device-*dependent* contrast).

The paper argues for object-space output (§1.1): image-space solutions
"compute the visibility information at every pixel which makes them
device dependent".  This module implements that contrast — a classic
z-buffer (here an *x*-buffer: the viewer looks along ``-x``, so depth
is ``-x``) rasterising terrain triangles onto a ``width × height``
image-plane grid.

Experiment E12 uses it two ways:

* cost: z-buffer work scales with pixel count (resolution²) and ``n``,
  never with ``k``;
* agreement: sampling edge visibility against the buffer approaches
  the object-space visibility map as resolution grows (validating both
  implementations against each other).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hsr.result import HsrResult, HsrStats, VisibilityMap, VisibleSegment
from repro.terrain.model import Terrain

__all__ = ["ZBufferHSR", "ZBufferImage"]


@dataclass
class ZBufferImage:
    """Rasterisation result: per-pixel nearest face and its depth.

    ``occluder`` is the *solid-terrain* depth: the paper's terrains
    "rise from the ground level" (§2), so a pixel at height ``z`` is
    blocked by any nearer surface at height ``>= z``.  It is the
    suffix maximum of ``depth`` down each image column.
    """

    face_id: np.ndarray  # (H, W) int32, -1 = background
    depth: np.ndarray  # (H, W) float64, -inf = background
    occluder: np.ndarray  # (H, W) float64 solid-occlusion depth
    y_min: float
    y_max: float
    z_min: float
    z_max: float

    @property
    def width(self) -> int:
        return self.face_id.shape[1]

    @property
    def height(self) -> int:
        return self.face_id.shape[0]

    def pixel_of(self, y: float, z: float) -> tuple[int, int]:
        """(row, col) of an image-plane point (clamped to bounds)."""
        c = int(
            (y - self.y_min) / max(self.y_max - self.y_min, 1e-12) * (self.width - 1)
        )
        r = int(
            (z - self.z_min) / max(self.z_max - self.z_min, 1e-12) * (self.height - 1)
        )
        return (min(max(r, 0), self.height - 1), min(max(c, 0), self.width - 1))


class ZBufferHSR:
    """Rasterising baseline; see module docstring.

    Parameters
    ----------
    width, height:
        Image resolution in pixels.
    """

    def __init__(self, *, width: int = 256, height: int = 256):
        self.width = width
        self.height = height

    def rasterize(self, terrain: Terrain) -> ZBufferImage:
        """Rasterise all faces into the x-buffer (vectorised per face
        bounding box)."""
        verts = terrain.vertices
        ys = [v.y for v in verts]
        zs = [v.z for v in verts]
        y_min, y_max = min(ys), max(ys)
        z_min, z_max = min(zs), max(zs)
        W, H = self.width, self.height
        face_id = np.full((H, W), -1, dtype=np.int32)
        depth = np.full((H, W), -np.inf, dtype=np.float64)
        # Pixel-centre coordinate grids in image space.
        ygrid = np.linspace(y_min, y_max, W)
        zgrid = np.linspace(z_min, z_max, H)

        for fi, (a, b, c) in enumerate(terrain.faces):
            va, vb, vc = verts[a], verts[b], verts[c]
            # Image-plane triangle (y, z); depth is x.
            py = np.array([va.y, vb.y, vc.y])
            pz = np.array([va.z, vb.z, vc.z])
            px = np.array([va.x, vb.x, vc.x])
            c0 = max(int(np.searchsorted(ygrid, py.min())) - 1, 0)
            c1 = min(int(np.searchsorted(ygrid, py.max())) + 1, W)
            r0 = max(int(np.searchsorted(zgrid, pz.min())) - 1, 0)
            r1 = min(int(np.searchsorted(zgrid, pz.max())) + 1, H)
            if c0 >= c1 or r0 >= r1:
                continue
            gy, gz = np.meshgrid(ygrid[c0:c1], zgrid[r0:r1])
            # Barycentric coordinates in the image plane.
            d = (pz[1] - pz[2]) * (py[0] - py[2]) + (py[2] - py[1]) * (
                pz[0] - pz[2]
            )
            if abs(d) < 1e-15:
                continue  # edge-on triangle: zero image area
            w0 = (
                (pz[1] - pz[2]) * (gy - py[2]) + (py[2] - py[1]) * (gz - pz[2])
            ) / d
            w1 = (
                (pz[2] - pz[0]) * (gy - py[2]) + (py[0] - py[2]) * (gz - pz[2])
            ) / d
            w2 = 1.0 - w0 - w1
            inside = (w0 >= -1e-9) & (w1 >= -1e-9) & (w2 >= -1e-9)
            if not inside.any():
                continue
            x_interp = w0 * px[0] + w1 * px[1] + w2 * px[2]
            block_depth = depth[r0:r1, c0:c1]
            block_face = face_id[r0:r1, c0:c1]
            better = inside & (x_interp > block_depth)
            block_depth[better] = x_interp[better]
            block_face[better] = fi
        # Solid occlusion: row index grows with z, so the blocker for a
        # pixel is the deepest (max-x) surface sample at its height or
        # above — a reversed cumulative max down each column.
        occluder = np.maximum.accumulate(depth[::-1, :], axis=0)[::-1, :]
        return ZBufferImage(
            face_id, depth, occluder, y_min, y_max, z_min, z_max
        )

    def run(self, terrain: Terrain, *, samples_per_edge: int = 32) -> HsrResult:
        """Approximate edge-visibility map from the x-buffer.

        Each edge is sampled along its length; a sample is visible when
        its depth is within tolerance of the buffer's front depth at
        that pixel.  Consecutive visible samples merge into
        :class:`VisibleSegment` entries.
        """
        t0 = time.perf_counter()
        img = self.rasterize(terrain)
        vmap = VisibilityMap()
        # Depth tolerance: a couple of pixels' worth of surface slope.
        span_x = max(v.x for v in terrain.vertices) - min(
            v.x for v in terrain.vertices
        )
        tol = max(span_x, 1.0) * 4.0 / max(self.width, self.height)
        for e in range(terrain.n_edges):
            p, q = terrain.edge_endpoints(e)
            run_start = None
            prev = None
            for i in range(samples_per_edge + 1):
                t = i / samples_per_edge
                x = p.x + t * (q.x - p.x)
                y = p.y + t * (q.y - p.y)
                z = p.z + t * (q.z - p.z)
                r, c = img.pixel_of(y, z)
                visible = x >= img.occluder[r, c] - tol
                if visible and run_start is None:
                    run_start = (y, z)
                if (not visible or i == samples_per_edge) and run_start is not None:
                    end = (y, z) if visible else prev
                    if end is not None:
                        ya, za = run_start
                        yb, zb = end
                        if ya > yb:
                            ya, za, yb, zb = yb, zb, ya, za
                        vmap.add_segment(VisibleSegment(e, ya, za, yb, zb))
                    run_start = None
                prev = (y, z)
        stats = HsrStats(
            n_edges=terrain.n_edges,
            k=vmap.k,
            ops=self.width * self.height,
            wall_time_s=time.perf_counter() - t0,
            extra={"pixels": float(self.width * self.height)},
        )
        return HsrResult(vmap, stats)
