"""The paper's algorithm, end to end.

:class:`ParallelHSR` runs the full pipeline of §3:

1. front-to-back edge ordering (separator-tree role,
   :mod:`repro.ordering`);
2. Phase 1 — intermediate profiles bottom-up over the PCT
   (:mod:`repro.hsr.pct`, Lemma 3.1);
3. Phase 2 — actual profiles root-to-leaves with visibility extraction
   at the leaves (:mod:`repro.hsr.phase2`, the systolic prefix);
4. assembly of the object-space visibility map.

Execution is sequential Python, but every step charges the CREW-PRAM
cost tracker, so a run yields the (work, depth) pair Theorem 3.1
bounds; :mod:`repro.pram.schedule` turns those into time-on-p curves.
A process-pool backend can execute Phase-1 layers genuinely in
parallel.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

from repro.hsr.pct import build_pct
from repro.hsr.phase2 import PHASE2_MODES, run_phase2
from repro.hsr.result import HsrResult, HsrStats, VisibilityMap
from repro.ordering.separator import SeparatorTree
from repro.ordering.sweep import front_to_back_order
from repro.pram.pool import ExecutionBackend
from repro.pram.tracker import PramTracker
from repro.reliability import reliability_run
from repro.terrain.model import Terrain

__all__ = ["ParallelHSR"]


class ParallelHSR:
    """Output-size sensitive parallel hidden-surface removal.

    Parameters
    ----------
    mode:
        Phase-2 engine: ``"direct"`` (array merges), ``"persistent"``
        (treap splice merges; default) or ``"acg"`` (hull-pruned
        searches on the shared persistent structure — the paper's
        full machinery).  All three produce the same visibility map.
    config:
        :class:`repro.config.HsrConfig` — the unified front door.  A
        config with ``workers > 1`` executes the Phase-1 and Phase-2
        level merges across real cores (:mod:`repro.parallel_exec`),
        bit-exact with the in-process run.  The ``eps=`` / ``engine=``
        keywords remain as shorthand and override the config fields.
    eps:
        Geometric tolerance.
    backend:
        Deprecated — the per-node pickling
        :class:`repro.pram.pool.ExecutionBackend` lost to the batched
        sweeps (experiment E8); use ``config=HsrConfig(workers=N)``
        for real multi-core execution.  Still honoured when passed.
    measure_sharing:
        Record the Fig.-1/Fig.-3 sharing statistics (adds a full-tree
        traversal per layer; off by default).
    engine:
        Envelope merge kernel for Phase 1 (and the ``direct`` Phase-2
        mode); see :mod:`repro.envelope.engine`.  ``None`` selects the
        default (NumPy when available) — Phase-1 layers then execute
        as single batched array sweeps.
    """

    def __init__(
        self,
        *,
        mode: str = "persistent",
        eps: Optional[float] = None,
        backend: Optional[ExecutionBackend] = None,
        measure_sharing: bool = False,
        engine: Optional[str] = None,
        config: Optional["HsrConfig"] = None,
    ):
        from repro._compat import warn_once
        from repro.config import HsrConfig

        if mode not in PHASE2_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; choose from {PHASE2_MODES}"
            )
        if backend is not None:
            warn_once(
                "ParallelHSR.backend",
                "ParallelHSR(backend=...) is deprecated; use"
                " config=HsrConfig(workers=N) for multi-core"
                " execution via repro.parallel_exec",
            )
        self.mode = mode
        self.config = HsrConfig.resolve(config, engine=engine, eps=eps)
        self.eps = self.config.eps
        self.backend = backend
        self.measure_sharing = measure_sharing
        self.engine = self.config.engine

    def run(
        self,
        terrain: Terrain,
        *,
        order: Optional[Sequence[int]] = None,
        tracker: Optional[PramTracker] = None,
    ) -> HsrResult:
        """Compute the visibility map; see class docstring.

        Pass a :class:`PramTracker` to collect (work, depth); the
        returned result carries it in ``result.tracker``.
        """
        t0 = time.perf_counter()
        image_segments = terrain.image_segments()

        if order is None:
            if tracker is not None:
                with tracker.phase("ordering"):
                    # The Tamassia–Vitter construction is O(log n) deep
                    # with n processors (paper Fact 1); charge that.
                    n = max(terrain.n_edges, 2)
                    with tracker.parallel() as par:
                        for _ in range(1):
                            par.spawn(
                                n * math.ceil(math.log2(n)),
                                math.ceil(math.log2(n)),
                            )
                    order = front_to_back_order(terrain)
            else:
                order = front_to_back_order(terrain)
        order = list(order)

        tree = SeparatorTree(order)

        with reliability_run() as report:
            if tracker is not None:
                with tracker.phase("phase1"):
                    pct = build_pct(
                        tree,
                        image_segments,
                        eps=self.eps,
                        tracker=tracker,
                        backend=self.backend,
                        measure_sharing=self.measure_sharing,
                        engine=self.engine,
                        config=self.config,
                    )
                with tracker.phase("phase2"):
                    ph2 = run_phase2(
                        pct,
                        image_segments,
                        mode=self.mode,
                        eps=self.eps,
                        tracker=tracker,
                        measure_sharing=self.measure_sharing,
                        engine=self.engine,
                        config=self.config,
                    )
            else:
                pct = build_pct(
                    tree,
                    image_segments,
                    eps=self.eps,
                    backend=self.backend,
                    measure_sharing=self.measure_sharing,
                    engine=self.engine,
                    config=self.config,
                )
                ph2 = run_phase2(
                    pct,
                    image_segments,
                    mode=self.mode,
                    eps=self.eps,
                    measure_sharing=self.measure_sharing,
                    engine=self.engine,
                    config=self.config,
                )

        vmap = VisibilityMap()
        for edge in order:
            vis = ph2.visibility[edge]
            vmap.add_edge_result(edge, image_segments[edge], vis)

        stats = HsrStats(
            n_edges=terrain.n_edges,
            k=vmap.k,
            ops=pct.ops + ph2.ops,
            crossings_found=ph2.crossings,
            wall_time_s=time.perf_counter() - t0,
            extra={
                "phase1_ops": float(pct.ops),
                "phase2_ops": float(ph2.ops),
                "pct_pieces": float(pct.total_profile_pieces()),
                "nodes_allocated": float(ph2.nodes_allocated),
                "pieces_materialised": float(ph2.pieces_materialised),
                "tree_height": float(tree.height),
            },
        )
        result = HsrResult(
            vmap, stats, order=order, tracker=tracker, reliability=report
        )
        result.phase2 = ph2  # type: ignore[attr-defined]
        result.pct = pct  # type: ignore[attr-defined]
        return result
