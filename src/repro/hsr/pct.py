"""Phase 1: the Profile Computation Tree (PCT).

"For each node v in the separator tree do in parallel: compute the
profile of the edges in the leaves of the subtree rooted at v"
(paper §3, step 2a).  Bottom-up, layer by layer: a node's intermediate
profile is the merge of its children's.  All merges of a layer are
independent — a parallel region in the cost model, and optionally a
real process-pool fan-out.

Lemma 3.1 gives the construction O(log² n) depth; the tracker
measures it (experiment E9 on the construction in isolation, E1 on
the full pipeline).

Because a layer's merges are independent, the NumPy engine
(``engine="numpy"``, the default when NumPy is present) executes each
layer as *one* batched array sweep over all of its merges
(:func:`repro.envelope.flat.batch_merge`) instead of per-node Python
sweeps, holding profiles as :class:`~repro.envelope.flat.FlatEnvelope`
arrays and materialising :class:`Envelope` objects lazily on access.
Results and PRAM charges are identical between engines.  A real
process-pool ``backend`` executes per-node tasks instead (arrays
would be pickled per task, wasting the batch), using the kernel
dispatch per merge.

The PCT also exposes the Fig. 1 statistic: how many pieces of each
intermediate profile are *shared* (geometrically identical) with a
child's profile — the redundancy that motivates the paper's persistent
visibility structure.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.envelope.chain import Envelope
from repro.envelope.engine import merge_dispatch, resolve_engine
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.ordering.separator import SeparatorNode, SeparatorTree
from repro.pram.pool import ExecutionBackend, SerialBackend
from repro.pram.tracker import PramTracker

__all__ = ["PCT", "build_pct"]


def _merge_task(
    args: "tuple[Envelope, Envelope, float] | tuple[Envelope, Envelope, float, Optional[str]]",
) -> tuple[Envelope, int, int]:
    """Worker task for process-pool layers (module-level: picklable).

    The trailing engine element is optional for compatibility with
    3-tuple callers (``None`` selects the default kernel).
    """
    a, b, eps, *rest = args
    engine = rest[0] if rest else None
    res = merge_dispatch(
        a, b, eps=eps, record_crossings=False, engine=engine
    )
    return (res.envelope, res.ops, len(res.crossings))


class PCT:
    """The profile computation tree: separator-tree shape + per-node
    intermediate profiles.

    Profiles built by the NumPy engine are held as flat arrays and
    converted to :class:`Envelope` lazily by :meth:`envelope_of`
    (conversion is cached) — Phase 2 only ever touches the left-child
    profiles, so half the tree typically never materialises.
    """

    def __init__(self, tree: SeparatorTree):
        self.tree = tree
        #: node.index -> materialised intermediate profile.
        self.envelopes: dict[int, Envelope] = {}
        #: node.index -> flat (array) profile, NumPy engine only.
        self.flat_envelopes: dict[int, "object"] = {}
        #: total elementary merge operations performed in Phase 1.
        self.ops: int = 0
        #: per-layer (depth) sharing fraction: pieces of the layer's
        #: profiles identical to a piece of a child profile.
        self.layer_sharing: list[tuple[int, float]] = []

    def envelope_of(self, node: SeparatorNode) -> Envelope:
        env = self.envelopes.get(node.index)
        if env is None:
            env = self.flat_envelopes[node.index].to_envelope()
            self.envelopes[node.index] = env
        return env

    def total_profile_pieces(self) -> int:
        """Σ over nodes of intermediate-profile size — the storage a
        non-persistent representation must copy."""
        total = sum(env.size for env in self.flat_envelopes.values())
        total += sum(
            env.size
            for idx, env in self.envelopes.items()
            if idx not in self.flat_envelopes
        )
        return total


def build_pct(
    tree: SeparatorTree,
    image_segments: Sequence[ImageSegment],
    *,
    eps: float = EPS,
    tracker: Optional[PramTracker] = None,
    backend: Optional[ExecutionBackend] = None,
    measure_sharing: bool = False,
    engine: Optional[str] = None,
    config=None,
) -> PCT:
    """Run Phase 1 over ``tree``.

    ``image_segments[i]`` must be the image projection of the edge at
    front-to-back position... precisely: leaf with order-range
    ``[i, i+1)`` takes ``image_segments[tree.order[i]]``.

    ``backend`` executes each layer's merges concurrently when
    provided (Phase-1 layers are embarrassingly parallel); the cost
    model is charged identically either way.  ``engine`` selects the
    merge kernel (see :mod:`repro.envelope.engine`); without a
    process-pool backend the NumPy engine batches each layer into one
    array sweep.  A ``config`` (:class:`repro.config.HsrConfig`) with
    ``workers > 1`` splits each layer's batched sweep across the
    :mod:`repro.parallel_exec` process pool, bit-exact.
    """
    use_batch = resolve_engine(engine) == "numpy" and backend is None
    use_pool = (
        use_batch and config is not None and config.resolved_workers() > 1
    )
    backend = backend or SerialBackend()
    pct = PCT(tree)

    if use_batch:
        from repro.envelope.flat import (
            FlatEnvelope,
            batch_merge,
            stack_envelopes,
        )

    for level in tree.levels_bottom_up():
        leaves = [node for node in level if node.is_leaf]
        internals = [node for node in level if not node.is_leaf]

        if leaves:
            for node in leaves:
                seg = image_segments[tree.order[node.lo]]
                if use_batch:
                    pct.flat_envelopes[node.index] = (
                        FlatEnvelope.from_segment(seg)
                    )
                else:
                    pct.envelopes[node.index] = Envelope.from_segment(seg)
                pct.ops += 1
            if tracker is not None:
                # All leaf initialisations of a layer run concurrently.
                with tracker.parallel() as par:
                    for _ in leaves:
                        par.spawn(1, 1)

        if internals:
            if use_batch:
                lefts = stack_envelopes(
                    [
                        pct.flat_envelopes[node.left.index]  # type: ignore[union-attr]
                        for node in internals
                    ]
                )
                rights = stack_envelopes(
                    [
                        pct.flat_envelopes[node.right.index]  # type: ignore[union-attr]
                        for node in internals
                    ]
                )
                res = None
                if use_pool:
                    from repro.parallel_exec import maybe_batch_merge

                    res = maybe_batch_merge(
                        lefts,
                        rights,
                        eps=eps,
                        record_crossings=False,
                        config=config,
                    )
                if res is None:
                    res = batch_merge(
                        lefts, rights, eps=eps, record_crossings=False
                    )
                ops_list = res.ops.tolist()
                for g, node in enumerate(internals):
                    pct.flat_envelopes[node.index] = res.merged.group(g)
                    pct.ops += ops_list[g]
                if tracker is not None:
                    with tracker.parallel() as par:
                        for ops in ops_list:
                            par.spawn(ops, max(1.0, math.log2(ops + 1)))
            else:
                tasks = [
                    (
                        pct.envelopes[node.left.index],  # type: ignore[union-attr]
                        pct.envelopes[node.right.index],  # type: ignore[union-attr]
                        eps,
                        engine,
                    )
                    for node in internals
                ]
                results = backend.map(_merge_task, tasks)
                if tracker is not None:
                    with tracker.parallel() as par:
                        for (_env, ops, _nx) in results:
                            par.spawn(ops, max(1.0, math.log2(ops + 1)))
                for node, (env, ops, _nx) in zip(internals, results):
                    pct.envelopes[node.index] = env
                    pct.ops += ops

        if measure_sharing and internals:
            shared = 0
            total = 0
            for node in internals:
                child_pieces = set()
                for child in (node.left, node.right):
                    assert child is not None
                    child_pieces.update(pct.envelope_of(child).pieces)
                env = pct.envelope_of(node)
                total += env.size
                shared += sum(1 for p in env.pieces if p in child_pieces)
            depth = internals[0].depth
            pct.layer_sharing.append(
                (depth, shared / total if total else 0.0)
            )

    return pct
