"""Phase 1: the Profile Computation Tree (PCT).

"For each node v in the separator tree do in parallel: compute the
profile of the edges in the leaves of the subtree rooted at v"
(paper §3, step 2a).  Bottom-up, layer by layer: a node's intermediate
profile is the merge of its children's.  All merges of a layer are
independent — a parallel region in the cost model, and optionally a
real process-pool fan-out.

Lemma 3.1 gives the construction O(log² n) depth; the tracker
measures it (experiment E9 on the construction in isolation, E1 on
the full pipeline).

The PCT also exposes the Fig. 1 statistic: how many pieces of each
intermediate profile are *shared* (geometrically identical) with a
child's profile — the redundancy that motivates the paper's persistent
visibility structure.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.envelope.chain import Envelope
from repro.envelope.merge import merge_envelopes
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.ordering.separator import SeparatorNode, SeparatorTree
from repro.pram.pool import ExecutionBackend, SerialBackend
from repro.pram.tracker import PramTracker

__all__ = ["PCT", "build_pct"]


def _merge_task(
    args: tuple[Envelope, Envelope, float]
) -> tuple[Envelope, int, int]:
    """Worker task for process-pool layers (module-level: picklable)."""
    a, b, eps = args
    res = merge_envelopes(a, b, eps=eps, record_crossings=False)
    return (res.envelope, res.ops, len(res.crossings))


class PCT:
    """The profile computation tree: separator-tree shape + per-node
    intermediate profiles."""

    def __init__(self, tree: SeparatorTree):
        self.tree = tree
        #: node.index -> intermediate profile (Phase-1 envelope).
        self.envelopes: dict[int, Envelope] = {}
        #: total elementary merge operations performed in Phase 1.
        self.ops: int = 0
        #: per-layer (depth) sharing fraction: pieces of the layer's
        #: profiles identical to a piece of a child profile.
        self.layer_sharing: list[tuple[int, float]] = []

    def envelope_of(self, node: SeparatorNode) -> Envelope:
        return self.envelopes[node.index]

    def total_profile_pieces(self) -> int:
        """Σ over nodes of intermediate-profile size — the storage a
        non-persistent representation must copy."""
        return sum(env.size for env in self.envelopes.values())


def build_pct(
    tree: SeparatorTree,
    image_segments: Sequence[ImageSegment],
    *,
    eps: float = EPS,
    tracker: Optional[PramTracker] = None,
    backend: Optional[ExecutionBackend] = None,
    measure_sharing: bool = False,
) -> PCT:
    """Run Phase 1 over ``tree``.

    ``image_segments[i]`` must be the image projection of the edge at
    front-to-back position... precisely: leaf with order-range
    ``[i, i+1)`` takes ``image_segments[tree.order[i]]``.

    ``backend`` executes each layer's merges concurrently when
    provided (Phase-1 layers are embarrassingly parallel); the cost
    model is charged identically either way.
    """
    backend = backend or SerialBackend()
    pct = PCT(tree)

    for level in tree.levels_bottom_up():
        leaves = [node for node in level if node.is_leaf]
        internals = [node for node in level if not node.is_leaf]

        if leaves:
            for node in leaves:
                seg = image_segments[tree.order[node.lo]]
                pct.envelopes[node.index] = Envelope.from_segment(seg)
                pct.ops += 1
            if tracker is not None:
                # All leaf initialisations of a layer run concurrently.
                with tracker.parallel() as par:
                    for _ in leaves:
                        par.spawn(1, 1)

        if internals:
            tasks = [
                (
                    pct.envelopes[node.left.index],  # type: ignore[union-attr]
                    pct.envelopes[node.right.index],  # type: ignore[union-attr]
                    eps,
                )
                for node in internals
            ]
            results = backend.map(_merge_task, tasks)
            if tracker is not None:
                with tracker.parallel() as par:
                    for (_env, ops, _nx) in results:
                        par.spawn(ops, max(1.0, math.log2(ops + 1)))
            for node, (env, ops, _nx) in zip(internals, results):
                pct.envelopes[node.index] = env
                pct.ops += ops

        if measure_sharing and internals:
            shared = 0
            total = 0
            for node in internals:
                child_pieces = set()
                for child in (node.left, node.right):
                    assert child is not None
                    child_pieces.update(pct.envelopes[child.index].pieces)
                env = pct.envelopes[node.index]
                total += env.size
                shared += sum(1 for p in env.pieces if p in child_pieces)
            depth = internals[0].depth
            pct.layer_sharing.append(
                (depth, shared / total if total else 0.0)
            )

    return pct
