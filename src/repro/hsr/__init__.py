"""Hidden-surface removal: the paper's algorithm and its baselines.

* :class:`ParallelHSR` — the reproduction target (PCT + systolic
  prefix + persistent/ACG profile structure).
* :class:`SequentialHSR` — Reif–Sen-style incremental baseline.
* :class:`NaiveHSR` — Θ(n²) all-pairs baseline.
* :class:`ZBufferHSR` — image-space (device-dependent) baseline.
"""

from repro.hsr.acg import (
    acg_splice_merge,
    collect_flip_candidates,
    collect_gaps,
    get_augment,
    winner_regions,
)
from repro.hsr.cg import CGNode, ProfileIndex
from repro.hsr.graph import graph_summary, visibility_graph
from repro.hsr.intersect import all_intersections_lemma32
from repro.hsr.naive import NaiveHSR
from repro.hsr.parallel import ParallelHSR
from repro.hsr.pct import PCT, build_pct
from repro.hsr.queries import VisibilityOracle, point_visible, visible_many
from repro.hsr.phase2 import PHASE2_MODES, Phase2Result, run_phase2
from repro.hsr.result import (
    HsrResult,
    HsrStats,
    VisibilityMap,
    VisibleSegment,
)
from repro.hsr.sequential import SequentialHSR

__all__ = [
    "CGNode",
    "HsrResult",
    "HsrStats",
    "NaiveHSR",
    "PCT",
    "PHASE2_MODES",
    "ParallelHSR",
    "Phase2Result",
    "ProfileIndex",
    "SequentialHSR",
    "VisibilityMap",
    "VisibilityOracle",
    "VisibleSegment",
    "acg_splice_merge",
    "all_intersections_lemma32",
    "build_pct",
    "collect_flip_candidates",
    "collect_gaps",
    "get_augment",
    "graph_summary",
    "point_visible",
    "run_phase2",
    "visibility_graph",
    "visible_many",
    "winner_regions",
]

try:  # the image-space baseline is array-based; optional without numpy
    from repro.hsr.zbuffer import ZBufferHSR, ZBufferImage  # noqa: F401

    __all__ += ["ZBufferHSR", "ZBufferImage"]
except ImportError:  # pragma: no cover - numpy ships in the toolchain
    pass
