"""Sequential output-sensitive HSR (Reif–Sen-style baseline).

The paper's sequential reference (§2): process edges front to back,
test each against the current upper profile, splice its visible parts
in.  Every piece the splice removes from the profile is removed
forever, so the aggregate splice cost is charged to profile churn —
near ``O((n + k) log n)`` on the workload families here (the original
Reif–Sen algorithm adds ray-shooting structures to make the per-edge
cost worst-case output-sensitive; the scan inside the edge's y-range
is the honest simple variant, and ``stats.ops`` reports exactly what
it did).

Experiment E4 compares the parallel algorithm's work against this
baseline's operation count — the paper's Remark bounds the ratio by
``O(log n)``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.envelope.chain import Envelope
from repro.envelope.splice import insert_segment
from repro.hsr.result import HsrResult, HsrStats, VisibilityMap
from repro.ordering.sweep import front_to_back_order
from repro.reliability import reliability_run
from repro.terrain.model import Terrain

__all__ = ["SequentialHSR"]


class SequentialHSR:
    """Incremental front-to-back hidden-surface removal.

    Parameters
    ----------
    config:
        :class:`repro.config.HsrConfig` — the unified front door for
        engine/eps/toggle selection.  The ``eps=`` / ``engine=``
        keywords below remain as supported shorthand and override the
        corresponding config fields.
    eps:
        Geometric tolerance (see :mod:`repro.envelope.visibility` for
        the visibility conventions).
    engine:
        Envelope kernel for the per-edge work (see
        :mod:`repro.envelope.engine`); ``None`` selects the default.
        Under ``"numpy"`` the profile lives in **one packed buffer
        owned for the whole run**
        (:class:`repro.envelope.packed.PackedProfile`, or the
        immutable :class:`~repro.envelope.flat_splice.FlatProfile`
        when :data:`repro.envelope.engine.USE_PACKED_PROFILE` is
        off): each edge does locate → one *fused* visibility+merge
        sweep over a zero-copy window view
        (:mod:`repro.envelope.flat_fused` — with
        all-hidden/fully-visible fast paths that skip the sweep
        outright) → an **in-place** splice into the buffer (at most
        one slice shift into the slack; amortized-doubling growth),
        never materialising piece tuples, so the per-edge cost tracks
        the overlapped window instead of paying Θ(profile) copying.
        Results are bit-identical either way — the reported ``ops``
        are elementary-interval counts, independent of how many
        elements the layout moves.
    """

    def __init__(
        self,
        *,
        eps: Optional[float] = None,
        engine: Optional[str] = None,
        config: Optional["HsrConfig"] = None,
    ):
        from repro.config import HsrConfig

        self.config = HsrConfig.resolve(config, engine=engine, eps=eps)
        self.eps = self.config.eps
        self.engine = self.config.engine

    def _insert_loop(
        self,
        terrain: Terrain,
        order: Sequence[int],
        vmap: Optional[VisibilityMap],
    ) -> tuple[Envelope, int, int]:
        """The front-to-back insertion loop shared by :meth:`run` and
        :meth:`final_profile`: returns ``(profile, ops, max_profile)``,
        recording per-edge visibility into ``vmap`` when given.  The
        profile converts to a scalar :class:`Envelope` only here, at
        the run boundary.
        """
        eps = self.eps
        config = self.config
        flat = config.resolved_engine() == "numpy"
        if flat:
            from repro.envelope.flat_splice import (
                FlatProfile,
                insert_segment_flat,
            )

            if config.packed_profile():
                from repro.envelope.packed import PackedProfile

                # One buffer owned for the whole run: every insert
                # splices it in place (the loop below re-binds ``env``
                # to the same object) and windows are re-derived from
                # it per insert inside ``insert_segment_flat``.
                env = PackedProfile.empty()
            else:
                env = FlatProfile.empty()
        else:
            env = Envelope.empty()
        ops = 0
        max_profile = 0
        for edge in order:
            seg = terrain.image_segment(edge)
            if flat:
                res = insert_segment_flat(env, seg, eps=eps, config=config)
                env = res.profile
            else:
                res = insert_segment(
                    env, seg, eps=eps, engine=self.engine
                )
                env = res.envelope
            ops += res.ops
            if env.size > max_profile:
                max_profile = env.size
            if vmap is not None:
                vmap.add_edge_result(edge, seg, res.visibility)
        return (env.to_envelope() if flat else env), ops, max_profile

    def run(
        self,
        terrain: Terrain,
        *,
        order: Optional[Sequence[int]] = None,
    ) -> HsrResult:
        """Compute the visibility map of ``terrain``.

        ``order`` (a front-to-back edge order) is computed by the sweep
        when not supplied; passing one lets experiments share the
        ordering across algorithms.
        """
        t0 = time.perf_counter()
        if order is None:
            order = front_to_back_order(terrain)
        vmap = VisibilityMap()
        with reliability_run() as report:
            _env, ops, max_profile = self._insert_loop(terrain, order, vmap)
        stats = HsrStats(
            n_edges=terrain.n_edges,
            k=vmap.k,
            ops=ops,
            wall_time_s=time.perf_counter() - t0,
            extra={"max_profile_size": float(max_profile)},
        )
        return HsrResult(vmap, stats, order=list(order), reliability=report)

    def final_profile(
        self, terrain: Terrain, *, order: Optional[Sequence[int]] = None
    ) -> Envelope:
        """The upper profile of the whole scene (the horizon line).

        Shares :meth:`run`'s insertion loop (same kernels, same
        front-to-back order, same ops accounting) and returns the
        resulting profile instead of the visibility map.
        """
        if order is None:
            order = front_to_back_order(terrain)
        with reliability_run():
            env, _ops, _max_profile = self._insert_loop(terrain, order, None)
        return env
