"""Simulated CREW PRAM: cost tracking, scheduling, primitives, backends.

See DESIGN.md §2 for why the PRAM is simulated (work/depth accounting)
rather than emulated with threads: the algorithm's guarantees are
statements about work and depth, and those are machine-measurable;
thread emulation under the GIL would measure nothing.
"""

from repro.pram.pool import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    available_workers,
    default_backend,
)
from repro.pram.schedule import (
    PhaseCost,
    allocation_time,
    brent_time,
    phases_from_tracker,
    slowdown_time,
    speedup_curve,
)
from repro.pram.tracker import PhaseRecord, PramTracker

__all__ = [
    "ExecutionBackend",
    "PhaseCost",
    "PhaseRecord",
    "PramTracker",
    "ProcessBackend",
    "SerialBackend",
    "allocation_time",
    "available_workers",
    "brent_time",
    "default_backend",
    "phases_from_tracker",
    "slowdown_time",
    "speedup_curve",
]

try:  # array-backed PRAM primitives are optional without numpy
    from repro.pram.primitives import (  # noqa: F401
        parallel_max_index,
        parallel_merge_positions,
        parallel_prefix,
        parallel_reduce,
        prefix_combine,
    )

    __all__ += [
        "parallel_max_index",
        "parallel_merge_positions",
        "parallel_prefix",
        "parallel_reduce",
        "prefix_combine",
    ]
except ImportError:  # pragma: no cover - numpy ships in the toolchain
    pass
