"""Brent and slow-down (Lemma 2.1/2.2) schedulers.

These convert measured (work, depth) or per-phase costs into predicted
running time on ``p`` processors, including the paper's explicit
processor-allocation cost:

    t_{p,r} = O(r log r / p)

(the paper: "the processor allocation problem of size r can be done in
O(r log r / p) time using p processors on CREW PRAM").  Reif & Sen's
earlier algorithm assumed free allocation; charging it is one of the
paper's stated improvements, so the schedulers here always include it
unless ``allocation=False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import PramError
from repro.pram.tracker import PramTracker

__all__ = [
    "allocation_time",
    "brent_time",
    "slowdown_time",
    "speedup_curve",
    "PhaseCost",
]


def _check_p(p: int) -> None:
    if p <= 0:
        raise PramError(f"processor count must be positive, got {p}")


def allocation_time(r: float, p: int) -> float:
    """The paper's ``t_{p,r}``: time to allocate ``p`` processors to
    tasks of total requirement ``r`` — ``r log r / p`` (0 for r <= 1)."""
    _check_p(p)
    if r <= 1.0:
        return 0.0
    return r * math.log2(r) / p


def brent_time(
    work: float, depth: float, p: int, *, allocation: bool = False
) -> float:
    """Brent's bound: ``work/p + depth`` on ``p`` processors.

    With ``allocation=True`` a single ``t_{p,work}`` term is added —
    the coarse model for an algorithm scheduled as one block.
    """
    _check_p(p)
    if work < 0 or depth < 0:
        raise PramError("work and depth must be non-negative")
    t = work / p + depth
    if allocation:
        t += allocation_time(work, p)
    return t


@dataclass(frozen=True)
class PhaseCost:
    """Lemma 2.2 ingredients for one phase: ``N_i`` tasks, each of
    time ``t_i`` (performed by one processor)."""

    tasks: float
    task_time: float

    @property
    def requirement(self) -> float:
        """Total processor-time requirement ``N_i * t_i``."""
        return self.tasks * self.task_time


def slowdown_time(
    phases: Sequence[PhaseCost], p: int, *, allocation: bool = True
) -> float:
    """Lemma 2.2: ``O(t_{p,N} + t + N·t/p)`` where ``t = Σ t_i``,
    ``N = max_i N_i·p_i`` (each task uses one processor here, so
    ``N = max_i N_i``), and total work is ``Σ N_i·t_i``.
    """
    _check_p(p)
    if not phases:
        return 0.0
    t_sum = sum(ph.task_time for ph in phases)
    work = sum(ph.requirement for ph in phases)
    time = t_sum + work / p
    if allocation:
        n_alloc = max(ph.tasks for ph in phases)
        time += allocation_time(n_alloc, p)
    return time


def phases_from_tracker(tracker: PramTracker) -> list[PhaseCost]:
    """Convert tracker phase records into Lemma-2.2 phase costs.

    Each recorded phase becomes a :class:`PhaseCost` with the phase's
    task count and its deepest task as the per-task time (conservative:
    Lemma 2.2 assumes uniform ``t_i`` per phase, so we upper-bound).
    """
    out: list[PhaseCost] = []
    for rec in tracker.phases:
        tasks = max(rec.tasks, 1)
        task_time = rec.max_task_depth if rec.max_task_depth > 0 else (
            rec.work / tasks if tasks else 0.0
        )
        out.append(PhaseCost(tasks=tasks, task_time=task_time))
    return out


def speedup_curve(
    work: float,
    depth: float,
    processor_counts: Iterable[int],
    *,
    allocation: bool = False,
) -> list[tuple[int, float, float]]:
    """Predicted time and speedup for each processor count.

    Returns ``(p, time_p, speedup)`` rows where speedup is relative to
    ``p = 1``.  The curve saturates near ``p ≈ work/depth`` — the
    available parallelism — which experiment E8 verifies.
    """
    rows: list[tuple[int, float, float]] = []
    t1 = brent_time(work, depth, 1, allocation=False)
    for p in processor_counts:
        tp = brent_time(work, depth, p, allocation=allocation)
        rows.append((p, tp, t1 / tp if tp > 0 else float("inf")))
    return rows
