"""Execution backends: serial and real multi-process.

The PRAM cost model (tracker + schedulers) is the primary reproduction
vehicle; this module adds *actual* parallel execution for the parts of
the algorithm that are embarrassingly parallel — Phase 1 merges all
PCT nodes of a layer independently, so a layer can be farmed out to a
process pool.  CPython's GIL prevents thread-level speedup for this
CPU-bound pure-Python workload (the calibration note for this
reproduction), hence processes, and hence the honest caveat that
pickling envelopes across process boundaries costs real time: speedup
is only visible once per-task compute dominates serialisation (E8
measures exactly this).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Protocol, Sequence, TypeVar

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "default_backend",
    "available_workers",
]

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(Protocol):
    """Minimal map interface the algorithm layers need."""

    #: Number of genuinely concurrent workers (1 for serial).
    workers: int

    def map(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> list[R]:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


def available_workers() -> int:
    """Deprecated alias — the helper moved to
    :func:`repro.parallel_exec.available_workers` with the real
    multi-core executor.  This shim forwards (and warns once)."""
    from repro._compat import warn_once
    from repro.parallel_exec import available_workers as _impl

    warn_once(
        "pram.pool.available_workers",
        "repro.pram.pool.available_workers moved to"
        " repro.parallel_exec.available_workers; the old import path"
        " will be removed in a future release",
    )
    return _impl()


class SerialBackend:
    """In-process sequential execution (the default)."""

    workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]

    def close(self) -> None:
        return None

    def __repr__(self) -> str:
        return "SerialBackend()"


class ProcessBackend:
    """Process-pool execution for CPU-bound layer tasks.

    Tasks and results must be picklable (all library value types are
    NamedTuples / plain lists, so they are).  ``chunksize`` is chosen
    so each worker receives a handful of batches, amortising IPC.
    """

    def __init__(self, workers: int | None = None):
        if workers is None:
            from repro.parallel_exec import (
                available_workers as _available_workers,
            )

            workers = _available_workers()
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        chunksize = max(1, len(items) // (self.workers * 4))
        return list(self._pool.map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ProcessBackend(workers={self.workers})"


def default_backend() -> ExecutionBackend:
    """The library default: serial (deterministic, no IPC overhead)."""
    return SerialBackend()
