"""Work/depth accounting for the simulated CREW PRAM.

PRAM algorithms are characterised by two quantities: total **work**
(operations summed over all processors) and **depth** (parallel time
with unboundedly many processors).  Theorem 3.1's bound
``O(max{log^4 n, (k + n·alpha(n)) log^3 n / p})`` is exactly a
(work, depth) statement combined with Brent scheduling — so the
reproduction *measures* work and depth while running the algorithm,
then converts them to time-on-``p``-processors with the schedulers in
:mod:`repro.pram.schedule`.

Usage pattern::

    t = PramTracker()
    with t.phase("phase 1 / layer 3"):
        with t.parallel() as par:
            for task in tasks:
                with par.branch():
                    ...   # charges inside accrue to this branch
    print(t.work, t.depth)

Inside a ``parallel()`` region the branches' work adds up while only
the *deepest* branch contributes to depth — the defining PRAM rule.
Regions nest arbitrarily.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PramError

__all__ = ["PhaseRecord", "PramTracker"]


@dataclass
class PhaseRecord:
    """Aggregate cost of one named phase (for Lemma 2.2 scheduling).

    ``tasks`` is the number of parallel branches opened directly in the
    phase and ``max_task_depth`` the deepest of them — together these
    are the ``N_i`` and ``t_i`` of Lemma 2.2.
    """

    name: str
    work: float = 0.0
    depth: float = 0.0
    tasks: int = 0
    max_task_depth: float = 0.0


class _Frame:
    """A cost-accumulation frame (sequential unless ``parallel``)."""

    __slots__ = ("work", "depth", "parallel", "branch_depths", "tasks")

    def __init__(self, parallel: bool):
        self.work = 0.0
        self.depth = 0.0
        self.parallel = parallel
        self.branch_depths: list[float] = []
        self.tasks = 0


class PramTracker:
    """Accumulates PRAM work and depth through nested regions.

    The tracker is deliberately cheap (a few float adds per charge) so
    instrumented algorithm runs remain usable for timing benchmarks;
    pass ``tracker=None`` to algorithm entry points to skip accounting
    entirely.
    """

    def __init__(self) -> None:
        self._stack: list[_Frame] = [_Frame(parallel=False)]
        self.phases: list[PhaseRecord] = []
        self._phase_stack: list[PhaseRecord] = []

    # -- totals -------------------------------------------------------

    @property
    def work(self) -> float:
        """Total operations across all (virtual) processors."""
        return self._stack[0].work

    @property
    def depth(self) -> float:
        """Parallel time with unbounded processors."""
        return self._stack[0].depth

    @property
    def parallelism(self) -> float:
        """Average available parallelism ``work / depth``."""
        d = self.depth
        return self.work / d if d > 0 else 0.0

    # -- charging -----------------------------------------------------

    def charge(self, work: float, depth: Optional[float] = None) -> None:
        """Charge ``work`` operations executed sequentially by one
        processor (depth defaults to the work)."""
        if work < 0:
            raise PramError(f"negative work charge: {work}")
        d = work if depth is None else depth
        if d < 0:
            raise PramError(f"negative depth charge: {d}")
        top = self._stack[-1]
        top.work += work
        top.depth += d
        for ph in self._phase_stack:
            ph.work += work
        if self._phase_stack:
            self._phase_stack[-1].depth += d

    # -- structured regions --------------------------------------------

    @contextmanager
    def parallel(self) -> Iterator["_ParallelRegion"]:
        """A region whose branches execute concurrently.

        On exit the region contributes ``sum`` of branch work and
        ``max`` of branch depth to the enclosing frame.
        """
        frame = _Frame(parallel=True)
        self._stack.append(frame)
        region = _ParallelRegion(self, frame)
        try:
            yield region
        finally:
            popped = self._stack.pop()
            if popped is not frame:  # pragma: no cover - defensive
                raise PramError("unbalanced parallel region")
            parent = self._stack[-1]
            parent.work += frame.work
            max_d = max(frame.branch_depths, default=0.0)
            parent.depth += max_d
            if self._phase_stack:
                ph = self._phase_stack[-1]
                ph.depth += max_d
                ph.tasks += frame.tasks
                ph.max_task_depth = max(ph.max_task_depth, max_d)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseRecord]:
        """A named phase; records per-phase totals for Lemma 2.2."""
        rec = PhaseRecord(name)
        self._phase_stack.append(rec)
        try:
            yield rec
        finally:
            self._phase_stack.pop()
            self.phases.append(rec)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> tuple[float, float]:
        """Current (work, depth) of the root frame."""
        return (self.work, self.depth)


class _ParallelRegion:
    """Handle yielded by :meth:`PramTracker.parallel`."""

    __slots__ = ("_tracker", "_frame")

    def __init__(self, tracker: PramTracker, frame: _Frame):
        self._tracker = tracker
        self._frame = frame

    @contextmanager
    def branch(self) -> Iterator[None]:
        """One concurrent branch; charges inside accrue to it."""
        sub = _Frame(parallel=False)
        self._tracker._stack.append(sub)
        try:
            yield
        finally:
            popped = self._tracker._stack.pop()
            if popped is not sub:  # pragma: no cover - defensive
                raise PramError("unbalanced branch")
            self._frame.work += sub.work
            self._frame.branch_depths.append(sub.depth)
            self._frame.tasks += 1

    def spawn(self, work: float, depth: Optional[float] = None) -> None:
        """Shorthand for a branch consisting of a single charge."""
        if work < 0:
            raise PramError(f"negative work charge: {work}")
        d = work if depth is None else depth
        self._frame.work += work
        self._frame.branch_depths.append(d)
        self._frame.tasks += 1
        # Phase work attribution happens when the region closes for
        # depth; work must be added to open phases here.
        for ph in self._tracker._phase_stack:
            ph.work += work


def null_safe_charge(
    tracker: Optional[PramTracker], work: float, depth: Optional[float] = None
) -> None:
    """Charge helper tolerating ``tracker=None`` (accounting disabled)."""
    if tracker is not None:
        tracker.charge(work, depth)
