"""Instrumented PRAM primitives.

These are textbook CREW-PRAM routines (Ladner–Fischer parallel prefix,
Shiloach–Vishkin-style reduction, bitonic-flavoured parallel merge)
implemented as *rounds*: each round does O(1) operations per active
element, so the routine charges one depth unit and ``active`` work
units per round to the tracker.  Phase 2 of the main algorithm is "an
approach similar to the systolic implementation of parallel prefix
computation" (paper §2.1) — these primitives make that structure
testable in isolation.

The implementations are genuinely data-parallel over NumPy arrays, so
a round really is a constant number of vectorised array operations.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, TypeVar

import numpy as np

from repro.pram.tracker import PramTracker

__all__ = [
    "parallel_prefix",
    "parallel_reduce",
    "parallel_max_index",
    "parallel_merge_positions",
    "prefix_combine",
]

T = TypeVar("T")


def _charge(tracker: Optional[PramTracker], work: float, depth: float) -> None:
    if tracker is not None:
        tracker.charge(work, depth)


def parallel_prefix(
    values: np.ndarray, tracker: Optional[PramTracker] = None
) -> np.ndarray:
    """Inclusive prefix sums by pointer doubling (Ladner–Fischer).

    Depth ``ceil(log2 n)`` rounds; work ``O(n log n)`` in this simple
    (non-work-optimal) variant — matching the paper's usage where the
    prefix skeleton has logarithmic depth and the work-optimality comes
    from Brent-scheduling the real per-node tasks.
    """
    out = np.array(values, dtype=np.float64, copy=True)
    n = out.shape[0]
    if n <= 1:
        _charge(tracker, max(n, 1), 1)
        return out
    shift = 1
    while shift < n:
        out[shift:] = out[shift:] + out[:-shift]
        _charge(tracker, n - shift, 1)
        shift <<= 1
    return out


def prefix_combine(
    items: Sequence[T],
    combine: Callable[[T, T], T],
    identity: T,
    tracker: Optional[PramTracker] = None,
) -> list[T]:
    """Generic *exclusive* prefix over an arbitrary associative
    ``combine`` — the exact shape of Phase 2.

    ``result[i] = combine(items[0], ..., items[i-1])`` with
    ``result[0] = identity``.  Implemented as the classic up-sweep /
    down-sweep tree: ``O(n)`` combines, ``O(log n)`` rounds, each round
    combining disjoint pairs in parallel.
    """
    n = len(items)
    if n == 0:
        return []
    size = 1 << max(0, (n - 1).bit_length())
    tree: list[T] = [identity] * (2 * size)
    for i in range(n):
        tree[size + i] = items[i]
    # Up-sweep: level by level, parallel across nodes of a level.
    level_size = size >> 1
    base = size >> 1
    while base >= 1:
        if tracker is not None:
            with tracker.parallel() as par:
                for i in range(base, 2 * base):
                    with par.branch():
                        tracker.charge(1)
                        tree[i] = combine(tree[2 * i], tree[2 * i + 1])
        else:
            for i in range(base, 2 * base):
                tree[i] = combine(tree[2 * i], tree[2 * i + 1])
        base >>= 1
        level_size >>= 1
    # Down-sweep: each node receives the prefix of everything before
    # its subtree; the left child inherits it, the right child gets it
    # combined with the left sibling's subtree total.
    down: list[T] = [identity] * (2 * size)
    down[1] = identity
    base = 1
    while base < size:
        if tracker is not None:
            with tracker.parallel() as par:
                for i in range(base, 2 * base):
                    with par.branch():
                        tracker.charge(1)
                        down[2 * i] = down[i]
                        down[2 * i + 1] = combine(down[i], tree[2 * i])
        else:
            for i in range(base, 2 * base):
                down[2 * i] = down[i]
                down[2 * i + 1] = combine(down[i], tree[2 * i])
        base <<= 1
    return [down[size + i] for i in range(n)]


def parallel_reduce(
    values: np.ndarray, tracker: Optional[PramTracker] = None
) -> float:
    """Sum reduction by halving: depth ``ceil(log2 n)``, work ``O(n)``."""
    buf = np.array(values, dtype=np.float64, copy=True)
    n = buf.shape[0]
    if n == 0:
        return 0.0
    while n > 1:
        half = n // 2
        buf[:half] += buf[n - half : n]
        n -= half
        _charge(tracker, half, 1)
    return float(buf[0])


def parallel_max_index(
    values: np.ndarray, tracker: Optional[PramTracker] = None
) -> int:
    """Argmax by tournament halving: depth ``ceil(log2 n)``.

    (Shiloach–Vishkin give an O(log log n) CRCW algorithm; CREW — the
    paper's model — needs Ω(log n), which this achieves.)
    """
    n = values.shape[0]
    idx = np.arange(n)
    vals = np.array(values, dtype=np.float64, copy=True)
    while n > 1:
        half = n // 2
        left = vals[:half]
        right = vals[n - half : n]
        take_right = right > left
        vals[:half] = np.where(take_right, right, left)
        idx[:half] = np.where(take_right, idx[n - half : n], idx[:half])
        n -= half
        _charge(tracker, half, 1)
    return int(idx[0])


def parallel_merge_positions(
    a: np.ndarray, b: np.ndarray, tracker: Optional[PramTracker] = None
) -> np.ndarray:
    """Positions of the elements of sorted ``a`` within ``merge(a, b)``.

    The CREW merge: every element binary-searches the other array
    concurrently — depth ``O(log |b|)``, work ``O(|a| log |b|)``.
    Returned positions are stable (ties favour ``a``).
    """
    ranks = np.searchsorted(b, a, side="left")
    _charge(
        tracker,
        a.shape[0] * max(1, math.ceil(math.log2(max(b.shape[0], 2)))),
        max(1, math.ceil(math.log2(max(b.shape[0], 2)))),
    )
    return np.arange(a.shape[0]) + ranks
