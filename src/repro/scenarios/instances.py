"""Materialise scenario instances and run their consumers.

This module is the *only* code behind the spec: one materialiser per
workload kind (``terrain`` / ``segments`` / ``dem-file`` /
``flyover``), one signature runner per kind for the parity role, and
one timed-callable builder per bench ``op``.  Adding a scenario never
adds code here — only a new family or op does (see
``docs/SCENARIOS.md``).

Everything numpy-adjacent (terrain generators, the flat kernels)
imports lazily inside the materialisers, so the spec machinery — and
the ``repro scenarios`` CLI — works on the pure-python leg; actually
*running* a numpy-engine config still requires numpy, exactly like
every other front door.

The segment families here are the single source of truth for the
bench workloads too: :mod:`repro.bench.envelope_bench` imports
:func:`e9_segments` / :func:`wide_strip_segments` from this module
(seeds 17 / 29, unchanged from the recorded rows).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.config import HsrConfig
from repro.errors import ScenarioError
from repro.geometry.segments import ImageSegment
from repro.scenarios.spec import Scenario, ScenarioInstance, ScenarioSpec

__all__ = [
    "e9_segments",
    "wide_strip_segments",
    "coincident_segments",
    "vertical_segments",
    "segments_for",
    "terrain_for",
    "dem_terrain_for",
    "flyover_terrains",
    "config_of",
    "parity_signature",
    "check_parity",
    "bench_callables",
    "iter_bench_rows",
]


# ---------------------------------------------------------------------------
# Segment families (pure python; shared with repro.bench.envelope_bench)


def e9_segments(m: int, seed: int = 17) -> list[ImageSegment]:
    """The E9 workload family: random segments over a wide strip whose
    live profile stays small (scan-bound inserts)."""
    rng = random.Random(seed)
    out = []
    for i in range(m):
        y1 = rng.uniform(0, 1000)
        out.append(
            ImageSegment(
                y1,
                rng.uniform(0, 100),
                y1 + rng.uniform(1, 60),
                rng.uniform(0, 100),
                i,
            )
        )
    return out


def wide_strip_segments(m: int, seed: int = 29) -> list[ImageSegment]:
    """Churny wide-strip family: the strip scales with ``m`` so the
    live profile holds Θ(m) pieces — the regime where a tuple splice
    pays Θ(profile) copying per edge."""
    rng = random.Random(seed)
    span = 8.0 * m
    out = []
    for i in range(m):
        y1 = rng.uniform(0, span)
        out.append(
            ImageSegment(
                y1,
                rng.uniform(0, 100),
                y1 + rng.uniform(1, 60),
                rng.uniform(0, 100),
                i,
            )
        )
    return out


def coincident_segments(m: int, seed: int = 3) -> list[ImageSegment]:
    """Coincident ridges: every segment inserted twice (same lanes,
    same source) — the hardest eps-tie workload for the scans."""
    rng = random.Random(seed)
    base = []
    for i in range(m):
        y1 = rng.uniform(0.0, 100.0 - 0.5)
        y2 = rng.uniform(y1 + 0.5, 100.0)
        base.append(
            ImageSegment(
                y1, rng.uniform(0.0, 50.0), y2, rng.uniform(0.0, 50.0), i
            )
        )
    return [s for s in base for _ in (0, 1)]


def vertical_segments(m: int, seed: int = 3) -> list[ImageSegment]:
    """Measure-zero verticals only: the profile must never change."""
    rng = random.Random(seed)
    out = []
    for i in range(m):
        y = rng.uniform(0.0, 100.0)
        z1 = rng.uniform(0.0, 50.0)
        out.append(ImageSegment(y, z1, y, z1 + rng.uniform(0.5, 10.0), i))
    return out


_SEGMENT_FAMILIES: dict[str, Callable[[int, int], list[ImageSegment]]] = {
    "e9": e9_segments,
    "wide-strip": wide_strip_segments,
    "coincident": coincident_segments,
    "vertical": vertical_segments,
}


def segments_for(params: dict[str, Any]) -> list[ImageSegment]:
    family = params.get("family")
    try:
        gen = _SEGMENT_FAMILIES[family]
    except KeyError:
        raise ScenarioError(
            f"unknown segment family {family!r};"
            f" known: {sorted(_SEGMENT_FAMILIES)}"
        ) from None
    return gen(int(params["m"]), int(params.get("seed", 0)))


# ---------------------------------------------------------------------------
# Terrain families (numpy imported lazily)


def terrain_for(params: dict[str, Any]):
    """Materialise a terrain workload instance.

    ``family`` selects the generator; ``size`` maps to the fractal
    ``size`` or ``rows = cols`` for the grid families; ``observer``
    (degrees) rotates the terrain — the observer-placement axis.  The
    ``*_plateau`` families are the degenerate adversarial grids
    promoted from one-off tests: ``constant_plateau`` is an all-ties
    heightfield, ``lattice_plateau`` additionally drops the xy jitter
    (exact collinear/coincident-y lattice).
    """
    import numpy as np

    from repro.terrain.generators import (
        GENERATORS,
        fractal_terrain,
        grid_terrain_from_heights,
    )

    family = params.get("family")
    size = int(params.get("size", 9))
    seed = int(params.get("seed", 0))
    if family == "fractal":
        terrain = fractal_terrain(size=size, seed=seed)
    elif family == "constant_plateau":
        terrain = grid_terrain_from_heights(
            np.full((size, size), 5.0), jitter_seed=seed
        )
    elif family == "lattice_plateau":
        terrain = grid_terrain_from_heights(
            np.full((size, size), 5.0), jitter_seed=None
        )
    elif family in ("valley", "ridge", "plateau"):
        terrain = GENERATORS[family](rows=size, cols=size, seed=seed)
    elif family == "shielded_basin":
        terrain = GENERATORS[family](
            rows=size,
            cols=size,
            seed=seed,
            occlusion=float(params.get("occlusion", 1.0)),
        )
    else:
        raise ScenarioError(
            f"unknown terrain family {family!r}; known: fractal,"
            " valley, ridge, plateau, shielded_basin,"
            " constant_plateau, lattice_plateau"
        )
    observer = float(params.get("observer", 0.0))
    return terrain.rotated(observer) if observer else terrain


def dem_terrain_for(params: dict[str, Any]):
    """Load the DEM-tile workload through the real ingestion path."""
    from importlib import resources

    path = params.get("path")
    if not path:
        raise ScenarioError("dem-file scenarios need a fixed 'path'")
    fmt = params.get("format", "esri-ascii")
    ref = resources.files("repro.scenarios") / str(path)
    try:
        text = ref.read_text()
    except (OSError, FileNotFoundError) as exc:
        raise ScenarioError(f"dem tile {path!r}: {exc}") from exc
    if fmt == "esri-ascii":
        import io

        from repro.terrain.dem import dem_to_terrain

        terrain = dem_to_terrain(io.StringIO(text))
    elif fmt == "json":
        import tempfile

        from repro.terrain.io import load_terrain_json

        with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False
        ) as tmp:
            tmp.write(text)
        try:
            terrain = load_terrain_json(tmp.name)
        finally:
            import os

            os.unlink(tmp.name)
    else:
        raise ScenarioError(
            f"unknown dem format {fmt!r}; known: esri-ascii, json"
        )
    observer = float(params.get("observer", 0.0))
    return terrain.rotated(observer) if observer else terrain


def flyover_terrains(params: dict[str, Any]) -> list:
    """The moving-observer flyover: one base terrain observed from
    ``frames`` evenly spaced azimuths across ``sweep`` degrees.  Each
    frame re-runs the incremental insert loop from its own viewpoint."""
    frames = int(params.get("frames", 3))
    if frames < 1:
        raise ScenarioError("flyover needs frames >= 1")
    sweep = float(params.get("sweep", 90.0))
    base = terrain_for(params)
    out = []
    for i in range(frames):
        az = i * sweep / frames
        out.append(base.rotated(az) if az else base)
    return out


# ---------------------------------------------------------------------------
# Config variants and parity signatures


def config_of(cfg: dict[str, Any]) -> HsrConfig:
    """An :class:`HsrConfig` from a spec config table (drops ``id``)."""
    fields = {k: v for k, v in cfg.items() if k != "id"}
    return HsrConfig(**fields)


def _run_signature(terrain, config: HsrConfig):
    from repro.hsr.sequential import SequentialHSR

    res = SequentialHSR(config=config).run(terrain)
    return (
        res.stats.k,
        res.stats.ops,
        res.stats.extra,
        tuple(res.order),
        res.visibility_map.segments,
    )


def _insert_loop(segments, config: HsrConfig):
    """The generic front-to-back insert loop under ``config`` —
    mirrors ``SequentialHSR._insert_loop`` for bare segment lists."""
    record = []
    ops = 0
    if config.resolved_engine() == "numpy":
        from repro.envelope.flat_splice import (
            FlatProfile,
            insert_segment_flat,
        )

        if config.packed_profile():
            from repro.envelope.packed import PackedProfile

            prof = PackedProfile.empty()
        else:
            prof = FlatProfile.empty()
        for seg in segments:
            res = insert_segment_flat(
                prof, seg, eps=config.eps, config=config
            )
            prof = res.profile
            ops += res.ops
            record.append(tuple(res.visibility.parts))
        return prof.to_envelope(), ops, record
    from repro.envelope.chain import Envelope
    from repro.envelope.splice import insert_segment

    env = Envelope.empty()
    for seg in segments:
        res = insert_segment(env, seg, eps=config.eps, engine="python")
        env = res.envelope
        ops += res.ops
        record.append(tuple(res.visibility.parts))
    return env, ops, record


def _segments_signature(segments, config: HsrConfig):
    env, ops, record = _insert_loop(segments, config)
    return (ops, tuple(record), tuple(env.pieces))


def parity_signature(inst: ScenarioInstance, cfg: dict[str, Any]):
    """Run ``inst`` under one config variant; the returned value is
    equality-comparable across variants (bit-exact parity contract)."""
    params = inst.params()
    config = config_of(cfg)
    kind = inst.scenario.workload
    if kind == "terrain":
        return _run_signature(terrain_for(params), config)
    if kind == "segments":
        return _segments_signature(segments_for(params), config)
    if kind == "dem-file":
        return _run_signature(dem_terrain_for(params), config)
    if kind == "flyover":
        return tuple(
            _run_signature(frame, config)
            for frame in flyover_terrains(params)
        )
    raise ScenarioError(f"unknown workload kind {kind!r}")


def check_parity(inst: ScenarioInstance) -> None:
    """Assert every config variant of ``inst`` produces the identical
    signature as the scenario's first (reference) config."""
    configs = inst.scenario.configs
    if len(configs) < 2:
        raise ScenarioError(
            f"scenario {inst.name!r} has fewer than 2 configs"
        )
    reference = parity_signature(inst, configs[0])
    for cfg in configs[1:]:
        got = parity_signature(inst, cfg)
        assert got == reference, (
            f"{inst.instance_id}: config {cfg['id']!r} diverges from"
            f" reference {configs[0]['id']!r}"
        )


# ---------------------------------------------------------------------------
# Bench rows


def bench_callables(
    scenario: Scenario, inst: ScenarioInstance, *, canary: bool = False
) -> tuple[dict[str, Callable[[], Any]], int, int]:
    """``(callables, m, env_size)`` for one bench instance.

    ``callables`` maps the scenario's two config ids (baseline first)
    to zero-argument timed bodies for
    ``envelope_bench._time_interleaved``.  ``canary=True`` replaces
    the variant config with the *baseline* config — the deliberate
    slowdown the perf gate's CI canary leg must catch.
    """
    params = inst.params()
    base_cfg, var_cfg = scenario.configs
    configs = {
        base_cfg["id"]: config_of(base_cfg),
        var_cfg["id"]: config_of(base_cfg if canary else var_cfg),
    }
    op = scenario.op
    if op == "build":
        from repro.envelope.build import build_envelope

        segs = segments_for(params)
        m = len(segs)
        env_size = build_envelope(
            segs, config=configs[var_cfg["id"]]
        ).envelope.size
        fns = {
            label: (lambda c=c: build_envelope(segs, config=c))
            for label, c in configs.items()
        }
    elif op == "insert":
        segs = segments_for(params)
        m = len(segs)
        env_size = _insert_loop(segs, configs[var_cfg["id"]])[0].size
        fns = {
            label: (lambda c=c: _insert_loop(segs, c))
            for label, c in configs.items()
        }
    elif op == "run":
        from repro.hsr.sequential import SequentialHSR

        kind = scenario.workload
        terrain = (
            dem_terrain_for(params)
            if kind == "dem-file"
            else terrain_for(params)
        )
        m = terrain.n_edges
        env_size = SequentialHSR(config=configs[var_cfg["id"]]).run(
            terrain
        ).stats.k
        fns = {
            label: (
                lambda c=c: SequentialHSR(config=c).run(terrain)
            )
            for label, c in configs.items()
        }
    elif op == "flyover":
        from repro.hsr.sequential import SequentialHSR

        frames = flyover_terrains(params)
        m = frames[0].n_edges
        env_size = sum(
            SequentialHSR(config=configs[var_cfg["id"]]).run(f).stats.k
            for f in frames
        )

        def loop(c):
            for f in frames:
                SequentialHSR(config=c).run(f)

        fns = {
            label: (lambda c=c: loop(c)) for label, c in configs.items()
        }
    else:  # pragma: no cover - spec validation rejects unknown ops
        raise ScenarioError(f"unknown bench op {op!r}")
    return fns, m, env_size


def iter_bench_rows(
    spec: ScenarioSpec,
    *,
    repeats: int,
    time_fn: Callable[[dict, int], dict[str, float]],
    max_m: Optional[int] = None,
):
    """Yield ``BENCH_envelope.json``-shaped rows for every bench
    scenario instance, timed through ``time_fn`` (pass
    ``envelope_bench._time_interleaved`` so the PR-8 GC hygiene
    applies).  ``max_m`` skips instances whose declared size factor
    exceeds it (quick mode).  Scenarios flagged ``requires_ccore``
    are skipped on installs without the compiled core — recording the
    row there would time a silent cascade fallback, and the perf gate
    skips the same rows symmetrically."""
    from repro.envelope import _ccore

    for scenario in spec.by_role("bench"):
        if scenario.requires_ccore and not _ccore.HAVE_CCORE:
            continue
        base_id, var_id = scenario.config_ids()
        for inst in scenario.instances():
            declared = inst.factor("m", inst.factor("size"))
            if (
                max_m is not None
                and isinstance(declared, (int, float))
                and declared > max_m
            ):
                continue
            fns, m, env_size = bench_callables(scenario, inst)
            best = time_fn(fns, repeats)
            yield dict(
                workload=f"scenario:{scenario.name}",
                m=m,
                env_size=env_size,
                python_ms=best[base_id] * 1e3,
                numpy_ms=best[var_id] * 1e3,
                speedup=best[base_id] / best[var_id],
            )
