"""Declarative scenario spec: the factorial workload matrix as data.

One spec file (JSON, or TOML on Python >= 3.11) declares every
workload the reproduction exercises — terrain family x observer
placement x input size x engine/:class:`~repro.config.HsrConfig`
variant — and three consumers expand the same spec:

* the pytest parity suites (``tests/test_scenarios.py`` plus the thin
  wrappers in ``tests/test_envelope_flat_splice.py`` /
  ``tests/test_adversarial.py``),
* the ``scenario:*`` bench rows of
  :mod:`repro.bench.envelope_bench`, and
* the CI perf-regression gate (:mod:`repro.scenarios.perfgate`).

No scenario carries code: a scenario is a name, a workload kind, a
dict of *crossed factors* (each factor a list of levels; the expansion
is their full Cartesian product), a dict of *fixed* parameters, and a
list of :class:`~repro.config.HsrConfig` variants.  Expansion is
deterministic: factor names are iterated in sorted order and level
order is preserved exactly as declared (declare ``m`` ascending and
the instances come out ascending), in the crossed-design-matrix style
of ``experimentator``'s ``design.py``.

Schema (see ``docs/SCENARIOS.md`` for the narrative version)::

    {
      "format": "repro-scenarios",
      "version": 1,
      "scenarios": {
        "<name>": {
          "workload": "terrain" | "segments" | "dem-file" | "flyover",
          "roles":    ["parity"] and/or ["bench"],
          "cross":    {"<factor>": [level, ...], ...},
          "fixed":    {"<param>": value, ...},          # optional
          "configs":  [{"id": "...", <HsrConfig field>: ...}, ...],
          "op":       "build" | "insert" | "run" | "flyover",  # bench
          "pinned":   [<m or n_edges level>, ...],      # perf gate
          "requires_ccore": true,                       # optional
        }
      }
    }
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.errors import ScenarioError

__all__ = [
    "Scenario",
    "ScenarioInstance",
    "ScenarioSpec",
    "load_spec",
    "default_spec",
    "DEFAULT_SPEC_RESOURCE",
]

SPEC_FORMAT = "repro-scenarios"

#: Name of the packaged default spec file (the single source of truth
#: for "what workloads exist").
DEFAULT_SPEC_RESOURCE = "default_scenarios.json"

_WORKLOADS = frozenset({"terrain", "segments", "dem-file", "flyover"})
_ROLES = frozenset({"parity", "bench"})
_OPS = frozenset({"build", "insert", "run", "flyover"})
_SCENARIO_KEYS = frozenset(
    {
        "workload",
        "roles",
        "cross",
        "fixed",
        "configs",
        "op",
        "pinned",
        "requires_ccore",
    }
)
#: HsrConfig field names accepted in a config variant (plus "id").
_CONFIG_FIELDS = frozenset(
    {
        "engine",
        "eps",
        "workers",
        "use_packed_profile",
        "use_fused_insert",
        "use_scalar_fastpaths",
        "use_compiled_insert",
        "flat_merge_cutoff",
        "flat_visibility_cutoff",
        "flat_fused_cutoff",
        "parallel_min_segments",
        "parallel_min_pieces",
    }
)


@dataclass(frozen=True)
class ScenarioInstance:
    """One concrete workload: a scenario name plus a full factor
    assignment (one level per crossed factor, fixed params merged in).

    The instance is *config-free*: parity runs every config variant of
    its scenario over the same instance and asserts identical results;
    the bench times the scenario's two configs against each other.
    """

    scenario: "Scenario"
    factors: tuple[tuple[str, Any], ...]  # sorted by factor name

    @property
    def name(self) -> str:
        return self.scenario.name

    def factor(self, key: str, default: Any = None) -> Any:
        for k, v in self.factors:
            if k == key:
                return v
        return self.scenario.fixed.get(key, default)

    def params(self) -> dict[str, Any]:
        """Fixed params overlaid with this instance's factor levels."""
        out = dict(self.scenario.fixed)
        out.update(self.factors)
        return out

    @property
    def instance_id(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in self.factors)
        return f"{self.name}[{inner}]"

    def __str__(self) -> str:  # pytest ids
        return self.instance_id


@dataclass(frozen=True)
class Scenario:
    """One named entry of the spec; see the module docstring schema."""

    name: str
    workload: str
    roles: frozenset[str]
    cross: tuple[tuple[str, tuple[Any, ...]], ...]  # sorted by factor
    fixed: dict[str, Any] = field(default_factory=dict)
    configs: tuple[dict[str, Any], ...] = ()
    op: Optional[str] = None
    pinned: tuple[Any, ...] = ()
    #: The scenario only makes sense with the optional compiled insert
    #: core present (a config relies on its default-on dispatch): bench
    #: recording and the perf gate skip it on no-compiler installs.
    requires_ccore: bool = False

    def instances(self) -> list[ScenarioInstance]:
        """Deterministic full-factorial expansion.

        Factors iterate in sorted-name order; within a factor the
        declared level order is preserved.  The output order is the
        Cartesian product in that (sorted, declared) order — stable
        across processes and Python versions.
        """
        names = [k for k, _ in self.cross]
        level_lists = [levels for _, levels in self.cross]
        out = []
        for combo in itertools.product(*level_lists):
            out.append(
                ScenarioInstance(self, tuple(zip(names, combo)))
            )
        return out

    def config_ids(self) -> list[str]:
        return [c["id"] for c in self.configs]

    @property
    def n_instances(self) -> int:
        n = 1
        for _, levels in self.cross:
            n *= len(levels)
        return n


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated spec: an ordered mapping of scenarios."""

    scenarios: tuple[Scenario, ...]
    source: Optional[str] = None  # path or resource, for messages

    def names(self) -> list[str]:
        return [s.name for s in self.scenarios]

    def scenario(self, name: str) -> Scenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise ScenarioError(
            f"unknown scenario {name!r}"
            + (f" in {self.source}" if self.source else "")
            + f"; known: {self.names()}"
        )

    def by_role(self, role: str) -> list[Scenario]:
        if role not in _ROLES:
            raise ScenarioError(
                f"unknown role {role!r}; known: {sorted(_ROLES)}"
            )
        return [s for s in self.scenarios if role in s.roles]

    def pinned_rows(self) -> list[tuple[Scenario, ScenarioInstance]]:
        """The (scenario, instance) pairs the perf gate re-times: the
        bench scenarios whose size factor is listed in ``pinned``."""
        out = []
        for s in self.by_role("bench"):
            if not s.pinned:
                continue
            for inst in s.instances():
                if inst.factor("m", inst.factor("size")) in s.pinned:
                    out.append((s, inst))
        return out

    def iter_instances(
        self, role: Optional[str] = None
    ) -> Iterator[ScenarioInstance]:
        scenarios = self.by_role(role) if role else list(self.scenarios)
        for s in scenarios:
            yield from s.instances()

    @staticmethod
    def from_data(
        data: Any, *, source: Optional[str] = None
    ) -> "ScenarioSpec":
        """Validate raw (JSON/TOML-decoded) data into a spec."""
        where = f"{source}: " if source else ""
        if not isinstance(data, dict) or data.get("format") != SPEC_FORMAT:
            raise ScenarioError(
                f"{where}not a {SPEC_FORMAT} spec (missing"
                f" 'format': '{SPEC_FORMAT}')"
            )
        raw = data.get("scenarios")
        if not isinstance(raw, dict) or not raw:
            raise ScenarioError(
                f"{where}missing or empty 'scenarios' table"
            )
        scenarios = []
        for name, entry in raw.items():
            scenarios.append(_parse_scenario(name, entry, where))
        return ScenarioSpec(tuple(scenarios), source=source)


def _parse_scenario(name: str, entry: Any, where: str) -> Scenario:
    ctx = f"{where}scenario {name!r}"
    if not isinstance(entry, dict):
        raise ScenarioError(f"{ctx}: entry must be a table, got {entry!r}")
    unknown = set(entry) - _SCENARIO_KEYS
    if unknown:
        raise ScenarioError(
            f"{ctx}: unknown keys {sorted(unknown)};"
            f" known: {sorted(_SCENARIO_KEYS)}"
        )
    workload = entry.get("workload")
    if workload not in _WORKLOADS:
        raise ScenarioError(
            f"{ctx}: workload must be one of {sorted(_WORKLOADS)},"
            f" got {workload!r}"
        )
    roles = entry.get("roles", ["parity"])
    if (
        not isinstance(roles, list)
        or not roles
        or not set(roles) <= _ROLES
    ):
        raise ScenarioError(
            f"{ctx}: roles must be a non-empty subset of"
            f" {sorted(_ROLES)}, got {roles!r}"
        )
    cross = entry.get("cross", {})
    if not isinstance(cross, dict):
        raise ScenarioError(f"{ctx}: 'cross' must be a table of factors")
    for fname, levels in cross.items():
        if not isinstance(levels, list) or not levels:
            raise ScenarioError(
                f"{ctx}: factor {fname!r} must be a non-empty list of"
                f" levels, got {levels!r}"
            )
    fixed = entry.get("fixed", {})
    if not isinstance(fixed, dict):
        raise ScenarioError(f"{ctx}: 'fixed' must be a table")
    overlap = set(cross) & set(fixed)
    if overlap:
        raise ScenarioError(
            f"{ctx}: {sorted(overlap)} appear in both 'cross' and"
            " 'fixed'"
        )
    configs = entry.get("configs", [])
    if not isinstance(configs, list):
        raise ScenarioError(f"{ctx}: 'configs' must be a list of tables")
    seen_ids: set[str] = set()
    for cfg in configs:
        if not isinstance(cfg, dict) or "id" not in cfg:
            raise ScenarioError(
                f"{ctx}: each config needs an 'id' field, got {cfg!r}"
            )
        if cfg["id"] in seen_ids:
            raise ScenarioError(
                f"{ctx}: duplicate config id {cfg['id']!r}"
            )
        seen_ids.add(cfg["id"])
        bad = set(cfg) - _CONFIG_FIELDS - {"id"}
        if bad:
            raise ScenarioError(
                f"{ctx}: config {cfg['id']!r} has unknown HsrConfig"
                f" fields {sorted(bad)}"
            )
    op = entry.get("op")
    if "bench" in roles:
        if op not in _OPS:
            raise ScenarioError(
                f"{ctx}: bench scenarios need 'op' in {sorted(_OPS)},"
                f" got {op!r}"
            )
        if len(configs) != 2:
            raise ScenarioError(
                f"{ctx}: bench scenarios need exactly 2 configs"
                f" (baseline, variant), got {len(configs)}"
            )
    elif op is not None and op not in _OPS:
        raise ScenarioError(
            f"{ctx}: unknown op {op!r}; known: {sorted(_OPS)}"
        )
    if "parity" in roles and len(configs) < 2:
        raise ScenarioError(
            f"{ctx}: parity scenarios need >= 2 configs to compare"
        )
    pinned = entry.get("pinned", [])
    if not isinstance(pinned, list):
        raise ScenarioError(f"{ctx}: 'pinned' must be a list of levels")
    requires_ccore = entry.get("requires_ccore", False)
    if not isinstance(requires_ccore, bool):
        raise ScenarioError(
            f"{ctx}: 'requires_ccore' must be a boolean,"
            f" got {requires_ccore!r}"
        )
    return Scenario(
        name=name,
        workload=workload,
        roles=frozenset(roles),
        cross=tuple(
            sorted((k, tuple(v)) for k, v in cross.items())
        ),
        fixed=dict(fixed),
        configs=tuple(dict(c) for c in configs),
        op=op,
        pinned=tuple(pinned),
        requires_ccore=requires_ccore,
    )


def load_spec(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate a spec file (``.json``, or ``.toml`` on
    Python >= 3.11).  Every defect raises :class:`ScenarioError` with
    the path in context — the CLI turns that into a one-line
    ``error:`` and exit code 2."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise ScenarioError(f"{p}: {exc}") from exc
    if p.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py3.10 only
            raise ScenarioError(
                f"{p}: TOML specs need Python >= 3.11 (tomllib);"
                " use JSON instead"
            ) from exc
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{p}: not valid TOML ({exc})") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"{p}: not valid JSON (line {exc.lineno}, column"
                f" {exc.colno}: {exc.msg})"
            ) from exc
    return ScenarioSpec.from_data(data, source=str(p))


def default_spec() -> ScenarioSpec:
    """The packaged default matrix (``default_scenarios.json``)."""
    from importlib import resources

    ref = resources.files("repro.scenarios") / DEFAULT_SPEC_RESOURCE
    data = json.loads(ref.read_text())
    return ScenarioSpec.from_data(data, source=DEFAULT_SPEC_RESOURCE)
