"""Declarative scenario matrix: one spec file, three consumers.

``repro.scenarios`` turns the repository's workload zoo into data: a
single spec file (:data:`~repro.scenarios.spec.DEFAULT_SPEC_RESOURCE`,
packaged next to this module) declares crossed factorial scenarios —
terrain family x observer placement x input size x
:class:`~repro.config.HsrConfig` variant — and three consumers expand
the *same* spec:

* pytest parity fixtures (``tests/test_scenarios.py`` and the thin
  wrappers over the historical hand-rolled suites),
* the ``scenario:*`` rows of :mod:`repro.bench.envelope_bench`, and
* the CI perf-regression gate (:mod:`repro.scenarios.perfgate`,
  ``python -m repro perf-gate``).

The spec layer (:mod:`repro.scenarios.spec`) is stdlib-only; running
instances (:mod:`repro.scenarios.instances`) imports numpy lazily per
materialiser.  See ``docs/SCENARIOS.md``.
"""

from repro.scenarios.spec import (
    DEFAULT_SPEC_RESOURCE,
    Scenario,
    ScenarioInstance,
    ScenarioSpec,
    default_spec,
    load_spec,
)

__all__ = [
    "Scenario",
    "ScenarioInstance",
    "ScenarioSpec",
    "load_spec",
    "default_spec",
    "DEFAULT_SPEC_RESOURCE",
]
