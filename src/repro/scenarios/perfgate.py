"""CI perf-regression gate over the pinned scenario bench rows.

The gate re-times every *pinned* bench instance of the spec (the
``pinned`` levels of each bench-role scenario) and compares the fresh
baseline/variant **speedup ratio** against the ratio recorded in
``BENCH_envelope.json``.  Ratios, not milliseconds: a CI runner two
times slower than the recording machine slows both configs alike, so
the ratio is the machine-robust signal — it only collapses when the
variant config genuinely regressed relative to its baseline.

A fresh ratio more than ``tolerance`` (default 15%) below the
recorded one fails the gate (exit 1 via the CLI).  A missing baseline
row or malformed spec is a configuration error, not a regression —
:class:`~repro.errors.ScenarioError`, exit 2.

``canary=True`` deliberately injects a ~1x "slowdown" by timing the
baseline config against itself in the variant slot; CI runs this leg
and *requires it to fail*, proving the gate can actually catch a
regression on that runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec, default_spec

__all__ = ["GateRow", "GateReport", "run_perf_gate", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = Path("BENCH_envelope.json")

#: Fraction below the recorded speedup at which a pinned row fails.
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class GateRow:
    """One pinned instance: recorded vs fresh speedup ratio."""

    workload: str  # "scenario:<name>"
    instance_id: str
    m: int
    recorded_speedup: float
    fresh_speedup: float
    floor: float  # recorded * (1 - tolerance)

    @property
    def ok(self) -> bool:
        return self.fresh_speedup >= self.floor


@dataclass
class GateReport:
    """Outcome of one gate run; ``passed`` is the CI verdict."""

    rows: list[GateRow] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE
    canary: bool = False
    #: Pinned scenarios not gateable on this install (e.g. they need
    #: the optional compiled core and it isn't built here).
    skipped: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.ok for r in self.rows)

    @property
    def failures(self) -> list[GateRow]:
        return [r for r in self.rows if not r.ok]

    def format(self) -> str:
        head = "perf gate (%s): %d pinned row%s, tolerance %d%%" % (
            "CANARY — must fail" if self.canary else "clean",
            len(self.rows),
            "" if len(self.rows) == 1 else "s",
            round(self.tolerance * 100),
        )
        lines = [head]
        for r in self.rows:
            lines.append(
                "  %-6s %-42s m=%-6d recorded %.2fx  fresh %.2fx"
                "  floor %.2fx"
                % (
                    "ok" if r.ok else "FAIL",
                    r.instance_id,
                    r.m,
                    r.recorded_speedup,
                    r.fresh_speedup,
                    r.floor,
                )
            )
        for name in self.skipped:
            lines.append(
                "  skip   %s — needs the compiled core"
                " (not built on this install)" % name
            )
        lines.append(
            "verdict: %s" % ("PASS" if self.passed else "FAIL")
        )
        return "\n".join(lines)


def _have_ccore() -> bool:
    try:
        from repro.envelope import _ccore
    except ImportError:  # pragma: no cover - envelope always imports
        return False
    return bool(_ccore.HAVE_CCORE)


def _load_baseline_rows(baseline: Path) -> list[dict]:
    import json

    try:
        data = json.loads(Path(baseline).read_text())
    except OSError as exc:
        raise ScenarioError(f"{baseline}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ScenarioError(
            f"{baseline}: not valid JSON (line {exc.lineno}: {exc.msg})"
        ) from exc
    rows = data.get("rows") if isinstance(data, dict) else None
    if not isinstance(rows, list):
        raise ScenarioError(
            f"{baseline}: not a recorded bench file (missing 'rows')"
        )
    return rows


def run_perf_gate(
    spec: Optional[ScenarioSpec] = None,
    *,
    baseline: Path = DEFAULT_BASELINE,
    repeats: int = 5,
    tolerance: float = DEFAULT_TOLERANCE,
    canary: bool = False,
) -> GateReport:
    """Re-time the spec's pinned bench rows against ``baseline``.

    Returns a :class:`GateReport`; raises :class:`ScenarioError` when
    the baseline lacks a pinned row (record with
    ``python -m repro bench envelope --full`` first) or the spec has
    no pinned rows at all.
    """
    # Import inside so the spec layer stays importable without numpy.
    from repro.bench.envelope_bench import _time_interleaved
    from repro.scenarios.instances import bench_callables

    if spec is None:
        spec = default_spec()
    if not (0.0 < tolerance < 1.0):
        raise ScenarioError(
            f"tolerance must be in (0, 1), got {tolerance!r}"
        )
    pinned = spec.pinned_rows()
    if not pinned:
        raise ScenarioError(
            "spec has no pinned bench rows — nothing to gate"
            + (f" ({spec.source})" if spec.source else "")
        )
    recorded = _load_baseline_rows(baseline)
    by_key = {
        (r.get("workload"), r.get("m")): r
        for r in recorded
        if isinstance(r, dict)
    }
    report = GateReport(tolerance=tolerance, canary=canary)
    for scenario, inst in pinned:
        if scenario.requires_ccore and not _have_ccore():
            # Recorded on a compiled install, ungateable here: the
            # variant config would silently fall back to the cascade
            # and the collapsed ratio would false-alarm.
            if scenario.name not in report.skipped:
                report.skipped.append(scenario.name)
            continue
        fns, m, _env_size = bench_callables(
            scenario, inst, canary=canary
        )
        workload = f"scenario:{scenario.name}"
        rec = by_key.get((workload, m))
        if rec is None:
            raise ScenarioError(
                f"{baseline}: no recorded row for {workload} m={m} —"
                " re-record with 'python -m repro bench envelope"
                " --full' before gating"
            )
        base_id, var_id = scenario.config_ids()
        best = _time_interleaved(fns, repeats)
        fresh = best[base_id] / best[var_id]
        rec_speedup = float(rec["speedup"])
        report.rows.append(
            GateRow(
                workload=workload,
                instance_id=inst.instance_id,
                m=m,
                recorded_speedup=rec_speedup,
                fresh_speedup=fresh,
                floor=rec_speedup * (1.0 - tolerance),
            )
        )
    return report
