"""Geometry kernel: points, segments, predicates, convex chains.

See :mod:`repro.geometry.primitives` for the coordinate conventions
used across the library (map plane vs image plane).
"""

from repro.geometry.convex import (
    convex_hull,
    hull_extreme_index,
    is_convex_chain,
    lower_hull,
    max_over_hull,
    min_over_hull,
    upper_hull,
)
from repro.geometry.predicates import (
    incircle_exact,
    orient2d_adaptive,
    orient2d_exact,
    point_on_segment_exact,
    segments_intersect_exact,
)
from repro.geometry.primitives import (
    EPS,
    NEG_INF,
    Point2,
    Point3,
    almost_equal,
    bbox,
    collinear,
    cross2,
    dist2,
    inv_lerp,
    lerp,
    orient2d,
    turns_left,
    turns_right,
)
from repro.geometry.segments import (
    ImageSegment,
    MapSegment,
    line_crossing_y,
    segment_intersection_2d,
)

__all__ = [
    "EPS",
    "NEG_INF",
    "Point2",
    "Point3",
    "ImageSegment",
    "MapSegment",
    "almost_equal",
    "bbox",
    "collinear",
    "convex_hull",
    "cross2",
    "dist2",
    "hull_extreme_index",
    "incircle_exact",
    "inv_lerp",
    "is_convex_chain",
    "lerp",
    "line_crossing_y",
    "lower_hull",
    "max_over_hull",
    "min_over_hull",
    "orient2d",
    "orient2d_adaptive",
    "orient2d_exact",
    "point_on_segment_exact",
    "segment_intersection_2d",
    "segments_intersect_exact",
    "turns_left",
    "turns_right",
    "upper_hull",
]
