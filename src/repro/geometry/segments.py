"""Segments in the image (zy) plane and the map (xy) plane.

The central type is :class:`ImageSegment` — the projection of a terrain
edge onto the zy-plane, stored as a function of ``y`` (the horizontal
image coordinate).  Upper profiles are envelopes of these.

Vertical projections (both endpoints at the same ``y``) are legal
terrain edges; they are flagged ``is_vertical`` and contribute only a
point support to envelopes.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Optional

from repro.errors import GeometryError
from repro.geometry.primitives import EPS, Point2, lerp

__all__ = [
    "ImageSegment",
    "MapSegment",
    "line_crossing_y",
    "segment_intersection_2d",
]


class ImageSegment(NamedTuple):
    """A terrain edge projected on the image plane, as ``z(y)``.

    Attributes
    ----------
    y1, z1:
        Left endpoint (``y1 <= y2`` always holds).
    y2, z2:
        Right endpoint.
    source:
        Identifier of the originating terrain edge (index into the
        terrain's edge list); ``-1`` for synthetic segments.
    """

    y1: float
    z1: float
    y2: float
    z2: float
    source: int = -1

    @staticmethod
    def make(
        a: Point2, b: Point2, source: int = -1
    ) -> "ImageSegment":
        """Build from two image-plane points ``(y, z)``, normalising
        endpoint order so ``y1 <= y2``."""
        (y1, z1), (y2, z2) = a, b
        if y1 > y2:
            y1, z1, y2, z2 = y2, z2, y1, z1
        return ImageSegment(y1, z1, y2, z2, source)

    @property
    def is_vertical(self) -> bool:
        """True when the projection collapses to a single ``y``."""
        return self.y1 == self.y2

    @property
    def slope(self) -> float:
        """dz/dy; raises :class:`GeometryError` for vertical segments."""
        if self.is_vertical:
            raise GeometryError("slope of a vertical image segment")
        return (self.z2 - self.z1) / (self.y2 - self.y1)

    @property
    def top(self) -> float:
        """The larger of the two ``z`` endpoints."""
        return self.z1 if self.z1 >= self.z2 else self.z2

    def z_at(self, y: float) -> float:
        """Height of the segment's supporting line at ``y``.

        For vertical segments returns the top endpoint (the part that
        can contribute to an upper envelope).  Exact at endpoints.
        """
        if self.is_vertical:
            return self.top
        if y == self.y1:
            return self.z1
        if y == self.y2:
            return self.z2
        t = (y - self.y1) / (self.y2 - self.y1)
        return lerp(self.z1, self.z2, t)

    def covers(self, y: float, eps: float = 0.0) -> bool:
        """True when ``y`` lies in the segment's closed y-range."""
        return self.y1 - eps <= y <= self.y2 + eps

    def subsegment(self, ya: float, yb: float) -> "ImageSegment":
        """The sub-segment over ``[ya, yb]`` (must lie in the y-range)."""
        if ya > yb:
            raise GeometryError(f"empty subsegment range [{ya}, {yb}]")
        if ya < self.y1 - EPS or yb > self.y2 + EPS:
            raise GeometryError(
                f"subsegment [{ya}, {yb}] outside [{self.y1}, {self.y2}]"
            )
        ya = max(ya, self.y1)
        yb = min(yb, self.y2)
        return ImageSegment(ya, self.z_at(ya), yb, self.z_at(yb), self.source)

    def length(self) -> float:
        """Euclidean length in the image plane."""
        return math.hypot(self.y2 - self.y1, self.z2 - self.z1)

    def as_points(self) -> tuple[Point2, Point2]:
        """Endpoints as image-plane points ``(y, z)``."""
        return Point2(self.y1, self.z1), Point2(self.y2, self.z2)


class MapSegment(NamedTuple):
    """A terrain edge projected on the map (xy) plane.

    Stored normalised so ``y1 <= y2`` (the sweep in
    :mod:`repro.ordering` advances in ``y``).  ``x_at`` evaluates the
    segment's ``x`` as a function of ``y`` which is the "distance from
    viewer" coordinate (viewer at ``x = +inf``).
    """

    x1: float
    y1: float
    x2: float
    y2: float
    source: int = -1

    @staticmethod
    def make(a: Point2, b: Point2, source: int = -1) -> "MapSegment":
        (x1, y1), (x2, y2) = a, b
        if y1 > y2:
            x1, y1, x2, y2 = x2, y2, x1, y1
        return MapSegment(x1, y1, x2, y2, source)

    @property
    def is_horizontal(self) -> bool:
        """True when the edge is perpendicular to the sweep direction."""
        return self.y1 == self.y2

    def x_at(self, y: float) -> float:
        """``x`` of the supporting line at sweep position ``y``.

        Horizontal segments return the *maximum* x — the part of the
        edge nearest the viewer, which is what front-to-back ordering
        must compare.
        """
        if self.is_horizontal:
            return self.x1 if self.x1 >= self.x2 else self.x2
        if y == self.y1:
            return self.x1
        if y == self.y2:
            return self.x2
        t = (y - self.y1) / (self.y2 - self.y1)
        return lerp(self.x1, self.x2, t)

    def y_range(self) -> tuple[float, float]:
        return (self.y1, self.y2)


def line_crossing_y(
    a: ImageSegment, b: ImageSegment, eps: float = EPS
) -> Optional[float]:
    """``y`` where the supporting *lines* of two non-vertical image
    segments cross, or ``None`` when (near-)parallel.

    The caller restricts the result to the y-interval of interest; this
    helper does not clamp.
    """
    if a.is_vertical or b.is_vertical:
        raise GeometryError("line_crossing_y with vertical segment")
    sa = a.slope
    sb = b.slope
    denom = sa - sb
    if abs(denom) <= eps * (1.0 + abs(sa) + abs(sb)):
        return None
    # Solve z1a + sa*(y - y1a) == z1b + sb*(y - y1b)
    ca = a.z1 - sa * a.y1
    cb = b.z1 - sb * b.y1
    return (cb - ca) / denom


def segment_intersection_2d(
    p1: Point2, p2: Point2, q1: Point2, q2: Point2, eps: float = EPS
) -> Optional[Point2]:
    """Single proper intersection point of segments ``p1p2`` and
    ``q1q2`` or ``None``.

    Collinear overlap returns ``None`` (callers that care about overlap
    handle it separately); endpoint touching within ``eps`` counts as
    an intersection.
    """
    r = p2 - p1
    s = q2 - q1
    denom = r.x * s.y - r.y * s.x
    if abs(denom) <= eps:
        return None
    qp = q1 - p1
    t = (qp.x * s.y - qp.y * s.x) / denom
    u = (qp.x * r.y - qp.y * r.x) / denom
    if -eps <= t <= 1.0 + eps and -eps <= u <= 1.0 + eps:
        return Point2(p1.x + t * r.x, p1.y + t * r.y)
    return None
