"""Exact geometric predicates.

Float predicates (:mod:`repro.geometry.primitives`) are the fast path.
The functions here recompute the same signs with exact rational
arithmetic (:class:`fractions.Fraction`); the test-suite uses them to
cross-check float decisions, and robust call-sites fall back to them
when the float result is within tolerance of zero.

The pattern follows adaptive-precision predicates (Shewchuk): evaluate
in floating point, and only when the magnitude of the result is too
small to trust, re-evaluate exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.geometry.primitives import Point2

__all__ = [
    "orient2d_exact",
    "orient2d_adaptive",
    "incircle_exact",
    "segments_intersect_exact",
    "point_on_segment_exact",
]


def _fr(v: float) -> Fraction:
    return Fraction(v)


def orient2d_exact(o: Point2, a: Point2, b: Point2) -> int:
    """Exact orientation sign of ``o -> a -> b``: +1 CCW, -1 CW, 0."""
    det = (_fr(a.x) - _fr(o.x)) * (_fr(b.y) - _fr(o.y)) - (
        _fr(a.y) - _fr(o.y)
    ) * (_fr(b.x) - _fr(o.x))
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def orient2d_adaptive(o: Point2, a: Point2, b: Point2) -> int:
    """Orientation with a float fast path and exact fallback.

    The float cross product is trusted when its magnitude exceeds a
    conservative forward error bound; otherwise the exact sign is
    computed.
    """
    detleft = (a.x - o.x) * (b.y - o.y)
    detright = (a.y - o.y) * (b.x - o.x)
    det = detleft - detright
    detsum = abs(detleft) + abs(detright)
    # Forward error of det is bounded by ~4 ulp of detsum; 1e-14 is a
    # generous margin for double precision with coordinates O(1e3).
    if abs(det) > 1e-14 * detsum + 1e-300:
        return 1 if det > 0 else -1
    return orient2d_exact(o, a, b)


def incircle_exact(a: Point2, b: Point2, c: Point2, d: Point2) -> int:
    """Exact in-circle predicate for Delaunay triangulation.

    Returns +1 when ``d`` lies strictly inside the circle through
    ``a, b, c`` (taken in CCW order), -1 when strictly outside, 0 on
    the circle.  When ``a, b, c`` are CW the sign is flipped so the
    caller never needs to pre-orient.
    """
    orient = orient2d_exact(a, b, c)
    if orient == 0:
        return 0
    ax, ay = _fr(a.x) - _fr(d.x), _fr(a.y) - _fr(d.y)
    bx, by = _fr(b.x) - _fr(d.x), _fr(b.y) - _fr(d.y)
    cx, cy = _fr(c.x) - _fr(d.x), _fr(c.y) - _fr(d.y)
    det = (
        (ax * ax + ay * ay) * (bx * cy - cx * by)
        - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay)
    )
    sign = 1 if det > 0 else (-1 if det < 0 else 0)
    return sign * orient


def point_on_segment_exact(p: Point2, a: Point2, b: Point2) -> bool:
    """Exact test that ``p`` lies on the closed segment ``ab``."""
    if orient2d_exact(a, b, p) != 0:
        return False
    px, py = _fr(p.x), _fr(p.y)
    ax, ay = _fr(a.x), _fr(a.y)
    bx, by = _fr(b.x), _fr(b.y)
    return min(ax, bx) <= px <= max(ax, bx) and min(ay, by) <= py <= max(
        ay, by
    )


def segments_intersect_exact(
    a: Point2, b: Point2, c: Point2, d: Point2, *, proper_only: bool = False
) -> bool:
    """Exact segment-intersection test for ``ab`` vs ``cd``.

    With ``proper_only`` the segments must cross at a single interior
    point of both; otherwise shared endpoints and overlaps count too.
    """
    o1 = orient2d_exact(a, b, c)
    o2 = orient2d_exact(a, b, d)
    o3 = orient2d_exact(c, d, a)
    o4 = orient2d_exact(c, d, b)
    if o1 != o2 and o3 != o4 and 0 not in (o1, o2, o3, o4):
        return True
    if proper_only:
        return False
    if o1 == 0 and point_on_segment_exact(c, a, b):
        return True
    if o2 == 0 and point_on_segment_exact(d, a, b):
        return True
    if o3 == 0 and point_on_segment_exact(a, c, d):
        return True
    if o4 == 0 and point_on_segment_exact(b, c, d):
        return True
    # Touching cases where the crossing point is an endpoint but
    # orientations are non-zero never occur (an endpoint on the other
    # segment forces a zero orientation), so reaching here means the
    # straddle test already decided.
    return o1 != o2 and o3 != o4


def polygon_signed_area(points: Sequence[Point2]) -> float:
    """Signed area of a simple polygon (positive when CCW)."""
    n = len(points)
    if n < 3:
        return 0.0
    s = 0.0
    for i in range(n):
        p, q = points[i], points[(i + 1) % n]
        s += p.x * q.y - q.x * p.y
    return 0.5 * s
