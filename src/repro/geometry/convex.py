"""Convex chains and extreme-point queries.

The augmented Chazelle–Guibas structure (paper §3.1, Fig. 3) stores,
for each tree edge spanning profile diagonals ``a..b``, the *lower
convex chain* of the profile vertices between them.  Deciding whether a
query segment crosses the profile inside that span reduces to extreme-
point queries against the span's convex chains:

* ``min over vertices v of (v.z - line(v.y))`` is attained at a vertex
  of the **lower** hull,
* ``max`` at a vertex of the **upper** hull,

because a linear functional over a finite point set is extremised on
the convex hull, and the functional ``z - line(y)`` is linear in
``(y, z)``.  Both queries are ternary/binary searches over the hull in
``O(log h)`` — this is what gives the CG search its ``O(log^2)`` bound.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import Point2, cross2

__all__ = [
    "lower_hull",
    "upper_hull",
    "lower_hull_presorted",
    "upper_hull_presorted",
    "convex_hull",
    "hull_extreme_index",
    "min_over_hull",
    "max_over_hull",
    "is_convex_chain",
]


def lower_hull(points: Sequence[Point2]) -> list[Point2]:
    """Lower convex hull of points sorted by ``x`` (ties by ``y``).

    The input need not be sorted; it is sorted internally.  The result
    runs left to right and every interior vertex is a strict right
    turn's extreme (collinear middle points are dropped).
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return list(pts)
    hull: list[Point2] = []
    for p in pts:
        while len(hull) >= 2 and cross2(hull[-2], hull[-1], p) <= 0.0:
            hull.pop()
        hull.append(p)
    return hull


def upper_hull(points: Sequence[Point2]) -> list[Point2]:
    """Upper convex hull, left to right (see :func:`lower_hull`)."""
    pts = sorted(set(points))
    if len(pts) <= 2:
        return list(pts)
    hull: list[Point2] = []
    for p in pts:
        while len(hull) >= 2 and cross2(hull[-2], hull[-1], p) >= 0.0:
            hull.pop()
        hull.append(p)
    return hull


def lower_hull_presorted(points: Sequence[Point2]) -> list[Point2]:
    """Lower hull of points already sorted by ``x`` — linear time.

    Unlike :func:`lower_hull` the input is not re-sorted or
    deduplicated; callers guarantee non-decreasing ``x`` (equal-x
    duplicates are tolerated and dominated ones drop out naturally).
    """
    hull: list[Point2] = []
    for p in points:
        if hull and hull[-1] == p:
            continue
        while len(hull) >= 2 and cross2(hull[-2], hull[-1], p) <= 0.0:
            hull.pop()
        hull.append(p)
    return hull


def upper_hull_presorted(points: Sequence[Point2]) -> list[Point2]:
    """Upper hull of x-sorted points — linear time (see
    :func:`lower_hull_presorted`)."""
    hull: list[Point2] = []
    for p in points:
        if hull and hull[-1] == p:
            continue
        while len(hull) >= 2 and cross2(hull[-2], hull[-1], p) >= 0.0:
            hull.pop()
        hull.append(p)
    return hull


def convex_hull(points: Sequence[Point2]) -> list[Point2]:
    """Full convex hull in CCW order (Andrew's monotone chain)."""
    lo = lower_hull(points)
    hi = upper_hull(points)
    if len(lo) <= 1:
        return lo
    return lo[:-1] + hi[::-1][:-1]


def hull_extreme_index(
    hull: Sequence[Point2],
    f: Callable[[Point2], float],
    *,
    maximize: bool,
) -> int:
    """Index of the hull vertex extremising the linear functional ``f``.

    ``hull`` must be a convex chain ordered by ``x`` (a lower or upper
    hull).  Along such a chain any linear functional is *unimodal*, so
    a ternary-style search finds the extreme in ``O(log h)`` evaluations.

    Raises :class:`GeometryError` on an empty hull.
    """
    n = len(hull)
    if n == 0:
        raise GeometryError("extreme query on empty hull")
    if n <= 3:
        vals = [f(p) for p in hull]
        return max(range(n), key=vals.__getitem__) if maximize else min(
            range(n), key=vals.__getitem__
        )
    lo, hi = 0, n - 1
    # Invariant: the extreme lies in [lo, hi].  Unimodality along the
    # chain lets us compare adjacent values to pick the half.
    while hi - lo > 2:
        m1 = lo + (hi - lo) // 3
        m2 = hi - (hi - lo) // 3
        v1, v2 = f(hull[m1]), f(hull[m2])
        if (v1 < v2) == maximize:
            lo = m1 + 1
        else:
            hi = m2 - 1
    vals = [f(hull[i]) for i in range(lo, hi + 1)]
    if maximize:
        off = max(range(len(vals)), key=vals.__getitem__)
    else:
        off = min(range(len(vals)), key=vals.__getitem__)
    return lo + off


def min_over_hull(hull: Sequence[Point2], a: float, b: float) -> float:
    """Minimum of ``p.y - (a*p.x + b)`` over the hull vertices.

    With image-plane points stored as ``(y, z)`` this is the minimum
    signed height of the chain above the line ``z = a*y + b``.
    """
    i = hull_extreme_index(
        hull, lambda p: p.y - (a * p.x + b), maximize=False
    )
    p = hull[i]
    return p.y - (a * p.x + b)


def max_over_hull(hull: Sequence[Point2], a: float, b: float) -> float:
    """Maximum of ``p.y - (a*p.x + b)`` over the hull vertices."""
    i = hull_extreme_index(
        hull, lambda p: p.y - (a * p.x + b), maximize=True
    )
    p = hull[i]
    return p.y - (a * p.x + b)


def is_convex_chain(points: Sequence[Point2], *, lower: bool) -> bool:
    """Validate that ``points`` forms a convex chain sorted by ``x``.

    ``lower=True`` checks left-turn convexity (a lower hull);
    ``lower=False`` checks right-turn convexity (an upper hull).
    Used by the test-suite and by debug assertions in the ACG builder.
    """
    for i in range(1, len(points)):
        if points[i].x < points[i - 1].x:
            return False
    for i in range(1, len(points) - 1):
        c = cross2(points[i - 1], points[i], points[i + 1])
        if lower and c <= 0.0:
            return False
        if not lower and c >= 0.0:
            return False
    return True
