"""Low-level geometric primitives.

The library works in two planes:

* the **xy-plane** (the "map" plane) — terrain edges are projected here
  to compute the front-to-back order; projections never cross.
* the **zy-plane** (the "image" plane) — terrain edges are projected
  here to compute upper profiles; the visible image lives here.

Points are plain ``(float, float)`` / ``(float, float, float)`` tuples
wrapped in lightweight named classes for readability.  All predicates
have a fast float path; the exact (``fractions.Fraction``) versions live
in :mod:`repro.geometry.predicates`.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple

from repro.errors import GeometryError

__all__ = [
    "EPS",
    "NEG_INF",
    "Point2",
    "Point3",
    "cross2",
    "orient2d",
    "collinear",
    "turns_left",
    "turns_right",
    "almost_equal",
    "lerp",
    "inv_lerp",
    "dist2",
    "bbox",
]

#: Default absolute tolerance used by float comparisons throughout the
#: library.  Workload generators keep coordinates within ``O(1e3)`` so a
#: fixed absolute epsilon is adequate; the exact predicates are used by
#: the test-suite to cross-check decisions near the tolerance.
EPS: float = 1e-9

#: The value an envelope takes where no segment is present.
NEG_INF: float = float("-inf")


class Point2(NamedTuple):
    """A point in a 2-D plane (either xy or zy, by context)."""

    x: float
    y: float

    def __add__(self, other: "Point2") -> "Point2":  # type: ignore[override]
        return Point2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point2") -> "Point2":
        return Point2(self.x - other.x, self.y - other.y)

    def scaled(self, f: float) -> "Point2":
        """Return this point scaled by ``f`` about the origin."""
        return Point2(self.x * f, self.y * f)


class Point3(NamedTuple):
    """A point on the terrain surface: ``z = f(x, y)``."""

    x: float
    y: float
    z: float

    def project_xy(self) -> Point2:
        """Map-plane projection (drop ``z``)."""
        return Point2(self.x, self.y)

    def project_zy(self) -> Point2:
        """Image-plane projection for a viewer at ``x = +inf``.

        Returns the point as ``(y, z)`` — the image plane is
        parameterised by ``y`` horizontally and ``z`` vertically, so in
        the returned :class:`Point2` the ``x`` slot holds ``y`` and the
        ``y`` slot holds ``z``.
        """
        return Point2(self.y, self.z)


def cross2(o: Point2, a: Point2, b: Point2) -> float:
    """Z-component of ``(a - o) × (b - o)``.

    Positive when ``o -> a -> b`` turns counter-clockwise.
    """
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def orient2d(o: Point2, a: Point2, b: Point2, eps: float = EPS) -> int:
    """Orientation predicate: ``+1`` CCW, ``-1`` CW, ``0`` collinear.

    ``eps`` is an absolute tolerance on the signed area; pass ``0.0``
    for strict floating-point sign.
    """
    c = cross2(o, a, b)
    if c > eps:
        return 1
    if c < -eps:
        return -1
    return 0


def collinear(o: Point2, a: Point2, b: Point2, eps: float = EPS) -> bool:
    """True when the three points are collinear within tolerance."""
    return orient2d(o, a, b, eps) == 0


def turns_left(o: Point2, a: Point2, b: Point2, eps: float = EPS) -> bool:
    """True when ``o -> a -> b`` makes a strict left (CCW) turn."""
    return orient2d(o, a, b, eps) > 0


def turns_right(o: Point2, a: Point2, b: Point2, eps: float = EPS) -> bool:
    """True when ``o -> a -> b`` makes a strict right (CW) turn."""
    return orient2d(o, a, b, eps) < 0


def almost_equal(a: float, b: float, eps: float = EPS) -> bool:
    """Absolute-tolerance float equality used by envelope bookkeeping."""
    return abs(a - b) <= eps


def lerp(a: float, b: float, t: float) -> float:
    """Linear interpolation ``a + t*(b-a)`` (exact at ``t=0`` and ``t=1``)."""
    if t == 0.0:
        return a
    if t == 1.0:
        return b
    return a + (b - a) * t


def inv_lerp(a: float, b: float, v: float) -> float:
    """Inverse interpolation: the ``t`` with ``lerp(a, b, t) == v``.

    Raises :class:`GeometryError` when ``a == b`` (no unique ``t``).
    """
    if a == b:
        raise GeometryError(f"inv_lerp over empty span [{a}, {b}]")
    return (v - a) / (b - a)


def dist2(a: Point2, b: Point2) -> float:
    """Euclidean distance between two plane points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def bbox(points: Iterable[Point2]) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``.

    Raises :class:`GeometryError` on an empty iterable.
    """
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise GeometryError("bbox of empty point set") from None
    xmin = xmax = first.x
    ymin = ymax = first.y
    for p in it:
        if p.x < xmin:
            xmin = p.x
        elif p.x > xmax:
            xmax = p.x
        if p.y < ymin:
            ymin = p.y
        elif p.y > ymax:
            ymax = p.y
    return (xmin, ymin, xmax, ymax)
