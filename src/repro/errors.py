"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError`` etc. are still raised for misuse of the API).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "DegeneracyError",
    "EnvelopeError",
    "TerrainError",
    "OrderingError",
    "PramError",
    "PersistenceError",
    "HsrError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class GeometryError(ReproError):
    """Invalid geometric input (zero-length segment, bad polygon, ...)."""


class DegeneracyError(GeometryError):
    """A degenerate configuration that a routine explicitly does not
    support (e.g. three collinear points where a strict turn is
    required)."""


class EnvelopeError(ReproError):
    """Malformed envelope (unsorted breakpoints, overlapping pieces)."""


class TerrainError(ReproError):
    """The input does not describe a terrain (``z = f(x, y)``) — for
    example two vertices share an ``(x, y)`` location with different
    heights, or the xy-projection of the edge set self-intersects."""


class OrderingError(ReproError):
    """Front-to-back ordering failed — the in-front-of constraint graph
    contains a cycle, which cannot happen for valid terrains and thus
    indicates corrupt input."""


class PramError(ReproError):
    """Misuse of the PRAM cost tracker (unbalanced phases, negative
    charges, scheduling with ``p <= 0``)."""


class PersistenceError(ReproError):
    """Invalid operation on a persistent structure (e.g. joining trees
    whose key ranges overlap)."""


class HsrError(ReproError):
    """Hidden-surface-removal pipeline failure."""


class BenchmarkError(ReproError):
    """Benchmark harness misconfiguration."""
