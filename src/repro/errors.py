"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError`` etc. are still raised for misuse of the API).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "DegeneracyError",
    "EnvelopeError",
    "TerrainError",
    "OrderingError",
    "PramError",
    "PersistenceError",
    "HsrError",
    "BenchmarkError",
    "ScenarioError",
    "ValidationError",
    "KernelFault",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class GeometryError(ReproError):
    """Invalid geometric input (zero-length segment, bad polygon, ...)."""


class DegeneracyError(GeometryError):
    """A degenerate configuration that a routine explicitly does not
    support (e.g. three collinear points where a strict turn is
    required)."""


class EnvelopeError(ReproError):
    """Malformed envelope (unsorted breakpoints, overlapping pieces)."""


class TerrainError(ReproError):
    """The input does not describe a terrain (``z = f(x, y)``) — for
    example two vertices share an ``(x, y)`` location with different
    heights, or the xy-projection of the edge set self-intersects."""


class OrderingError(ReproError):
    """Front-to-back ordering failed — the in-front-of constraint graph
    contains a cycle, which cannot happen for valid terrains and thus
    indicates corrupt input."""


class PramError(ReproError):
    """Misuse of the PRAM cost tracker (unbalanced phases, negative
    charges, scheduling with ``p <= 0``)."""


class PersistenceError(ReproError):
    """Invalid operation on a persistent structure (e.g. joining trees
    whose key ranges overlap)."""


class HsrError(ReproError):
    """Hidden-surface-removal pipeline failure."""


class BenchmarkError(ReproError):
    """Benchmark harness misconfiguration."""


class ScenarioError(ReproError):
    """Malformed scenario spec or unknown scenario reference
    (:mod:`repro.scenarios`): a spec file that is not valid JSON/TOML,
    a scenario entry failing schema validation, or a lookup of a
    scenario / baseline bench row that does not exist."""


class ValidationError(ReproError):
    """Input rejected by the reliability front door
    (:mod:`repro.reliability.validate`): non-finite elevations,
    duplicate ``(x, y)`` vertices, zero-length segments, malformed
    terrain files — problems that would otherwise surface as cryptic
    ``KeyError``/``IndexError`` deep inside a kernel, or as garbage
    output."""


class KernelFault(ReproError):
    """A guarded kernel boundary failed its post-condition checks or
    raised (see :mod:`repro.reliability.guard`).

    Raised in *strict* dispatch mode
    (``repro.reliability.guard.GUARDED_DISPATCH = False``), where a
    kernel fault surfaces immediately instead of degrading to the
    bit-exact python path.  ``site`` names the guard site that failed
    and ``cause`` carries the underlying exception, if any.
    """

    def __init__(self, site: str, cause: "BaseException | None" = None):
        self.site = site
        self.cause = cause
        msg = f"kernel fault at guard site {site!r}"
        if cause is not None:
            msg += f": {type(cause).__name__}: {cause}"
        super().__init__(msg)
