"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   synthesize a terrain and save it (JSON/OBJ)
``run``        hidden-surface removal on a terrain file or generator
``render``     SVG / ASCII rendering of a scene's visible image
``bench``      alias for ``python -m repro.bench``
``serve``      batched viewshed query service (JSON lines over TCP)
``scenarios``  inspect the declarative workload matrix (repro.scenarios)
``perf-gate``  CI perf-regression gate over the pinned bench rows
``info``       library version and experiment inventory
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Output-size sensitive parallel hidden-surface removal for"
            " terrains (Gupta & Sen, IPPS 1998 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize a terrain file")
    gen.add_argument("kind", help="generator family (see repro.terrain)")
    gen.add_argument("output", type=Path, help=".json or .obj path")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--size", type=int, default=None, help="fractal size")
    gen.add_argument("--rows", type=int, default=None)
    gen.add_argument("--cols", type=int, default=None)
    gen.add_argument("--n-points", type=int, default=None)
    gen.add_argument("--occlusion", type=float, default=None)

    run = sub.add_parser("run", help="hidden-surface removal")
    run.add_argument(
        "terrain", help="terrain file (.json/.obj) or generator kind"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--algorithm",
        choices=["parallel", "sequential", "naive", "zbuffer"],
        default="parallel",
    )
    run.add_argument(
        "--mode",
        choices=["direct", "persistent", "acg"],
        default="persistent",
        help="phase-2 engine (parallel algorithm only)",
    )
    run.add_argument(
        "--engine",
        choices=["auto", "python", "numpy"],
        default="auto",
        help=(
            "envelope merge kernel: 'numpy' for batched array sweeps,"
            " 'python' for the pure reference sweep, 'auto' (default)"
            " picks numpy when available; results are identical"
        ),
    )
    run.add_argument("--azimuth", type=float, default=0.0)
    run.add_argument("--json", action="store_true", help="machine output")
    run.add_argument("--svg", type=Path, default=None)

    rend = sub.add_parser("render", help="render a terrain's visible image")
    rend.add_argument("terrain", help="terrain file or generator kind")
    rend.add_argument("--seed", type=int, default=0)
    rend.add_argument("--azimuth", type=float, default=0.0)
    rend.add_argument("--svg", type=Path, default=None)
    rend.add_argument("--width", type=int, default=78)
    rend.add_argument("--height", type=int, default=22)

    bench = sub.add_parser("bench", help="run the experiment suite")
    bench.add_argument("experiments", nargs="*", default=[])
    bench.add_argument("--full", action="store_true")
    bench.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "JSON output path for the 'envelope' comparison (default:"
            " BENCH_envelope.json in the current directory)"
        ),
    )

    srv = sub.add_parser(
        "serve", help="batched viewshed query service (repro.service)"
    )
    srv.add_argument(
        "terrain", help="terrain file (.json/.obj) or generator kind"
    )
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642)
    srv.add_argument(
        "--engine", choices=["auto", "python", "numpy"], default="auto"
    )
    srv.add_argument(
        "--workers",
        default="1",
        help="process count for the envelope build ('auto' = all cores)",
    )
    srv.add_argument("--max-batch", type=int, default=256)
    srv.add_argument(
        "--coalesce-ms",
        type=float,
        default=1.0,
        help="gathering window for query coalescing (0 = drain-only)",
    )

    scn = sub.add_parser(
        "scenarios",
        help="inspect the declarative scenario matrix (repro.scenarios)",
    )
    scn_sub = scn.add_subparsers(dest="scenarios_command", required=True)
    scn_list = scn_sub.add_parser(
        "list", help="one line per scenario: instances, configs, roles"
    )
    scn_list.add_argument(
        "--spec",
        type=Path,
        default=None,
        help="spec file (.json/.toml); default: the packaged matrix",
    )
    scn_show = scn_sub.add_parser(
        "show", help="expand one scenario into its concrete instances"
    )
    scn_show.add_argument("name", help="scenario name (see 'list')")
    scn_show.add_argument("--spec", type=Path, default=None)

    gate = sub.add_parser(
        "perf-gate",
        help=(
            "re-time the pinned scenario bench rows and fail on"
            " speedup regression vs the recorded baseline"
        ),
    )
    gate.add_argument(
        "--spec", type=Path, default=None, help="scenario spec file"
    )
    gate.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="recorded bench JSON (default: BENCH_envelope.json)",
    )
    gate.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional drop below the recorded speedup",
    )
    gate.add_argument("--repeats", type=int, default=5)
    gate.add_argument(
        "--canary",
        action="store_true",
        help=(
            "inject a deliberate regression (variant config replaced"
            " by the baseline config); the gate must FAIL — CI runs"
            " this leg to prove the gate has teeth"
        ),
    )

    sub.add_parser("info", help="version + experiment inventory")
    return parser


def _load_terrain(spec: str, seed: int):
    from repro.terrain import (
        GENERATORS,
        generate_terrain,
        load_terrain_json,
        load_terrain_obj,
    )

    path = Path(spec)
    if path.suffix == ".json" and path.exists():
        return load_terrain_json(path)
    if path.suffix == ".obj" and path.exists():
        return load_terrain_obj(path)
    if spec in GENERATORS:
        kwargs = {"seed": seed}
        return generate_terrain(spec, **kwargs)
    from repro.errors import TerrainError

    hint = (
        " — synthetic generators need numpy (install the 'numpy'"
        " extra) or pass a terrain file"
        if not GENERATORS
        else ""
    )
    # A ReproError, not SystemExit: main() turns it into the one-line
    # `error:` contract with exit code 2 (no traceback).
    raise TerrainError(
        f"{spec!r} is neither an existing terrain file nor a"
        f" generator kind (known: {sorted(GENERATORS)}){hint}"
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.terrain import (
        generate_terrain,
        save_terrain_json,
        save_terrain_obj,
    )

    kwargs: dict[str, object] = {"seed": args.seed}
    for key in ("size", "rows", "cols", "n_points", "occlusion"):
        value = getattr(args, key)
        if value is not None:
            kwargs[key] = value
    terrain = generate_terrain(args.kind, **kwargs)
    if args.output.suffix == ".obj":
        save_terrain_obj(terrain, args.output)
    else:
        save_terrain_json(terrain, args.output)
    print(f"wrote {args.output}: {terrain}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.hsr import NaiveHSR, ParallelHSR, SequentialHSR
    from repro.pram import PramTracker
    from repro.render import render_visibility_svg

    terrain = _load_terrain(args.terrain, args.seed)
    if args.azimuth:
        terrain = terrain.rotated(args.azimuth)

    engine = None if args.engine == "auto" else args.engine
    from repro.envelope.engine import resolve_engine
    from repro.errors import EnvelopeError

    try:
        resolve_engine(engine)
    except EnvelopeError as exc:  # e.g. --engine numpy without numpy
        raise SystemExit(f"error: {exc}") from None
    tracker: Optional[PramTracker] = None
    if args.algorithm == "parallel":
        tracker = PramTracker()
        result = ParallelHSR(mode=args.mode, engine=engine).run(
            terrain, tracker=tracker
        )
    elif args.algorithm == "sequential":
        result = SequentialHSR(engine=engine).run(terrain)
    elif args.algorithm == "naive":
        result = NaiveHSR().run(terrain)
    else:
        # Imported lazily: the z-buffer baseline is the one algorithm
        # that hard-requires numpy.
        from repro.hsr.zbuffer import ZBufferHSR

        result = ZBufferHSR().run(terrain)

    if args.svg is not None:
        render_visibility_svg(result.visibility_map, args.svg)

    if args.json:
        payload = {
            "algorithm": args.algorithm,
            "n": terrain.n_edges,
            "k": result.k,
            "visible_edges": len(result.visibility_map.visible_edges()),
            "seconds": result.stats.wall_time_s,
        }
        if tracker is not None:
            payload["work"] = tracker.work
            payload["depth"] = tracker.depth
        print(json.dumps(payload))
    else:
        print(f"terrain: {terrain}")
        print(result.visibility_map.summary())
        print(f"wall time: {result.stats.wall_time_s:.3f}s")
        if tracker is not None:
            print(
                f"PRAM cost: work={tracker.work:.0f}"
                f" depth={tracker.depth:.0f}"
            )
        if args.svg is not None:
            print(f"wrote {args.svg}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.hsr import SequentialHSR
    from repro.render import ascii_visibility, render_visibility_svg

    terrain = _load_terrain(args.terrain, args.seed)
    if args.azimuth:
        terrain = terrain.rotated(args.azimuth)
    result = SequentialHSR().run(terrain)
    print(
        ascii_visibility(
            result.visibility_map, width=args.width, height=args.height
        )
    )
    if args.svg is not None:
        render_visibility_svg(result.visibility_map, args.svg)
        print(f"wrote {args.svg}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.config import HsrConfig
    from repro.service import ViewshedSession, serve

    terrain = _load_terrain(args.terrain, args.seed)
    workers = args.workers if args.workers == "auto" else int(args.workers)
    config = HsrConfig(
        engine=None if args.engine == "auto" else args.engine,
        workers=workers,
    )
    session = ViewshedSession(terrain, config=config)
    try:
        asyncio.run(
            serve(
                session,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                coalesce_ms=args.coalesce_ms,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _load_spec_arg(spec_path: Optional[Path]):
    from repro.scenarios import default_spec, load_spec

    return load_spec(spec_path) if spec_path is not None else default_spec()


def _cmd_scenarios(args: argparse.Namespace) -> int:
    spec = _load_spec_arg(args.spec)
    if args.scenarios_command == "list":
        print(f"spec: {spec.source}")
        for s in spec.scenarios:
            print(
                f"  {s.name:<20} {s.workload:<9}"
                f" {s.n_instances:>3} instances x"
                f" {len(s.configs)} configs"
                f"  roles={','.join(sorted(s.roles))}"
                + (f"  op={s.op}" if s.op else "")
                + (f"  pinned={list(s.pinned)}" if s.pinned else "")
            )
        return 0
    # show
    s = spec.scenario(args.name)
    print(f"{s.name}: workload={s.workload} roles={sorted(s.roles)}")
    if s.fixed:
        print(f"  fixed: {s.fixed}")
    print(f"  configs: {s.config_ids()}")
    if s.pinned:
        print(f"  pinned: {list(s.pinned)}")
    for inst in s.instances():
        print(f"  {inst.instance_id}")
    return 0


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    from repro.scenarios.perfgate import DEFAULT_BASELINE, run_perf_gate

    spec = _load_spec_arg(args.spec) if args.spec is not None else None
    report = run_perf_gate(
        spec,
        baseline=(
            args.baseline if args.baseline is not None else DEFAULT_BASELINE
        ),
        repeats=args.repeats,
        tolerance=args.tolerance,
        canary=args.canary,
    )
    print(report.format())
    return 0 if report.passed else 1


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.terrain import GENERATORS

    print(f"repro {__version__}")
    print(f"terrain generators: {', '.join(sorted(GENERATORS))}")
    print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
    print("docs: README.md, docs/ARCHITECTURE.md, docs/BENCHMARKS.md")
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "render":
        return _cmd_render(args)
    if args.command == "bench":
        from repro.bench.__main__ import main as bench_main

        argv_out = (
            ["--output", str(args.output)]
            if args.output is not None
            else []
        )
        return bench_main(
            list(args.experiments)
            + (["--full"] if args.full else [])
            + argv_out
        )
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "perf-gate":
        return _cmd_perf_gate(args)
    if args.command == "info":
        return _cmd_info(args)
    raise SystemExit(2)  # pragma: no cover - argparse enforces choices


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse and dispatch; a :class:`~repro.errors.ReproError` exits
    nonzero with a one-line message (no traceback), and any guarded-
    dispatch degradation is summarised on stderr either way."""
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError
    from repro.reliability import reliability_run

    with reliability_run() as report:
        try:
            rc = _dispatch(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            if report.degraded:
                print(report.summary(), file=sys.stderr)
            return 2
    if report.degraded:
        print(report.summary(), file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
