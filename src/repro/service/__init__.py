"""The batched viewshed query service.

The production face of the reproduction: a synchronous query core
(:class:`~repro.service.session.ViewshedSession` — horizon envelope
per terrain, cached by content hash, queries answered by the batched
visibility kernels) and a stdlib-asyncio JSON-lines server
(:mod:`repro.service.server`) that coalesces concurrent client
queries into single batched launches.  Start one from the CLI with
``repro serve``.
"""

from repro.service.session import (
    DEFAULT_CACHE,
    EnvelopeCache,
    ViewshedSession,
    terrain_fingerprint,
)
from repro.service.server import ViewshedServer, serve

__all__ = [
    "ViewshedSession",
    "ViewshedServer",
    "EnvelopeCache",
    "DEFAULT_CACHE",
    "terrain_fingerprint",
    "serve",
]
