"""The synchronous viewshed query core: sessions + envelope cache.

A :class:`ViewshedSession` binds one terrain to one
:class:`~repro.config.HsrConfig` and answers visibility queries
against the terrain's upper profile (the horizon envelope).  The
envelope is built once — by
:func:`repro.envelope.build.build_envelope`, which itself uses the
multi-core executor when the config asks for workers — and cached in a
process-wide :class:`EnvelopeCache` keyed by *terrain content hash*
(:func:`terrain_fingerprint`), resolved engine and eps: two sessions
on equal terrains share one build, and a re-generated but identical
DEM is a cache hit.

Query forms:

* :meth:`ViewshedSession.query` — one segment's visible parts
  (scalar :func:`~repro.envelope.visibility.visible_parts`);
* :meth:`ViewshedSession.query_batch` — many segments in **one**
  :func:`~repro.envelope.flat_visibility.batch_visible_parts` launch.
  By the kernel parity contract the coalesced answers are bit-exact
  with N sequential :meth:`query` calls (``tests/test_service.py``
  pins this), while the per-query dispatch/locate overhead is paid
  once — the ``service-qps`` benchmark row measures the resulting
  throughput multiple;
* :meth:`ViewshedSession.point_visible` /
  :meth:`ViewshedSession.points_visible` — observer-point queries
  delegating to :mod:`repro.hsr.queries` (the batched form uses the
  blocked vectorized scan).

The asyncio front end in :mod:`repro.service.server` coalesces
concurrent client requests into :meth:`query_batch` launches on top of
this core.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from typing import Optional, Sequence, Union

from repro.envelope.chain import Envelope
from repro.envelope.visibility import VisibilityResult, visible_parts
from repro.geometry.segments import ImageSegment
from repro.hsr.queries import Observer, visible_many
from repro.hsr.queries import point_visible as _point_visible
from repro.terrain.model import Terrain

__all__ = [
    "terrain_fingerprint",
    "EnvelopeCache",
    "ViewshedSession",
]

#: A query segment: an :class:`ImageSegment` or a plain
#: ``(y1, z1, y2, z2)`` sequence (the JSON shape the server receives).
QuerySegment = Union[ImageSegment, Sequence[float]]


def as_query_segment(seg: QuerySegment) -> ImageSegment:
    """Normalise a query spec to :class:`ImageSegment` (source ``-1``:
    queries are probes, not scene members)."""
    if isinstance(seg, ImageSegment):
        return seg
    y1, z1, y2, z2 = seg
    return ImageSegment(float(y1), float(z1), float(y2), float(z2), -1)


def terrain_fingerprint(terrain: Terrain) -> str:
    """Content hash of a terrain (vertices + faces), hex-encoded.

    Struct-packs the exact float64 vertex coordinates and the sorted
    face index triples, so the fingerprint is byte-stable across
    processes and equal exactly when the geometry is equal — the
    envelope-cache key and the wire name for a terrain in the query
    service.
    """
    h = hashlib.sha256()
    h.update(struct.pack("<2q", len(terrain.vertices), len(terrain.faces)))
    for v in terrain.vertices:
        h.update(struct.pack("<3d", v.x, v.y, v.z))
    for f in terrain.faces:
        h.update(struct.pack("<3q", *f))
    return h.hexdigest()


class EnvelopeCache:
    """Small thread-safe LRU of horizon envelopes.

    Keyed ``(terrain fingerprint, resolved engine, eps)`` — the inputs
    that determine the built envelope bit-for-bit.  The default
    process-wide instance backs every session; pass a private one for
    isolation (tests) or different sizing.
    """

    def __init__(self, maxsize: int = 16):
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, Envelope] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[Envelope]:
        with self._lock:
            env = self._entries.get(key)
            if env is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return env

    def store(self, key: tuple, env: Envelope) -> None:
        with self._lock:
            self._entries[key] = env
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


#: The process-wide default cache (sessions share envelope builds).
DEFAULT_CACHE = EnvelopeCache()


class ViewshedSession:
    """Synchronous viewshed queries against one terrain.

    Parameters
    ----------
    terrain:
        The scene.
    config:
        :class:`repro.config.HsrConfig`; engine/eps select the kernels
        and ``workers > 1`` builds the horizon envelope across real
        cores.
    cache:
        :class:`EnvelopeCache` override (defaults to the process-wide
        cache).
    """

    def __init__(
        self,
        terrain: Terrain,
        *,
        config=None,
        cache: Optional[EnvelopeCache] = None,
    ):
        from repro.config import HsrConfig

        self.terrain = terrain
        self.config = HsrConfig.resolve(config)
        self.cache = cache if cache is not None else DEFAULT_CACHE
        self.fingerprint = terrain_fingerprint(terrain)
        self._envelope: Optional[Envelope] = None
        self._flat = None
        self.stats = {"queries": 0, "batches": 0, "batched_queries": 0}

    # -- the horizon envelope -----------------------------------------

    @property
    def cache_key(self) -> tuple:
        return (
            self.fingerprint,
            self.config.resolved_engine(),
            self.config.eps,
        )

    def envelope(self) -> Envelope:
        """The terrain's upper profile (built once, cached by content)."""
        if self._envelope is None:
            env = self.cache.lookup(self.cache_key)
            if env is None:
                from repro.envelope.build import build_envelope

                env = build_envelope(
                    self.terrain.image_segments(), config=self.config
                ).envelope
                self.cache.store(self.cache_key, env)
            self._envelope = env
        return self._envelope

    def _flat_envelope(self):
        if self._flat is None:
            from repro.envelope.flat import FlatEnvelope

            self._flat = FlatEnvelope.from_envelope(self.envelope())
        return self._flat

    # -- segment queries ----------------------------------------------

    def query(self, seg: QuerySegment) -> VisibilityResult:
        """Visible parts of one query segment against the horizon."""
        self.stats["queries"] += 1
        return visible_parts(
            as_query_segment(seg), self.envelope(), eps=self.config.eps
        )

    def query_batch(
        self, segs: Sequence[QuerySegment]
    ) -> list[VisibilityResult]:
        """Visible parts of many query segments, coalesced into one
        batched kernel launch (bit-exact with per-query :meth:`query`
        calls; python engine falls back to the scalar loop)."""
        segments = [as_query_segment(s) for s in segs]
        self.stats["batches"] += 1
        self.stats["batched_queries"] += len(segments)
        if not segments:
            return []
        if self.config.resolved_engine() != "numpy":
            env = self.envelope()
            return [
                visible_parts(s, env, eps=self.config.eps)
                for s in segments
            ]
        from repro.envelope.flat_visibility import batch_visible_parts

        return batch_visible_parts(
            self._flat_envelope(), segments, eps=self.config.eps
        ).results()

    # -- observer-point queries ---------------------------------------

    def point_visible(self, observer: Observer) -> bool:
        """One observer point's visibility (reference scan)."""
        self.stats["queries"] += 1
        return _point_visible(self.terrain, observer, config=self.config)

    def points_visible(self, observers: Sequence[Observer]) -> list[bool]:
        """Many observer points, via the blocked vectorized scan."""
        self.stats["batches"] += 1
        self.stats["batched_queries"] += len(observers)
        return visible_many(self.terrain, observers, config=self.config)
