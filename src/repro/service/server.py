"""Stdlib-asyncio viewshed query server with request coalescing.

JSON-lines over TCP: one request object per line, one response object
per line, matched in order per connection.  Requests:

``{"op": "query", "segment": [y1, z1, y2, z2]}``
    Visible parts of one segment against the terrain horizon →
    ``{"ok": true, "parts": [[ya, yb], ...], "ops": N}``.
``{"op": "points", "points": [[x, y, z], ...]}``
    Observer-point visibility → ``{"ok": true, "visible": [...]}``.
``{"op": "stats"}``
    Session/cache/coalescing counters.
``{"op": "ping"}``
    Liveness → ``{"ok": true, "pong": true}``.

Coalescing: every ``query`` lands in an asyncio queue; a single
batcher task drains whatever is queued (up to ``max_batch``, after a
``coalesce_ms`` gathering window) and answers the whole batch with
**one** :meth:`~repro.service.session.ViewshedSession.query_batch`
kernel launch.  Under concurrent load this turns N per-request sweeps
into one batched sweep — the ``service-qps`` benchmark row measures
the multiple — while staying bit-exact per query.  ``points``
requests are already batches and run directly.

The compute itself is synchronous (numpy sweeps release little of the
GIL and the session core is plain code); the event loop's job here is
coalescing and connection plumbing, not parallelism — worker-level
parallelism lives in :mod:`repro.parallel_exec` underneath the same
session.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.service.session import ViewshedSession

__all__ = ["ViewshedServer", "serve"]


class ViewshedServer:
    """Asyncio front end over one :class:`ViewshedSession`.

    Parameters
    ----------
    session:
        The synchronous query core (terrain + config + cache).
    max_batch:
        Upper bound on coalesced queries per kernel launch.
    coalesce_ms:
        Gathering window after the first queued query; ``0`` drains
        only what is already queued (lowest latency, still coalesces
        whatever arrived while the previous batch computed).
    """

    def __init__(
        self,
        session: ViewshedSession,
        *,
        max_batch: int = 256,
        coalesce_ms: float = 1.0,
    ):
        self.session = session
        self.max_batch = max_batch
        self.coalesce_ms = coalesce_ms
        self.stats = {"requests": 0, "batches": 0, "coalesced": 0}
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- coalescing core ----------------------------------------------

    async def _batcher_loop(self) -> None:
        assert self._queue is not None
        while True:
            first = await self._queue.get()
            if self.coalesce_ms > 0:
                await asyncio.sleep(self.coalesce_ms / 1000.0)
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            futures = [f for f, _seg in batch]
            segs = [seg for _f, seg in batch]
            self.stats["batches"] += 1
            self.stats["coalesced"] += len(batch)
            try:
                results = self.session.query_batch(segs)
            except Exception as exc:  # answer every waiter, keep serving
                for fut in futures:
                    if not fut.done():
                        fut.set_exception(RuntimeError(str(exc)))
                continue
            for fut, res in zip(futures, results):
                if not fut.done():
                    fut.set_result(res)

    async def _enqueue_query(self, segment) -> "object":
        assert self._queue is not None
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((fut, segment))
        return await fut

    # -- request handling ---------------------------------------------

    async def handle_request(self, req: dict) -> dict:
        self.stats["requests"] += 1
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            return {
                "ok": True,
                "server": dict(self.stats),
                "session": dict(self.session.stats),
                "cache": self.session.cache.stats(),
                "terrain": self.session.fingerprint,
            }
        if op == "query":
            seg = req.get("segment")
            if not isinstance(seg, (list, tuple)) or len(seg) != 4:
                return {"ok": False, "error": "segment must be [y1,z1,y2,z2]"}
            vis = await self._enqueue_query(seg)
            return {
                "ok": True,
                "parts": [[p.ya, p.yb] for p in vis.parts],
                "ops": vis.ops,
            }
        if op == "points":
            pts = req.get("points")
            if not isinstance(pts, list):
                return {"ok": False, "error": "points must be a list"}
            visible = self.session.points_visible(pts)
            return {"ok": True, "visible": visible}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = json.loads(line)
                    resp = await self.handle_request(req)
                except Exception as exc:
                    resp = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(resp).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # -- lifecycle ----------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (``port=0`` picks a free one — handy for tests)."""
        self._queue = asyncio.Queue()
        self._batcher = asyncio.create_task(self._batcher_loop())
        self.session.envelope()  # build/warm before accepting traffic
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()


async def serve(
    session: ViewshedSession,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    max_batch: int = 256,
    coalesce_ms: float = 1.0,
) -> None:
    """Convenience runner: start a :class:`ViewshedServer` and serve
    until cancelled (the ``repro serve`` CLI entry point)."""
    server = ViewshedServer(
        session, max_batch=max_batch, coalesce_ms=coalesce_ms
    )
    bound_host, bound_port = await server.start(host, port)
    print(
        f"viewshed service on {bound_host}:{bound_port}"
        f" (terrain {session.fingerprint[:12]},"
        f" engine {session.config.resolved_engine()})",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        await server.stop()
