"""Persistent envelopes: versioned profile store with two backends.

Phase 2 of the algorithm materialises one *actual profile* per PCT
node, and profiles at the same layer share all structure outside the
y-range of the intermediate profile merged in (paper Fig. 1: "profiles
may be shared among the layers").  Array envelopes would copy
everything; here a profile version shares structure with its
predecessor and a merge **splices** only the affected y-range.

Two backends implement the store, bit-exact against each other
(``tests/test_persistence_rope.py`` fuzzes the parity):

``"rope"`` (default)
    :mod:`repro.persistence.rope` — a two-level rope of immutable
    packed chunks with path copying at chunk granularity.  The
    flat-native representation; phase 2 drives its per-layer merges
    through the numpy kernels on the chunks' cached lane blocks.
``"treap"``
    The original per-piece persistent treap
    (:mod:`repro.persistence.treap` + the ``penv_*`` functions below)
    — retained as the parity oracle and for the per-node experiments.

Select per call (``backend=`` on the :class:`PersistentEnvelope`
constructors), per process (:data:`PERSISTENT_BACKEND`), or via the
environment (``REPRO_PERSISTENT_BACKEND``).  Experiments E5/E11
measure the resulting structure sharing and compare memory against
the copying alternative; both backends report allocations in the same
unit (piece slots — one treap node, or one slot in a fresh chunk, per
piece).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import MergeResult, merge_envelopes
from repro.errors import PersistenceError
from repro.geometry.primitives import EPS, NEG_INF
from repro.persistence import rope as _rope
from repro.persistence import treap
from repro.persistence.rope import Rope
from repro.persistence.treap import Root

__all__ = [
    "PersistentEnvelope",
    "BACKENDS",
    "PERSISTENT_BACKEND",
    "resolve_backend",
    "penv_from_envelope",
    "penv_value_at",
    "penv_range_pieces",
    "penv_splice_merge",
    "penv_visible_parts",
]

#: Store implementations, parity-tested against each other.
BACKENDS = ("rope", "treap")


def _backend_from_env() -> str:
    raw = os.environ.get("REPRO_PERSISTENT_BACKEND", "").strip().lower()
    return raw if raw in BACKENDS else "rope"


#: Process-wide default backend (env ``REPRO_PERSISTENT_BACKEND``).
PERSISTENT_BACKEND: str = _backend_from_env()


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a ``backend=`` argument (``None``/``"auto"`` → the
    process default)."""
    b = PERSISTENT_BACKEND if backend in (None, "auto") else backend
    if b not in BACKENDS:
        raise PersistenceError(
            f"unknown persistent backend {backend!r}; choose from {BACKENDS}"
        )
    return b


def penv_from_envelope(env: Envelope) -> Root:
    """Build a treap version from an array envelope in ``O(n)``."""
    return treap.from_sorted([(p.ya, p) for p in env.pieces])


def penv_value_at(root: Root, y: float) -> float:
    """Profile height at ``y`` (``-inf`` in gaps): treap descent."""
    node = root
    candidate: Optional[Piece] = None
    while node is not None:
        if node.key <= y:
            piece: Piece = node.value
            if piece.ya <= y <= piece.yb:
                candidate = piece
            node = node.right
        else:
            node = node.left
    if candidate is not None:
        return candidate.z_at(y)
    return NEG_INF


def penv_range_pieces(root: Root, ya: float, yb: float) -> list[Piece]:
    """Pieces of the version whose closed span intersects ``[ya, yb]``,
    in y-order — ``O(log n + output)`` via a range query plus the
    single possible straddling predecessor."""
    out: list[Piece] = []
    prev = treap.pred(root, ya)
    if prev is not None:
        piece: Piece = prev.value
        if piece.yb >= ya:
            out.append(piece)
    out.extend(p for _, p in treap.range_query(root, ya, yb))
    # A piece starting exactly at yb touches the range boundary only;
    # callers that care about touch-points query value_at directly.
    return out


def penv_visible_parts(root: Root, seg, *, eps: float = EPS):
    """Visible parts of an image segment against a profile version.

    Extracts only the pieces overlapping the segment's y-range and
    reuses the array-envelope scan — ``O(log n + range)``.
    """
    from repro.envelope.visibility import visible_parts

    if seg.is_vertical:
        local = Envelope(penv_range_pieces(root, seg.y1, seg.y1 + 1e-12))
        return visible_parts(seg, local, eps=eps)
    local = Envelope(penv_range_pieces(root, seg.y1, seg.y2))
    return visible_parts(seg, local, eps=eps)


def _trim_boundary_piece(root: Root, cut: float) -> Root:
    """Trim a version's last piece so nothing extends past ``cut``.

    Splice callers pass roots whose keys are all ``< cut`` (a
    ``treap.split`` left half), but eps-tie inputs can hand direct
    callers a last piece starting *exactly at* the cut — its trim
    would be zero-width, so the piece is deleted outright (the
    delete must run before any ``clipped`` call, which rejects empty
    spans).  Pinned by ``tests/test_persistence_envelope.py``.
    """
    if root is None:
        return None
    last = treap.kth(root, treap.size(root) - 1)
    piece: Piece = last.value
    if piece.yb > cut:
        if piece.ya >= cut:
            return treap.delete(root, piece.ya)
        return treap.insert(root, piece.ya, piece.clipped(piece.ya, cut))
    return root


def penv_splice_merge(
    root: Root, other: Envelope, *, eps: float = EPS
) -> tuple[Root, MergeResult]:
    """Merge an array envelope ``other`` into profile version ``root``.

    Only the pieces of the version overlapping ``other``'s span are
    extracted (``range_query``), merged with ``other`` by the standard
    sweep, and spliced back — everything else is shared with the input
    version.  Returns ``(new_root, merge_result)`` where the merge
    result covers only the affected range.
    """
    if not other.pieces:
        return root, MergeResult(Envelope.empty(), [], 0)
    ya, yb = other.y_span()
    if root is None:
        new_mid = penv_from_envelope(other)
        return new_mid, MergeResult(other, [], other.size)

    left, rest = treap.split(root, ya)
    # The piece straddling ya sits in `left`; pull it into the merge
    # range so the sweep sees it, then trim it out of `left`.
    straddle: Optional[Piece] = None
    if left is not None:
        last = treap.kth(left, treap.size(left) - 1)
        piece: Piece = last.value
        if piece.yb > ya:
            straddle = piece
            left = _trim_boundary_piece(left, ya)
    mid, right = treap.split(rest, yb)
    mid_pieces: list[Piece] = [p for _, p in treap.to_list(mid)]
    if straddle is not None:
        mid_pieces.insert(0, straddle.clipped(ya, straddle.yb))
    # The last in-range piece may extend beyond yb; keep the overhang
    # out of the merge and re-attach it afterwards.
    carry: Optional[Piece] = None
    if mid_pieces and mid_pieces[-1].yb > yb:
        tail = mid_pieces[-1]
        mid_pieces[-1] = tail.clipped(tail.ya, yb)
        if mid_pieces[-1].ya >= mid_pieces[-1].yb:
            mid_pieces.pop()
        carry = tail.clipped(yb, tail.yb)

    local = Envelope(mid_pieces)
    res = merge_envelopes(local, other, eps=eps)
    merged_pieces = list(res.envelope.pieces)
    if carry is not None and carry.ya < carry.yb:
        merged_pieces.append(carry)
    new_mid = treap.from_sorted([(p.ya, p) for p in merged_pieces])
    new_root = treap.join(treap.join(left, new_mid), right)
    return new_root, res


class PersistentEnvelope:
    """Convenience wrapper pairing a version root with envelope queries.

    ``root`` is either a :class:`~repro.persistence.rope.Rope` or a
    treap root — queries dispatch on the concrete type, so a wrapper
    built by either backend answers the same API.  Instances are
    immutable values: ``merged_with`` returns a fresh instance sharing
    structure with ``self``.
    """

    __slots__ = ("root",)

    def __init__(self, root: Union[Root, Rope] = None):
        self.root = root

    @staticmethod
    def from_envelope(
        env: Envelope, *, backend: Optional[str] = None
    ) -> "PersistentEnvelope":
        if resolve_backend(backend) == "rope":
            return PersistentEnvelope(_rope.rope_from_envelope(env))
        return PersistentEnvelope(penv_from_envelope(env))

    @staticmethod
    def empty(*, backend: Optional[str] = None) -> "PersistentEnvelope":
        if resolve_backend(backend) == "rope":
            return PersistentEnvelope(_rope.EMPTY)
        return PersistentEnvelope(None)

    @property
    def backend(self) -> str:
        return "rope" if isinstance(self.root, Rope) else "treap"

    @property
    def size(self) -> int:
        if isinstance(self.root, Rope):
            return self.root.total
        return treap.size(self.root)

    def value_at(self, y: float) -> float:
        if isinstance(self.root, Rope):
            return _rope.rope_value_at(self.root, y)
        return penv_value_at(self.root, y)

    def to_envelope(self) -> Envelope:
        if isinstance(self.root, Rope):
            return Envelope(self.root.to_pieces())
        return Envelope([p for _, p in treap.to_list(self.root)])

    def merged_with(
        self, other: Envelope, *, eps: float = EPS
    ) -> tuple["PersistentEnvelope", MergeResult]:
        if isinstance(self.root, Rope):
            new_root, res = _rope.rope_splice_merge(self.root, other, eps=eps)
        else:
            new_root, res = penv_splice_merge(self.root, other, eps=eps)
        return PersistentEnvelope(new_root), res

    def node_count(self) -> int:
        """Distinct piece slots reachable from this version (treap:
        distinct nodes; rope: total pieces — every slot is distinct
        within one version)."""
        if isinstance(self.root, Rope):
            return self.root.total
        return treap.count_nodes(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PersistentEnvelope(size={self.size})"
