"""Persistent envelopes: treap-backed profile versions.

Phase 2 of the algorithm materialises one *actual profile* per PCT
node, and profiles at the same layer share all structure outside the
y-range of the intermediate profile merged in (paper Fig. 1: "profiles
may be shared among the layers").  Array envelopes would copy
everything; here a profile version is a persistent-treap root keyed by
piece start, and a merge **splices** only the affected y-range —
``O(log n)`` fresh nodes plus the genuinely new pieces.

Experiment E5 measures the resulting node sharing and compares memory
against the copying alternative.
"""

from __future__ import annotations

from typing import Optional

from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import MergeResult, merge_envelopes
from repro.geometry.primitives import EPS, NEG_INF
from repro.persistence import treap
from repro.persistence.treap import Root

__all__ = [
    "PersistentEnvelope",
    "penv_from_envelope",
    "penv_value_at",
    "penv_range_pieces",
    "penv_splice_merge",
    "penv_visible_parts",
]


def penv_from_envelope(env: Envelope) -> Root:
    """Build a treap version from an array envelope in ``O(n)``."""
    return treap.from_sorted([(p.ya, p) for p in env.pieces])


def penv_value_at(root: Root, y: float) -> float:
    """Profile height at ``y`` (``-inf`` in gaps): treap descent."""
    node = root
    candidate: Optional[Piece] = None
    while node is not None:
        if node.key <= y:
            piece: Piece = node.value
            if piece.ya <= y <= piece.yb:
                candidate = piece
            node = node.right
        else:
            node = node.left
    if candidate is not None:
        return candidate.z_at(y)
    return NEG_INF


def penv_range_pieces(root: Root, ya: float, yb: float) -> list[Piece]:
    """Pieces of the version whose closed span intersects ``[ya, yb]``,
    in y-order — ``O(log n + output)`` via a range query plus the
    single possible straddling predecessor."""
    out: list[Piece] = []
    prev = treap.pred(root, ya)
    if prev is not None:
        piece: Piece = prev.value
        if piece.yb >= ya:
            out.append(piece)
    out.extend(p for _, p in treap.range_query(root, ya, yb))
    # A piece starting exactly at yb touches the range boundary only;
    # callers that care about touch-points query value_at directly.
    return out


def penv_visible_parts(root: Root, seg, *, eps: float = EPS):
    """Visible parts of an image segment against a profile version.

    Extracts only the pieces overlapping the segment's y-range and
    reuses the array-envelope scan — ``O(log n + range)``.
    """
    from repro.envelope.visibility import visible_parts

    if seg.is_vertical:
        local = Envelope(penv_range_pieces(root, seg.y1, seg.y1 + 1e-12))
        return visible_parts(seg, local, eps=eps)
    local = Envelope(penv_range_pieces(root, seg.y1, seg.y2))
    return visible_parts(seg, local, eps=eps)


def _trim_boundary_piece(root: Root, cut: float) -> Root:
    """Given a version whose keys are all ``< cut``, trim its last piece
    so nothing extends past ``cut``."""
    if root is None:
        return None
    last = treap.kth(root, treap.size(root) - 1)
    piece: Piece = last.value
    if piece.yb > cut:
        if piece.ya >= cut:  # pragma: no cover - keys < cut guarantees
            return treap.delete(root, piece.ya)
        return treap.insert(root, piece.ya, piece.clipped(piece.ya, cut))
    return root


def penv_splice_merge(
    root: Root, other: Envelope, *, eps: float = EPS
) -> tuple[Root, MergeResult]:
    """Merge an array envelope ``other`` into profile version ``root``.

    Only the pieces of the version overlapping ``other``'s span are
    extracted (``range_query``), merged with ``other`` by the standard
    sweep, and spliced back — everything else is shared with the input
    version.  Returns ``(new_root, merge_result)`` where the merge
    result covers only the affected range.
    """
    if not other.pieces:
        return root, MergeResult(Envelope.empty(), [], 0)
    ya, yb = other.y_span()
    if root is None:
        new_mid = penv_from_envelope(other)
        return new_mid, MergeResult(other, [], other.size)

    left, rest = treap.split(root, ya)
    # The piece straddling ya sits in `left`; pull it into the merge
    # range so the sweep sees it, then trim it out of `left`.
    straddle: Optional[Piece] = None
    if left is not None:
        last = treap.kth(left, treap.size(left) - 1)
        piece: Piece = last.value
        if piece.yb > ya:
            straddle = piece
            left = treap.insert(left, piece.ya, piece.clipped(piece.ya, ya))
            if left is not None and piece.ya >= ya:  # pragma: no cover
                left = treap.delete(left, piece.ya)
    mid, right = treap.split(rest, yb)
    mid_pieces: list[Piece] = [p for _, p in treap.to_list(mid)]
    if straddle is not None:
        mid_pieces.insert(0, straddle.clipped(ya, straddle.yb))
    # The last in-range piece may extend beyond yb; keep the overhang
    # out of the merge and re-attach it afterwards.
    carry: Optional[Piece] = None
    if mid_pieces and mid_pieces[-1].yb > yb:
        tail = mid_pieces[-1]
        mid_pieces[-1] = tail.clipped(tail.ya, yb)
        if mid_pieces[-1].ya >= mid_pieces[-1].yb:
            mid_pieces.pop()
        carry = tail.clipped(yb, tail.yb)

    local = Envelope(mid_pieces)
    res = merge_envelopes(local, other, eps=eps)
    merged_pieces = list(res.envelope.pieces)
    if carry is not None and carry.ya < carry.yb:
        merged_pieces.append(carry)
    new_mid = treap.from_sorted([(p.ya, p) for p in merged_pieces])
    new_root = treap.join(treap.join(left, new_mid), right)
    return new_root, res


class PersistentEnvelope:
    """Convenience wrapper pairing a treap root with envelope queries.

    Instances are immutable values: ``merged_with`` returns a fresh
    instance sharing structure with ``self``.
    """

    __slots__ = ("root",)

    def __init__(self, root: Root = None):
        self.root = root

    @staticmethod
    def from_envelope(env: Envelope) -> "PersistentEnvelope":
        return PersistentEnvelope(penv_from_envelope(env))

    @staticmethod
    def empty() -> "PersistentEnvelope":
        return PersistentEnvelope(None)

    @property
    def size(self) -> int:
        return treap.size(self.root)

    def value_at(self, y: float) -> float:
        return penv_value_at(self.root, y)

    def to_envelope(self) -> Envelope:
        return Envelope([p for _, p in treap.to_list(self.root)])

    def merged_with(
        self, other: Envelope, *, eps: float = EPS
    ) -> tuple["PersistentEnvelope", MergeResult]:
        new_root, res = penv_splice_merge(self.root, other, eps=eps)
        return PersistentEnvelope(new_root), res

    def node_count(self) -> int:
        return treap.count_nodes(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PersistentEnvelope(size={self.size})"
