"""Flat-native persistent envelopes: a two-level rope of packed chunks.

The treap store (:mod:`repro.persistence.envelope_store`) made profile
versions cheap to *share* but expensive to *walk*: every query and
splice chases one heap-allocated node per piece — the pointer tax the
flat SoA stack eliminated everywhere else (the ``phase2-persistent``
bench row measured it at 8.7× direct-flat).  This module keeps the
sharing and drops the pointers.

A profile version is a :class:`Rope`: an immutable *spine* (a tuple)
of immutable :class:`Chunk` objects, each chunk a small frozen block
of consecutive pieces in the ``PackedProfile`` field layout — five
columns ``ya/za/yb/zb/source``, materialised on demand as one frozen
``(5, k)`` float64 block whose ``source`` row is the same bytes viewed
as int64 (exactly the packed live-profile layout, so phase-2's batched
kernels consume chunk views directly).

Path copying happens at **chunk granularity**: a splice over
``[ya, yb]`` rebuilds only the chunks overlapping that range plus the
spine, so a version costs ``O(affected chunks + spine)`` fresh
allocations and every untouched chunk is shared between versions.
Version checkout is O(1): a version *is* its spine object — no
copying, no node materialisation (pinned by an allocation-counter test,
not wall clock).

Sharing accounting mirrors the treap's:

* :func:`allocation_count` counts **piece slots written into freshly
  built chunks** — the unit comparable to the treap's one-node-per-
  piece allocations that experiments E5/E11 report.
* :func:`count_shared_pieces` counts piece *objects* reachable from
  several versions (splices reuse the same tuples outside the merged
  range) — the direct analogue of
  :func:`repro.persistence.treap.count_shared_nodes`, and the layer
  sharing meter phase 2 reports.
* :func:`count_shared_chunks` is the coarser chunk-granular view
  (piece-weighted), measuring the structural block sharing itself.

The splice path is a guard site (``rope_splice``) of
:mod:`repro.reliability`: the freshly merged piece run is validated
(sorted, non-overlapping, finite) *before* the new spine is assembled,
and any fault degrades to an unshared full rebuild from the intact
piece lists — results identical, sharing sacrificed for that one
version (see ``docs/RELIABILITY.md``).

This module is numpy-free at import time and fully functional without
numpy (the chunk blocks are a lazy, optional acceleration), so the
no-numpy CI leg runs the whole rope↔treap parity suite.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Optional

from repro.envelope.chain import Envelope, Piece
from repro.envelope.merge import MergeResult, merge_envelopes
from repro.geometry.primitives import EPS, NEG_INF
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = [
    "CHUNK_TARGET",
    "Chunk",
    "EMPTY",
    "Rope",
    "SpliceRange",
    "range_lanes",
    "rope_from_envelope",
    "rope_from_pieces",
    "rope_value_at",
    "rope_range_pieces",
    "rope_visible_parts",
    "rope_splice_merge",
    "commit_splice",
    "commit_splice_lanes",
    "allocation_count",
    "reset_allocation_count",
    "count_chunks",
    "count_shared_chunks",
    "count_shared_pieces",
]

#: Pieces per freshly built chunk.  Small enough that a narrow splice
#: rewrites little, large enough that spines stay short and the
#: per-chunk python overhead amortises.  Fresh runs are *balanced*
#: into ``ceil(n / CHUNK_TARGET)`` near-equal chunks, so no splice
#: leaves single-piece runts behind.
CHUNK_TARGET = 32

#: Piece slots written into freshly constructed chunks — the rope's
#: allocation meter, comparable to the treap's node counter.
_ALLOCATED = 0


def allocation_count() -> int:
    """Total piece slots written into fresh chunks so far."""
    return _ALLOCATED


def reset_allocation_count() -> None:
    global _ALLOCATED
    _ALLOCATED = 0


class Chunk:
    """An immutable run of consecutive envelope pieces.

    A chunk is born in one of two equivalent forms: from scalar
    :class:`Piece` tuples (the canonical, numpy-free path) or — on the
    batched phase-2 commit path — straight from a ``(5, k)`` column
    slice of a frozen lane block, with **no per-piece python at all**.
    Whichever form is absent is derived lazily and cached: ``pieces``
    / ``starts`` materialise from the block on first access (and stay
    cached, so piece-identity sharing accounting keeps seeing one
    object per slot), and the block materialises from the pieces.  The
    chunk-level ACG augmentation (:mod:`repro.hsr.acg_rope`) caches on
    ``_aug``.  Because chunks are immutable and shared across
    versions, every cache is computed once per chunk — all versions
    sharing the chunk reuse them.
    """

    __slots__ = ("_pieces", "_starts", "_block", "_lanes", "_n",
                 "_key", "_last_yb", "_aug")

    def __init__(self, pieces: tuple[Piece, ...]):
        global _ALLOCATED
        self._pieces = pieces
        self._starts = None
        self._block = None
        self._lanes = None
        self._n = len(pieces)
        self._key = pieces[0].ya
        self._last_yb = pieces[-1].yb
        self._aug = None
        _ALLOCATED += len(pieces)

    @classmethod
    def from_block(cls, block) -> "Chunk":
        """A chunk over a read-only ``(5, k)`` column block (typically
        a slice view of one frozen commit buffer) — the lane-native
        constructor; no :class:`Piece` objects are touched."""
        global _ALLOCATED
        self = object.__new__(cls)
        self._pieces = None
        self._starts = None
        self._block = block
        self._lanes = None
        self._n = block.shape[1]
        self._key = float(block[0, 0])
        self._last_yb = float(block[2, -1])
        self._aug = None
        _ALLOCATED += self._n
        return self

    def __len__(self) -> int:
        return self._n

    @property
    def pieces(self) -> tuple[Piece, ...]:
        ps = self._pieces
        if ps is None:
            lanes = self.lanes()
            ps = tuple(
                map(
                    Piece,
                    lanes[0].tolist(),
                    lanes[1].tolist(),
                    lanes[2].tolist(),
                    lanes[3].tolist(),
                    lanes[4].tolist(),
                )
            )
            self._pieces = ps
        return ps

    @property
    def starts(self) -> tuple[float, ...]:
        st = self._starts
        if st is None:
            if self._pieces is not None:
                st = tuple(p.ya for p in self._pieces)
            else:
                st = tuple(self._block[0].tolist())
            self._starts = st
        return st

    @property
    def ya_min(self) -> float:
        return self._key

    @property
    def yb_max(self) -> float:
        return self._last_yb

    def piece_local(self, j: int) -> Piece:
        """Piece ``j`` of this chunk *without* materialising the whole
        piece tuple — boundary probes (splice decomposition, range
        straddle checks) touch one or two slots of a lane-born chunk
        and must not pay for all of them."""
        ps = self._pieces
        if ps is not None:
            return ps[j]
        lanes = self.lanes()
        return Piece(
            lanes[0][j].item(),
            lanes[1][j].item(),
            lanes[2][j].item(),
            lanes[3][j].item(),
            lanes[4][j].item(),
        )

    def block(self):
        """The chunk as one read-only ``(5, k)`` float64 block in the
        packed-profile layout (``source`` row: same bytes as int64),
        built once and shared by every version holding this chunk."""
        b = self._block
        if b is None:
            import numpy as np

            k = self._n
            buf = np.empty((5, k), np.float64)
            ibuf = buf.view(np.int64)
            for j, p in enumerate(self._pieces):
                buf[0, j] = p.ya
                buf[1, j] = p.za
                buf[2, j] = p.yb
                buf[3, j] = p.zb
                ibuf[4, j] = p.source
            buf.flags.writeable = False
            self._block = buf
            b = buf
        return b

    def lanes(self):
        """The chunk as five frozen column arrays
        ``(ya, za, yb, zb, source)`` — views into :meth:`block`."""
        lanes = self._lanes
        if lanes is None:
            import numpy as np

            b = self.block()
            lanes = (b[0], b[1], b[2], b[3], b.view(np.int64)[4])
            self._lanes = lanes
        return lanes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Chunk({self._n} pieces @ {self._key:.4g})"


class Rope:
    """One profile version: an immutable spine of shared chunks.

    ``starts[c]`` is chunk ``c``'s first key and ``offsets[c]`` its
    first global piece index (``offsets[-1] == total``); both power the
    two-level bisection locate.  Instances are values — every operation
    returns a new ``Rope`` sharing all untouched chunks.
    """

    __slots__ = ("chunks", "starts", "offsets", "total")

    def __init__(self, chunks: Iterable[Chunk]):
        self.chunks = tuple(chunks)
        self.starts = tuple(c.ya_min for c in self.chunks)
        offsets = [0]
        for c in self.chunks:
            offsets.append(offsets[-1] + len(c))
        self.offsets = tuple(offsets)
        self.total = offsets[-1]

    def __len__(self) -> int:
        return self.total

    def piece_at(self, i: int) -> Piece:
        """Global piece ``i`` (two bisect-free index steps)."""
        c = bisect_right(self.offsets, i) - 1
        return self.chunks[c].piece_local(i - self.offsets[c])

    def pieces_between(self, i: int, j: int) -> list[Piece]:
        """Pieces ``[i, j)`` in y-order, walking whole chunks."""
        if i >= j:
            return []
        out: list[Piece] = []
        c = bisect_right(self.offsets, i) - 1
        while i < j:
            chunk = self.chunks[c]
            base = self.offsets[c]
            lo = i - base
            hi = min(j - base, len(chunk))
            if lo == 0 and hi == len(chunk):
                out.extend(chunk.pieces)
            else:
                out.extend(chunk.pieces[lo:hi])
            i = base + hi
            c += 1
        return out

    def to_pieces(self) -> list[Piece]:
        out: list[Piece] = []
        for c in self.chunks:
            out.extend(c.pieces)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Rope({self.total} pieces in {len(self.chunks)} chunks)"


#: The canonical empty version (safe to share: ropes are immutable).
EMPTY = Rope(())


def _chunked(pieces: list[Piece]) -> list[Chunk]:
    """Balance a fresh piece run into near-equal chunks of at most
    :data:`CHUNK_TARGET` pieces (no runts: 33 pieces become 17+16, not
    32+1)."""
    n = len(pieces)
    if n == 0:
        return []
    parts = -(-n // CHUNK_TARGET)  # ceil
    out: list[Chunk] = []
    base, extra = divmod(n, parts)
    i = 0
    for p in range(parts):
        k = base + (1 if p < extra else 0)
        out.append(Chunk(tuple(pieces[i : i + k])))
        i += k
    return out


def rope_from_pieces(pieces: Iterable[Piece]) -> Rope:
    """Build a version from sorted, non-overlapping pieces in O(n)."""
    pieces = list(pieces)
    if not pieces:
        return EMPTY
    return Rope(_chunked(pieces))


def rope_from_envelope(env: Envelope) -> Rope:
    return rope_from_pieces(env.pieces)


# ---------------------------------------------------------------------------
# Two-level locate.  Keys (piece ``ya`` starts) are globally strictly
# increasing, so both global bisections decompose into a spine bisect
# followed by a within-chunk bisect.
# ---------------------------------------------------------------------------


def _index_ge(rope: Rope, y: float) -> int:
    """Global index of the first piece with key ``>= y``
    (``bisect_left`` over the concatenated keys)."""
    c = bisect_right(rope.starts, y) - 1
    if c < 0:
        return 0
    return rope.offsets[c] + bisect_left(rope.chunks[c].starts, y)


def _index_gt(rope: Rope, y: float) -> int:
    """Global index of the first piece with key ``> y``
    (``bisect_right`` over the concatenated keys)."""
    c = bisect_right(rope.starts, y) - 1
    if c < 0:
        return 0
    return rope.offsets[c] + bisect_right(rope.chunks[c].starts, y)


def rope_value_at(rope: Rope, y: float) -> float:
    """Profile height at ``y`` (``-inf`` in gaps).

    Exact replica of the treap descent's convention
    (:func:`~repro.persistence.envelope_store.penv_value_at`): the
    candidate is the piece with the greatest key ``<= y``, taken only
    when its closed span contains ``y``.
    """
    i = _index_gt(rope, y) - 1
    if i < 0:
        return NEG_INF
    p = rope.piece_at(i)
    if p.ya <= y <= p.yb:
        return p.z_at(y)
    return NEG_INF


def rope_range_pieces(rope: Rope, ya: float, yb: float) -> list[Piece]:
    """Pieces whose closed span intersects ``[ya, yb]``, in y-order —
    the version's keys in ``[ya, yb)`` plus the one possible straddling
    predecessor (exact
    :func:`~repro.persistence.envelope_store.penv_range_pieces`
    semantics)."""
    out: list[Piece] = []
    i0 = _index_ge(rope, ya)
    if i0 > 0:
        p = rope.piece_at(i0 - 1)
        if p.yb >= ya:
            out.append(p)
    out.extend(rope.pieces_between(i0, _index_ge(rope, yb)))
    return out


def rope_visible_parts(rope: Rope, seg, *, eps: float = EPS):
    """Visible parts of an image segment against a rope version —
    range-extract the overlapped window, reuse the array scan."""
    from repro.envelope.visibility import visible_parts

    if seg.is_vertical:
        local = Envelope(rope_range_pieces(rope, seg.y1, seg.y1 + 1e-12))
        return visible_parts(seg, local, eps=eps)
    local = Envelope(rope_range_pieces(rope, seg.y1, seg.y2))
    return visible_parts(seg, local, eps=eps)


# ---------------------------------------------------------------------------
# Splice: path copying at chunk granularity.
# ---------------------------------------------------------------------------


class SpliceRange:
    """The decomposition of a version around a splice span ``[ya, yb]``.

    ``i0``/``i1`` bound the keys in ``[ya, yb)``; ``left_cut`` is the
    trimmed replacement for a piece straddling ``ya`` (it stays on the
    left, clipped at the cut — the straddle's in-range part,
    ``straddle_clip``, rides into the merge range); ``carry`` is the
    overhang of the last in-range piece past ``yb``, kept out of the
    merge (``tail_trim`` replaces it there) and re-attached after.

    The in-range pieces themselves are *not* materialised here — the
    scalar path takes :meth:`mid_pieces`, phase 2's batched path takes
    :meth:`window_lanes` straight off the chunk blocks.
    """

    __slots__ = (
        "rope",
        "yb",
        "i0",
        "i1",
        "left_cut",
        "straddle_clip",
        "tail_trim",
        "carry",
    )

    def __init__(self, rope: Rope, ya: float, yb: float):
        self.rope = rope
        self.yb = yb
        i0 = _index_ge(rope, ya)
        left_cut: Optional[Piece] = None
        straddle_clip: Optional[Piece] = None
        if i0 > 0:
            piece = rope.piece_at(i0 - 1)
            if piece.yb > ya:
                # The straddler's key is < ya, so the trim is never
                # empty; a piece starting exactly at the cut is in the
                # mid range already (key >= ya), never here.
                left_cut = piece.clipped(piece.ya, ya)
                straddle_clip = piece.clipped(ya, piece.yb)
        i1 = _index_ge(rope, yb)
        # The last in-range piece may extend beyond yb; keep the
        # overhang out of the merge and re-attach it afterwards.  When
        # the whole range sits inside the straddler the overhanging
        # piece *is* the straddle clip.
        if i1 > i0:
            last: Optional[Piece] = rope.piece_at(i1 - 1)
        else:
            last = straddle_clip
        carry: Optional[Piece] = None
        tail_trim: Optional[Piece] = None
        if last is not None and last.yb > yb:
            tail_trim = last.clipped(last.ya, yb)
            carry = last.clipped(yb, last.yb)
        self.i0 = i0
        self.i1 = i1
        self.left_cut = left_cut
        self.straddle_clip = straddle_clip
        self.tail_trim = tail_trim
        self.carry = carry

    def mid_pieces(self) -> list[Piece]:
        """The merge-range pieces as scalar tuples (boundary trims
        applied) — bit-identical to the treap oracle's extraction."""
        mid = self.rope.pieces_between(self.i0, self.i1)
        if self.straddle_clip is not None:
            mid.insert(0, self.straddle_clip)
        if self.tail_trim is not None and mid:
            mid[-1] = self.tail_trim
        return mid

    def window_lanes(self):
        """The merge-range pieces as five fresh numpy lanes
        ``(ya, za, yb, zb, source)``, assembled from the chunks'
        cached blocks (one concatenate, two scalar boundary fixups) —
        value-identical to :meth:`mid_pieces`, no per-piece python."""
        win, iwin = _block_between(
            self.rope, self.i0, self.i1, head=self.straddle_clip
        )
        if self.tail_trim is not None:
            t = self.tail_trim
            win[2, -1] = t.yb
            win[3, -1] = t.zb
        return win[0], win[1], win[2], win[3], iwin[4]


def _block_between(rope: Rope, i: int, j: int, head: Optional[Piece] = None):
    """A fresh, writable ``(5, n)`` block (plus its int64 view) of the
    pieces ``[i, j)``, optionally preceded by a ``head`` piece column —
    copied from the chunks' cached read-only lane blocks."""
    import numpy as np

    blocks = []
    if head is not None:
        col = np.empty((5, 1), np.float64)
        col[0, 0] = head.ya
        col[1, 0] = head.za
        col[2, 0] = head.yb
        col[3, 0] = head.zb
        col.view(np.int64)[4, 0] = head.source
        blocks.append(col)
    c = bisect_right(rope.offsets, i) - 1 if i < j else 0
    while i < j:
        chunk = rope.chunks[c]
        base = rope.offsets[c]
        lo = i - base
        hi = min(j - base, len(chunk))
        block = chunk.block()  # materialise + cache the (5, k) block
        blocks.append(block if lo == 0 and hi == len(chunk)
                      else block[:, lo:hi])
        i = base + hi
        c += 1
    if not blocks:
        buf = np.empty((5, 0), np.float64)
    elif len(blocks) > 1:
        buf = np.concatenate(blocks, axis=1)
    else:
        buf = np.array(blocks[0])  # fresh copy: chunk blocks are frozen
    return buf, buf.view(np.int64)


def range_lanes(rope: Rope, ya: float, yb: float):
    """The :func:`rope_range_pieces` window as five fresh numpy lanes —
    the straddling predecessor rides along *whole* (it is piece
    ``i0 - 1``), so the window is one contiguous global index range."""
    i0 = _index_ge(rope, ya)
    if i0 > 0 and rope.piece_at(i0 - 1).yb >= ya:
        i0 -= 1
    buf, ibuf = _block_between(rope, i0, _index_ge(rope, yb))
    return buf[0], buf[1], buf[2], buf[3], ibuf[4]


def _check_splice_pieces(
    pieces: list[Piece], prev_yb: float, next_ya: float
) -> None:
    """Post-condition check for the ``rope_splice`` guard: the fresh
    run is sorted, non-overlapping, finite, and fits between its
    neighbours.  Scalar and numpy-free — the site must stay checkable
    on the pure-python leg."""
    prev = prev_yb
    for j, p in enumerate(pieces):
        if not (prev <= p.ya < p.yb) or p.za != p.za or p.zb != p.zb:
            _guard.violation(
                "rope_splice",
                f"fresh piece {j} ({p.ya!r}..{p.yb!r}) unsorted,"
                " overlapping or non-finite",
            )
        prev = p.yb
    if prev > next_ya:
        _guard.violation(
            "rope_splice",
            f"fresh run overruns right neighbour ({prev!r} > {next_ya!r})",
        )


def _splice_frags(rope: Rope, sr: SpliceRange):
    """The shared commit prologue: keep bounds, whole shared chunks on
    both sides, and the boundary-chunk piece fragments that refold into
    the fresh run (``left_frag`` already carries ``sr.left_cut``)."""
    keep_left = sr.i0 - (1 if sr.left_cut is not None else 0)
    keep_right = sr.i1
    offsets = rope.offsets
    # Whole chunks strictly inside the kept prefix / suffix.
    cl = bisect_right(offsets, keep_left) - 1
    shared_left = rope.chunks[:cl]
    left_frag = list(rope.chunks[cl].pieces[: keep_left - offsets[cl]]) if (
        keep_left - offsets[cl]
    ) else []
    cr = bisect_right(offsets, keep_right) - 1
    if cr == len(rope.chunks):  # splice reaches the end
        right_frag: list[Piece] = []
        shared_right: tuple[Chunk, ...] = ()
    else:
        cut = keep_right - offsets[cr]
        right_frag = list(rope.chunks[cr].pieces[cut:]) if cut else []
        shared_right = rope.chunks[cr + 1 :] if cut else rope.chunks[cr:]
    if sr.left_cut is not None:
        left_frag.append(sr.left_cut)
    return keep_left, keep_right, shared_left, left_frag, right_frag, shared_right


def commit_splice(rope: Rope, sr: SpliceRange, merged: list[Piece]) -> Rope:
    """Assemble the successor version: shared chunks outside the
    affected span, balanced fresh chunks inside (boundary-chunk
    fragments fold into the fresh run — they are new allocations
    either way, and folding avoids runt chunks at the seams).

    Guard site ``rope_splice``: the fresh run is validated against its
    kept neighbours *before* any spine is built; a fault degrades to a
    full unshared rebuild from the intact piece lists (identical
    pieces, sharing lost for this one version).
    """
    (keep_left, keep_right, shared_left, left_frag,
     right_frag, shared_right) = _splice_frags(rope, sr)

    def kernel() -> Rope:
        fresh = merged
        if _fi.ARMED:
            fresh = _fi.corrupt_piece_list("rope_splice", fresh)
        prev_yb = shared_left[-1].yb_max if shared_left else NEG_INF
        next_ya = (
            shared_right[0].ya_min if shared_right else float("inf")
        )
        _check_splice_pieces(
            left_frag + fresh + right_frag, prev_yb, next_ya
        )
        return Rope(
            shared_left
            + tuple(_chunked(left_frag + fresh + right_frag))
            + shared_right
        )

    def fallback() -> Rope:
        # Unshared rebuild from the intact scalar piece lists — the
        # simple path sharing no spine arithmetic with the kernel.
        pieces = rope.pieces_between(0, keep_left)
        if sr.left_cut is not None:
            pieces.append(sr.left_cut)
        pieces.extend(merged)
        pieces.extend(rope.pieces_between(keep_right, rope.total))
        return rope_from_pieces(pieces)

    return _guard.guarded_call("rope_splice", kernel, fallback)


def _chunked_block(block) -> list[Chunk]:
    """Balance a frozen ``(5, n)`` lane block into near-equal
    :meth:`Chunk.from_block` column slices of at most
    :data:`CHUNK_TARGET` pieces — the lane-native :func:`_chunked`."""
    n = block.shape[1]
    if n == 0:
        return []
    parts = -(-n // CHUNK_TARGET)  # ceil
    out: list[Chunk] = []
    base, extra = divmod(n, parts)
    i = 0
    for p in range(parts):
        k = base + (1 if p < extra else 0)
        out.append(Chunk.from_block(block[:, i : i + k]))
        i += k
    return out


def _check_splice_lanes(buf, prev_yb: float, next_ya: float) -> None:
    """Vectorised twin of :func:`_check_splice_pieces` over a fresh
    ``(5, n)`` commit block: sorted, non-overlapping, NaN-free z, and
    fits between the kept neighbours.  Same guard site, same
    violations — only the arithmetic is batched."""
    import numpy as np

    ya, za, yb, zb = buf[0], buf[1], buf[2], buf[3]
    n = buf.shape[1]
    if n == 0:
        return
    ok = (
        bool((ya < yb).all())
        and bool((yb[:-1] <= ya[1:]).all())
        and not bool(np.isnan(za).any())
        and not bool(np.isnan(zb).any())
        and prev_yb <= float(ya[0])
    )
    if not ok:
        _guard.violation(
            "rope_splice",
            "fresh lane block unsorted, overlapping or non-finite",
        )
    if float(yb[-1]) > next_ya:
        _guard.violation(
            "rope_splice",
            f"fresh run overruns right neighbour"
            f" ({float(yb[-1])!r} > {next_ya!r})",
        )


def commit_splice_lanes(rope: Rope, sr: SpliceRange, lanes, carry) -> Rope:
    """Lane-native :func:`commit_splice`: the merged run arrives as
    five fresh arrays ``(ya, za, yb, zb, source)`` straight off the
    batched merge kernel, and the successor version's fresh chunks are
    column slices of one frozen commit block — **no** :class:`Piece`
    tuple is materialised on the happy path.  ``carry`` is the
    :class:`SpliceRange` overhang to re-attach past the merge (or
    ``None``).

    Same ``rope_splice`` guard envelope as the scalar commit: the
    block is validated against its kept neighbours before the spine is
    assembled, and any fault degrades to the unshared scalar rebuild
    from the intact piece lists.
    """
    import numpy as np

    keep_left = sr.i0 - (1 if sr.left_cut is not None else 0)
    keep_right = sr.i1
    offsets = rope.offsets
    # Boundary-chunk fragments as block slices — no Piece round-trip.
    cl = bisect_right(offsets, keep_left) - 1
    shared_left = rope.chunks[:cl]
    nl = keep_left - offsets[cl]
    left_block = rope.chunks[cl].block()[:, :nl] if nl else None
    cr = bisect_right(offsets, keep_right) - 1
    if cr == len(rope.chunks):  # splice reaches the end
        right_block = None
        shared_right: tuple[Chunk, ...] = ()
    else:
        cut = keep_right - offsets[cr]
        right_block = rope.chunks[cr].block()[:, cut:] if cut else None
        shared_right = rope.chunks[cr + 1 :] if cut else rope.chunks[cr:]
    mya, mza, myb, mzb, msrc = lanes
    nm = len(mya)
    nc = 1 if carry is not None else 0
    nr = right_block.shape[1] if right_block is not None else 0

    def _put_piece(buf, ibuf, j, p) -> None:
        buf[0, j] = p.ya
        buf[1, j] = p.za
        buf[2, j] = p.yb
        buf[3, j] = p.zb
        ibuf[4, j] = p.source

    def kernel() -> Rope:
        nlc = 1 if sr.left_cut is not None else 0
        buf = np.empty((5, nl + nlc + nm + nc + nr), np.float64)
        ibuf = buf.view(np.int64)
        if left_block is not None:
            # Same-dtype row copies move the int64 source bits intact.
            buf[:, :nl] = left_block
        if sr.left_cut is not None:
            _put_piece(buf, ibuf, nl, sr.left_cut)
        a = nl + nlc
        buf[0, a : a + nm] = mya
        buf[1, a : a + nm] = mza
        buf[2, a : a + nm] = myb
        buf[3, a : a + nm] = mzb
        ibuf[4, a : a + nm] = msrc
        if carry is not None:
            _put_piece(buf, ibuf, a + nm, carry)
        if right_block is not None:
            buf[:, a + nm + nc :] = right_block
        if _fi.ARMED:
            _fi.corrupt_lane_block("rope_splice", buf, ibuf)
        prev_yb = shared_left[-1].yb_max if shared_left else NEG_INF
        next_ya = shared_right[0].ya_min if shared_right else float("inf")
        _check_splice_lanes(buf, prev_yb, next_ya)
        buf.flags.writeable = False
        return Rope(
            shared_left + tuple(_chunked_block(buf)) + shared_right
        )

    def fallback() -> Rope:
        # Unshared scalar rebuild from the intact piece lists — shares
        # no lane arithmetic with the kernel.
        pieces = rope.pieces_between(0, keep_left)
        if sr.left_cut is not None:
            pieces.append(sr.left_cut)
        pieces.extend(
            map(Piece, mya.tolist(), mza.tolist(), myb.tolist(),
                mzb.tolist(), msrc.tolist())
        )
        if carry is not None:
            pieces.append(carry)
        pieces.extend(rope.pieces_between(keep_right, rope.total))
        return rope_from_pieces(pieces)

    return _guard.guarded_call("rope_splice", kernel, fallback)


def rope_splice_merge(
    rope: Rope, other: Envelope, *, eps: float = EPS
) -> tuple[Rope, MergeResult]:
    """Merge an array envelope into a rope version.

    Exact analogue of
    :func:`~repro.persistence.envelope_store.penv_splice_merge` —
    same straddle/carry decomposition, same
    :func:`~repro.envelope.merge.merge_envelopes` sweep over the same
    local range, so the returned :class:`MergeResult` (pieces, ops,
    crossings) is bit-identical to the treap oracle's.  Only the
    commit differs: chunk-granular path copying instead of per-node.
    """
    if not other.pieces:
        return rope, MergeResult(Envelope.empty(), [], 0)
    ya, yb = other.y_span()
    if rope.total == 0:
        return rope_from_envelope(other), MergeResult(other, [], other.size)
    sr = SpliceRange(rope, ya, yb)
    local = Envelope(sr.mid_pieces())
    res = merge_envelopes(local, other, eps=eps)
    merged = list(res.envelope.pieces)
    if sr.carry is not None and sr.carry.ya < sr.carry.yb:
        merged.append(sr.carry)
    return commit_splice(rope, sr, merged), res


# ---------------------------------------------------------------------------
# Sharing accounting (the E5/E11 meters).
# ---------------------------------------------------------------------------


def count_chunks(rope: Optional[Rope]) -> int:
    return len(rope.chunks) if rope is not None else 0


def count_shared_pieces(*ropes: Optional[Rope]) -> tuple[int, int]:
    """Piece-identity ``(total_distinct, shared)`` across versions —
    the direct analogue of
    :func:`repro.persistence.treap.count_shared_nodes` (one treap node
    holds one piece, so the units match).  A splice reuses the *same*
    :class:`~repro.envelope.chain.Piece` objects for every slot
    outside the merged range — including slots refolded into fresh
    boundary chunks — so identity counting sees exactly the memory
    actually shared between layer-mates; the chunk-granular view is
    :func:`count_shared_chunks`."""
    per_rope: list[set[int]] = []
    for r in ropes:
        seen: set[int] = set()
        if r is not None:
            for c in r.chunks:
                for p in c.pieces:
                    seen.add(id(p))
        per_rope.append(seen)
    all_ids: set[int] = set().union(*per_rope) if per_rope else set()
    shared = sum(
        1
        for i in all_ids
        if sum(1 for s in per_rope if i in s) >= 2
    )
    return (len(all_ids), shared)


def count_shared_chunks(*ropes: Optional[Rope]) -> tuple[int, int]:
    """Piece-weighted ``(total_distinct, shared)`` across versions —
    the rope analogue of
    :func:`repro.persistence.treap.count_shared_nodes` (which counts
    one node per piece, so piece weighting keeps the units
    comparable).  ``shared`` sums the piece counts of chunk objects
    reachable from at least two of the versions."""
    per_rope: list[set[int]] = []
    by_id: dict[int, Chunk] = {}
    for r in ropes:
        seen: set[int] = set()
        if r is not None:
            for c in r.chunks:
                seen.add(id(c))
                by_id[id(c)] = c
        per_rope.append(seen)
    all_ids: set[int] = set().union(*per_rope) if per_rope else set()
    total = sum(len(by_id[i]) for i in all_ids)
    shared = sum(
        len(by_id[i])
        for i in all_ids
        if sum(1 for s in per_rope if i in s) >= 2
    )
    return (total, shared)
