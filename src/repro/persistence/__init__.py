"""Persistent data structures (paper §1: "our use of persistent
data-structures is somewhat novel in the context of parallel
algorithms").

* :mod:`repro.persistence.treap` — fully persistent treap primitives.
* :mod:`repro.persistence.envelope_store` — profile versions that
  share structure across PCT layer-mates.
"""

from repro.persistence.envelope_store import (
    PersistentEnvelope,
    penv_from_envelope,
    penv_splice_merge,
    penv_value_at,
)
from repro.persistence.treap import (
    TreapNode,
    allocation_count,
    count_nodes,
    count_shared_nodes,
    delete,
    find,
    from_sorted,
    insert,
    iter_nodes,
    join,
    kth,
    range_query,
    reset_allocation_count,
    size,
    split,
    to_list,
    treap_priority,
)

__all__ = [
    "PersistentEnvelope",
    "TreapNode",
    "allocation_count",
    "count_nodes",
    "count_shared_nodes",
    "delete",
    "find",
    "from_sorted",
    "insert",
    "iter_nodes",
    "join",
    "kth",
    "penv_from_envelope",
    "penv_splice_merge",
    "penv_value_at",
    "range_query",
    "reset_allocation_count",
    "size",
    "split",
    "to_list",
    "treap_priority",
]
