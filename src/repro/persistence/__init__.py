"""Persistent data structures (paper §1: "our use of persistent
data-structures is somewhat novel in the context of parallel
algorithms").

* :mod:`repro.persistence.rope` — versioned chunked rope of immutable
  packed piece blocks (the default store backend).
* :mod:`repro.persistence.treap` — fully persistent treap primitives
  (the parity oracle backend).
* :mod:`repro.persistence.envelope_store` — profile versions that
  share structure across PCT layer-mates, dispatching between the two
  backends (``REPRO_PERSISTENT_BACKEND``).

The treap *primitives* formerly re-exported at package level
(``insert``, ``split``, ``join``, …) are deprecated here — import
them from :mod:`repro.persistence.treap` directly.  Accessing one
through the package emits a single :class:`DeprecationWarning` per
process; plain ``import repro.persistence`` stays warning-clean.
"""

from repro.persistence.envelope_store import (
    BACKENDS,
    PersistentEnvelope,
    penv_from_envelope,
    penv_splice_merge,
    penv_value_at,
    resolve_backend,
)
from repro.persistence.rope import (
    Chunk,
    Rope,
    count_shared_chunks,
    rope_from_envelope,
    rope_range_pieces,
    rope_splice_merge,
    rope_value_at,
    rope_visible_parts,
)

#: Treap-era package-level re-exports, now deprecated (resolved
#: lazily; each warns once, then behaves exactly as before).
_DEPRECATED_TREAP = (
    "TreapNode",
    "allocation_count",
    "count_nodes",
    "count_shared_nodes",
    "delete",
    "find",
    "from_sorted",
    "insert",
    "iter_nodes",
    "join",
    "kth",
    "range_query",
    "reset_allocation_count",
    "size",
    "split",
    "to_list",
    "treap_priority",
)

__all__ = [
    "PersistentEnvelope",
    "BACKENDS",
    "resolve_backend",
    "Chunk",
    "Rope",
    "count_shared_chunks",
    "penv_from_envelope",
    "penv_splice_merge",
    "penv_value_at",
    "rope_from_envelope",
    "rope_range_pieces",
    "rope_splice_merge",
    "rope_value_at",
    "rope_visible_parts",
    *_DEPRECATED_TREAP,
]


def __getattr__(name: str):
    if name in _DEPRECATED_TREAP:
        from repro._compat import warn_once
        from repro.persistence import treap

        warn_once(
            f"persistence.{name}",
            f"'repro.persistence.{name}' is deprecated; import it from"
            " 'repro.persistence.treap' (the treap is now the parity"
            " oracle behind the rope store — see"
            " repro.persistence.envelope_store.BACKENDS)",
        )
        # Not cached in globals(): resolution must keep flowing
        # through the warn-once shim (the registry makes repeat
        # accesses silent; tests reset it and re-trigger).
        return getattr(treap, name)
    raise AttributeError(
        f"module 'repro.persistence' has no attribute {name!r}"
    )


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_TREAP))
