"""Fully persistent treap.

The paper stores the convex chains of all profiles "along the lines of
a persistent binary tree structure [Driscoll–Sarnak–Sleator–Tarjan]"
so that profiles at the same PCT layer share their common visible
portions instead of copying them (Figs. 1 and 3).  This module provides
that substrate: a purely functional (path-copying) treap —

* every operation returns a **new root**; old roots remain valid
  versions forever;
* ``split`` / ``join`` / ``insert`` / ``delete`` allocate ``O(log n)``
  expected new nodes, everything else is shared;
* node priorities are a deterministic hash of the key, so a given key
  set always produces the same tree shape — versions built through
  different operation orders share maximally and tests are
  reproducible.

Sharing is *measurable*: :func:`count_nodes` and
:func:`count_shared_nodes` let experiments E5/E7 report exactly how
much structure versions share, and :data:`TreapNode.allocated` counts
total allocations for the memory-versus-copying ablation.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterator, Optional, TypeVar

from repro.errors import PersistenceError

__all__ = [
    "TreapNode",
    "treap_priority",
    "insert",
    "delete",
    "split",
    "join",
    "find",
    "pred",
    "succ",
    "size",
    "to_list",
    "from_sorted",
    "range_query",
    "kth",
    "count_nodes",
    "count_shared_nodes",
    "allocation_count",
    "reset_allocation_count",
]

V = TypeVar("V")

_ALLOCATED = 0


def allocation_count() -> int:
    """Total treap nodes allocated since the last reset."""
    return _ALLOCATED


def reset_allocation_count() -> None:
    global _ALLOCATED
    _ALLOCATED = 0


def treap_priority(key: float) -> int:
    """Deterministic pseudo-random priority for a key.

    Blake2b over the IEEE-754 bits: uniform enough for treap balance,
    and identical across processes/runs (unlike ``hash`` with
    ``PYTHONHASHSEED`` randomisation).
    """
    digest = hashlib.blake2b(
        struct.pack("<d", key), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class TreapNode:
    """Immutable treap node.

    ``key`` orders the tree; ``value`` is an arbitrary payload;
    ``left``/``right`` are child roots (or ``None``).  ``count`` caches
    subtree size for order statistics.  The optional ``augment`` slot
    carries memoised subtree summaries (the ACG stores convex chains
    there) — it is filled lazily by the augmentation layer and never
    affects structural operations.
    """

    __slots__ = (
        "key",
        "value",
        "left",
        "right",
        "priority",
        "count",
        "augment",
    )

    def __init__(
        self,
        key: float,
        value: Any,
        left: Optional["TreapNode"],
        right: Optional["TreapNode"],
        priority: Optional[int] = None,
    ):
        global _ALLOCATED
        _ALLOCATED += 1
        self.key = key
        self.value = value
        self.left = left
        self.right = right
        self.priority = (
            priority if priority is not None else treap_priority(key)
        )
        self.count = 1 + size(left) + size(right)
        self.augment: Any = None

    def with_children(
        self, left: Optional["TreapNode"], right: Optional["TreapNode"]
    ) -> "TreapNode":
        """Path-copy: a new node with the same payload, new children."""
        if left is self.left and right is self.right:
            return self
        return TreapNode(self.key, self.value, left, right, self.priority)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TreapNode(key={self.key}, count={self.count})"


Root = Optional[TreapNode]


def size(root: Root) -> int:
    """Number of keys in the version rooted at ``root``."""
    return root.count if root is not None else 0


def split(root: Root, key: float) -> tuple[Root, Root]:
    """Split into ``(< key, >= key)``; ``O(log n)`` new nodes."""
    if root is None:
        return (None, None)
    if root.key < key:
        l, r = split(root.right, key)
        return (root.with_children(root.left, l), r)
    l, r = split(root.left, key)
    return (l, root.with_children(r, root.right))


def join(left: Root, right: Root) -> Root:
    """Concatenate two versions; every key in ``left`` must be smaller
    than every key in ``right`` (checked cheaply at the roots' fringes
    in debug builds; violating it corrupts ordering silently otherwise,
    so callers are expected to hold the invariant).
    """
    if left is None:
        return right
    if right is None:
        return left
    if left.priority >= right.priority:
        return left.with_children(left.left, join(left.right, right))
    return right.with_children(join(left, right.left), right.right)


def insert(root: Root, key: float, value: Any) -> Root:
    """Insert or replace ``key``; returns the new version's root."""
    if root is None:
        return TreapNode(key, value, None, None)
    if key == root.key:
        return TreapNode(key, value, root.left, root.right, root.priority)
    if key < root.key:
        new_left = insert(root.left, key, value)
        node = root.with_children(new_left, root.right)
        if new_left is not None and new_left.priority > node.priority:
            # Rotate right.
            return new_left.with_children(
                new_left.left, node.with_children(new_left.right, node.right)
            )
        return node
    new_right = insert(root.right, key, value)
    node = root.with_children(root.left, new_right)
    if new_right is not None and new_right.priority > node.priority:
        # Rotate left.
        return new_right.with_children(
            node.with_children(node.left, new_right.left), new_right.right
        )
    return node


def delete(root: Root, key: float) -> Root:
    """Remove ``key`` (no-op when absent); returns the new root."""
    if root is None:
        return None
    if key < root.key:
        return root.with_children(delete(root.left, key), root.right)
    if key > root.key:
        return root.with_children(root.left, delete(root.right, key))
    return join(root.left, root.right)


def find(root: Root, key: float) -> Optional[Any]:
    """Value stored at ``key`` or ``None``."""
    node = root
    while node is not None:
        if key == node.key:
            return node.value
        node = node.left if key < node.key else node.right
    return None


def pred(root: Root, key: float) -> Optional[TreapNode]:
    """The node with the greatest key strictly below ``key``."""
    best: Optional[TreapNode] = None
    node = root
    while node is not None:
        if node.key < key:
            best = node
            node = node.right
        else:
            node = node.left
    return best


def succ(root: Root, key: float) -> Optional[TreapNode]:
    """The node with the smallest key ``>= key``."""
    best: Optional[TreapNode] = None
    node = root
    while node is not None:
        if node.key >= key:
            best = node
            node = node.left
        else:
            node = node.right
    return best


def kth(root: Root, index: int) -> TreapNode:
    """The ``index``-th node in key order (0-based)."""
    if root is None or not (0 <= index < root.count):
        raise PersistenceError(
            f"kth index {index} out of range for size {size(root)}"
        )
    node = root
    while True:
        assert node is not None
        left_count = size(node.left)
        if index < left_count:
            node = node.left
        elif index == left_count:
            return node
        else:
            index -= left_count + 1
            node = node.right


def to_list(root: Root) -> list[tuple[float, Any]]:
    """All ``(key, value)`` pairs in key order (iterative, stack-safe)."""
    out: list[tuple[float, Any]] = []
    stack: list[TreapNode] = []
    node = root
    while node is not None or stack:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        out.append((node.key, node.value))
        node = node.right
    return out


def iter_nodes(root: Root) -> Iterator[TreapNode]:
    """In-order node iterator."""
    stack: list[TreapNode] = []
    node = root
    while node is not None or stack:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        yield node
        node = node.right


def from_sorted(pairs: list[tuple[float, Any]]) -> Root:
    """Build a version from strictly-increasing ``(key, value)`` pairs
    in ``O(n)`` (priorities still come from the key hash, so the result
    is identical to repeated insertion).
    """
    for (k1, _), (k2, _) in zip(pairs, pairs[1:]):
        if not k1 < k2:
            raise PersistenceError(
                f"from_sorted requires strictly increasing keys"
                f" ({k1} !< {k2})"
            )

    def build(lo: int, hi: int) -> Root:
        if lo >= hi:
            return None
        # Root = max priority in range; a linear scan per level keeps
        # this O(n log n) worst case but O(n) in expectation via the
        # standard "build by priorities" argument on random data.
        best = lo
        best_p = treap_priority(pairs[lo][0])
        for i in range(lo + 1, hi):
            p = treap_priority(pairs[i][0])
            if p > best_p:
                best, best_p = i, p
        k, v = pairs[best]
        return TreapNode(k, v, build(lo, best), build(best + 1, hi), best_p)

    return build(0, len(pairs))


def range_query(root: Root, lo: float, hi: float) -> list[tuple[float, Any]]:
    """All pairs with ``lo <= key < hi`` in key order, touching only
    ``O(log n + output)`` nodes."""
    out: list[tuple[float, Any]] = []

    def walk(node: Root) -> None:
        if node is None:
            return
        if node.key >= lo:
            walk(node.left)
        if lo <= node.key < hi:
            out.append((node.key, node.value))
        if node.key < hi:
            walk(node.right)

    walk(root)
    return out


def count_nodes(root: Root) -> int:
    """Distinct node objects reachable from ``root``."""
    seen: set[int] = set()
    _collect(root, seen)
    return len(seen)


def count_shared_nodes(*roots: Root) -> tuple[int, int]:
    """``(total_distinct, shared)`` across several versions.

    ``shared`` counts nodes reachable from at least two of the roots —
    the quantity Fig. 1/Fig. 3 claim is large between PCT layer-mates.
    """
    per_root: list[set[int]] = []
    node_ids: dict[int, TreapNode] = {}
    for r in roots:
        seen: set[int] = set()
        _collect(r, seen, node_ids)
        per_root.append(seen)
    all_ids: set[int] = set().union(*per_root) if per_root else set()
    shared = {
        i
        for i in all_ids
        if sum(1 for s in per_root if i in s) >= 2
    }
    return (len(all_ids), len(shared))


def _collect(
    root: Root,
    seen: set[int],
    node_ids: Optional[dict[int, TreapNode]] = None,
) -> None:
    stack = [root] if root is not None else []
    while stack:
        node = stack.pop()
        i = id(node)
        if i in seen:
            continue
        seen.add(i)
        if node_ids is not None:
            node_ids[i] = node
        if node.left is not None:
            stack.append(node.left)
        if node.right is not None:
            stack.append(node.right)
