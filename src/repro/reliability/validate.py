"""Input hardening: the validation front door.

The kernels assume well-formed input — finite elevations, a proper
``z = f(x, y)`` terrain, non-degenerate segments.  Feeding them NaN
elevations or duplicate vertices either crashes deep inside a
vectorized sweep or silently corrupts the visibility map.  These
validators reject such input *at the boundary* with a
:class:`~repro.errors.ValidationError` that names the offending
vertex/segment, so service callers (ROADMAP items 3/4) get a clean
4xx-style failure instead of a kernel traceback or garbage output.

Pure stdlib — importable and usable on the no-numpy leg.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import ValidationError

__all__ = ["validate_terrain", "validate_segments"]


def _reject(context: Optional[str], message: str) -> None:
    raise ValidationError(f"{context}: {message}" if context else message)


def validate_terrain(terrain, *, context: Optional[str] = None):
    """Validate ``terrain`` for kernel consumption; returns it.

    Rejects non-finite vertex coordinates (NaN/Inf elevations — DEM
    nodata holes that leaked through) and duplicate ``(x, y)``
    locations (not a function graph; the constructor's own duplicate
    check cannot see NaN coordinates because ``NaN != NaN``).
    ``context`` (e.g. a file path) prefixes the error message.
    """
    seen: dict = {}
    for i, v in enumerate(terrain.vertices):
        if not (
            math.isfinite(v.x) and math.isfinite(v.y) and math.isfinite(v.z)
        ):
            _reject(
                context,
                f"vertex {i} has a non-finite coordinate"
                f" ({v.x!r}, {v.y!r}, {v.z!r})",
            )
        key = (v.x, v.y)
        j = seen.setdefault(key, i)
        if j != i:
            _reject(
                context,
                f"vertices {j} and {i} share the (x, y) location"
                f" {key!r} — not a terrain (z = f(x, y))",
            )
    return terrain


def validate_segments(
    segments: Sequence, *, context: Optional[str] = None
) -> Sequence:
    """Validate image segments for kernel consumption; returns them.

    Rejects non-finite lanes and zero-length (point) segments —
    ``y1 == y2 and z1 == z2`` carries no supporting line, so neither
    engine can classify it.  Vertical segments (``y1 == y2`` with
    distinct ``z``) are *valid*: both engines answer them with the
    point query.
    """
    for i, s in enumerate(segments):
        if not (
            math.isfinite(s.y1)
            and math.isfinite(s.z1)
            and math.isfinite(s.y2)
            and math.isfinite(s.z2)
        ):
            _reject(
                context,
                f"segment {i} (source {s.source}) has a non-finite"
                f" lane ({s.y1!r}, {s.z1!r}, {s.y2!r}, {s.z2!r})",
            )
        if s.y1 == s.y2 and s.z1 == s.z2:
            _reject(
                context,
                f"segment {i} (source {s.source}) has zero length at"
                f" ({s.y1!r}, {s.z1!r})",
            )
    return segments
