"""Deterministic fault injection for the guarded dispatch layer.

Every guarded kernel boundary (:mod:`repro.reliability.guard`) exposes
a *named injection site*.  Exactly one fault plan can be armed at a
time — via the :func:`inject` context manager or the
``REPRO_FAULT_INJECT`` environment variable — and it fires
deterministically on the *nth eligible call* at its site:

``raise``
    The site raises :class:`InjectedFault` before the kernel runs —
    modelling an allocation failure or a crash inside a vectorized
    sweep.
``unsorted``
    The kernel's freshly-built output has its first two pieces (or the
    endpoints of its only piece) swapped — modelling a buggy splice
    that breaks the sorted-``ya`` envelope invariant.
``nan``
    One ``z`` lane of the output is poisoned with NaN (seeded,
    reproducible index choice) — modelling silent numeric corruption.

Corruption always targets *freshly allocated result objects*, never
window views that alias a live profile buffer, so an injected fault is
recoverable by recomputing from the (untouched) inputs — which is
exactly what guarded mode must demonstrate.  While a guard runs its
python-path fallback, injection is suppressed
(:func:`suppressed`), so the recovery path cannot re-trip the fault it
is recovering from.

Environment variable format (parsed once at import, and on demand via
:func:`configure_from_env`)::

    REPRO_FAULT_INJECT="site:mode[:nth[+]]"

e.g. ``fused_insert:raise`` (first call), ``merge_dispatch:nan:2``
(second call), ``packed_splice:raise:1+`` (every call — the circuit-
breaker exercise).  This module never imports numpy at module level
and stays importable on the no-numpy leg.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ReproError

__all__ = [
    "InjectedFault",
    "SITES",
    "inject",
    "install",
    "clear",
    "suppressed",
    "trip",
    "configure_from_env",
]

#: Every named injection site, in dispatch order.  ``profile`` is the
#: periodic whole-profile validation tick (detection-only — see
#: ``docs/RELIABILITY.md``).
SITES = (
    "merge_dispatch",
    "visibility_dispatch",
    "compiled_insert",
    "fused_insert",
    "packed_splice",
    "build_sweep",
    "parallel_exec",
    "phase2_merge",
    "phase2_visibility",
    "rope_splice",
    "profile",
)

_MODES = ("raise", "unsorted", "nan")


class InjectedFault(ReproError):
    """The exception raised by a ``raise``-mode injection plan.

    Carries ``site`` so an outer guard catching it attributes the
    fault to the boundary it was injected at, not its own."""

    def __init__(self, site: str, message: str):
        self.site = site
        super().__init__(message)


class _Plan:
    __slots__ = ("site", "mode", "nth", "repeat", "seed", "calls", "fired")

    def __init__(self, site: str, mode: str, nth: int, repeat: bool, seed: int):
        self.site = site
        self.mode = mode
        self.nth = nth
        self.repeat = repeat
        self.seed = seed
        self.calls = 0  # eligible calls seen at the site
        self.fired = 0  # faults actually delivered


_PLAN: Optional[_Plan] = None
_SUPPRESS = 0

#: Fast gate read by the guarded hot paths: ``True`` iff a plan is
#: installed and injection is not suppressed.  Kept as a plain module
#: attribute so the common case costs one attribute load.
ARMED = False


def _sync_armed() -> None:
    global ARMED
    ARMED = _PLAN is not None and _SUPPRESS == 0


def install(
    site: str,
    mode: str,
    *,
    nth: int = 1,
    repeat: bool = False,
    seed: int = 0,
) -> _Plan:
    """Arm a fault plan (replacing any previous one)."""
    global _PLAN
    if site not in SITES:
        raise ValueError(f"unknown injection site {site!r}; known: {SITES}")
    if mode not in _MODES:
        raise ValueError(f"unknown injection mode {mode!r}; known: {_MODES}")
    _PLAN = _Plan(site, mode, max(1, int(nth)), bool(repeat), int(seed))
    _sync_armed()
    return _PLAN


def clear() -> None:
    """Disarm fault injection."""
    global _PLAN
    _PLAN = None
    _sync_armed()


def armed_site() -> Optional[str]:
    """The armed plan's target site, or ``None`` when disarmed.

    Dispatch shortcuts consult this to *decline* while a plan targets
    a site they would bypass: the compiled insert core answers before
    the scalar/vectorized cascade, so with e.g. ``fused_insert``
    armed it must stand aside or the injected boundary never runs."""
    return _PLAN.site if ARMED else None


@contextmanager
def inject(
    site: str,
    mode: str,
    *,
    nth: int = 1,
    repeat: bool = False,
    seed: int = 0,
) -> Iterator[_Plan]:
    """Arm a fault plan for the duration of a ``with`` block.

    Yields the plan so tests can assert ``plan.fired`` afterwards.
    """
    plan = install(site, mode, nth=nth, repeat=repeat, seed=seed)
    try:
        yield plan
    finally:
        clear()


@contextmanager
def suppressed() -> Iterator[None]:
    """Disable injection while a guard runs its recovery path."""
    global _SUPPRESS
    _SUPPRESS += 1
    _sync_armed()
    try:
        yield
    finally:
        _SUPPRESS -= 1
        _sync_armed()


def configure_from_env(value: Optional[str] = None) -> Optional[_Plan]:
    """Parse ``REPRO_FAULT_INJECT`` (or an explicit spec) into a plan.

    Returns the installed plan, or ``None`` when the spec is empty.
    Raises :class:`ValueError` on a malformed spec.
    """
    if value is None:
        value = os.environ.get("REPRO_FAULT_INJECT", "")
    value = value.strip()
    if not value:
        return None
    fields = value.split(":")
    if len(fields) < 2 or len(fields) > 3:
        raise ValueError(
            f"malformed REPRO_FAULT_INJECT {value!r};"
            " expected 'site:mode[:nth[+]]'"
        )
    site, mode = fields[0], fields[1]
    nth, repeat = 1, False
    if len(fields) == 3:
        tok = fields[2]
        if tok.endswith("+"):
            repeat = True
            tok = tok[:-1]
        try:
            nth = int(tok)
        except ValueError:
            raise ValueError(
                f"malformed REPRO_FAULT_INJECT count {fields[2]!r}"
            ) from None
    return install(site, mode, nth=nth, repeat=repeat)


def _fires(site: str, modes: tuple, eligible: bool) -> bool:
    """Count an eligible call at ``site`` and decide whether the plan
    fires on it.  Trivial (empty-result) calls are not eligible: there
    is nothing to corrupt, so the plan waits for the next call that
    carries data."""
    p = _PLAN
    if p is None or _SUPPRESS or p.site != site or p.mode not in modes:
        return False
    if not eligible:
        return False
    p.calls += 1
    if p.calls == p.nth or (p.repeat and p.calls >= p.nth):
        p.fired += 1
        return True
    return False


def trip(site: str) -> None:
    """Raise :class:`InjectedFault` when a ``raise`` plan fires here.

    Called at guard sites *before* the kernel runs (and before any
    mutation), so a tripped site leaves its inputs untouched.
    """
    if _fires(site, ("raise",), True):
        raise InjectedFault(
            site,
            f"injected fault at guard site {site!r}"
            f" (eligible call #{_PLAN.calls})",  # type: ignore[union-attr]
        )


# ---------------------------------------------------------------------------
# Corruption helpers.  Only reached when ``ARMED`` is true (the guards
# gate on the flag), so the imports below never run on the hot path.
# ---------------------------------------------------------------------------


def _nan_index(n: int) -> int:
    import random

    p = _PLAN
    assert p is not None
    return random.Random(p.seed * 1000003 + p.calls).randrange(n)


def corrupt_visibility(site: str, vis):
    """Corrupt a freshly-built ``VisibilityResult`` (parts list)."""
    if not _fires(site, ("unsorted", "nan"), bool(vis.parts)):
        return vis
    from repro.envelope.visibility import VisibilityResult, VisiblePart

    parts = list(vis.parts)
    if _PLAN.mode == "unsorted":  # type: ignore[union-attr]
        if len(parts) >= 2:
            parts.reverse()
        else:
            p0 = parts[0]
            parts[0] = VisiblePart(p0.yb + 1.0, p0.ya)
    else:
        i = _nan_index(len(parts))
        parts[i] = VisiblePart(float("nan"), parts[i].yb)
    return VisibilityResult(parts, vis.crossings, vis.ops)


def corrupt_vis_list(site: str, results: list) -> list:
    """Corrupt the first non-empty result of a batched visibility
    answer (one eligible call per batch)."""
    idx = next(
        (i for i, r in enumerate(results) if r is not None and r.parts), None
    )
    if idx is None:
        _fires(site, ("unsorted", "nan"), False)
        return results
    out = list(results)
    out[idx] = corrupt_visibility(site, out[idx])
    return out


def corrupt_merged_lists(site: str, merged: tuple) -> tuple:
    """Corrupt scalar merged-window lists ``(ya, za, yb, zb, src)``."""
    if not _fires(site, ("unsorted", "nan"), len(merged[0]) > 0):
        return merged
    oya, oza, oyb, ozb, osrc = (list(x) for x in merged)
    if _PLAN.mode == "unsorted":  # type: ignore[union-attr]
        if len(oya) >= 2:
            for lane in (oya, oza, oyb, ozb, osrc):
                lane[0], lane[1] = lane[1], lane[0]
        else:
            oya[0], oyb[0] = oyb[0] + 1.0, oya[0]
    else:
        oza[_nan_index(len(oza))] = float("nan")
    return (oya, oza, oyb, ozb, osrc)


def corrupt_lanes(site: str, ya, za, yb, zb, src):
    """Corrupt freshly-built flat output arrays (copies, never views)."""
    if not _fires(site, ("unsorted", "nan"), len(ya) > 0):
        return ya, za, yb, zb, src
    ya, za, yb, zb, src = (a.copy() for a in (ya, za, yb, zb, src))
    if _PLAN.mode == "unsorted":  # type: ignore[union-attr]
        if len(ya) >= 2:
            for lane in (ya, za, yb, zb, src):
                lane[0], lane[1] = lane[1], lane[0]
        else:
            ya[0], yb[0] = yb[0] + 1.0, ya[0]
    else:
        za[_nan_index(len(za))] = float("nan")
    return ya, za, yb, zb, src


def corrupt_flat(site: str, flat):
    """Corrupt a freshly-built ``FlatEnvelope`` (returns a new one)."""
    ya, za, yb, zb, src = corrupt_lanes(
        site, flat.ya, flat.za, flat.yb, flat.zb, flat.source
    )
    if ya is flat.ya:
        return flat
    from repro.envelope.flat import FlatEnvelope

    return FlatEnvelope(ya, za, yb, zb, src)


def poison_profile(site: str, profile) -> bool:
    """Corrupt a LIVE profile in place — the ``profile`` site's
    exercise.  Unlike every other helper this deliberately commits the
    corruption (writes through the live lanes), because the periodic
    tick's contract is *detection after the fact*: it must raise
    :class:`~repro.errors.KernelFault` in both modes.  ``raise`` mode
    is not meaningful here; only ``unsorted``/``nan`` plans fire."""
    if not _fires(site, ("unsorted", "nan"), len(profile.ya) > 0):
        return False
    if _PLAN.mode == "nan":  # type: ignore[union-attr]
        profile.za[_nan_index(len(profile.za))] = float("nan")
    else:
        ya0 = float(profile.ya[0])
        yb0 = float(profile.yb[0])
        profile.ya[0] = yb0 + 1.0
        profile.yb[0] = ya0
    return True


def corrupt_piece_list(site: str, pieces: list) -> list:
    """Corrupt a freshly-merged scalar :class:`Piece` run (the rope
    splice commit's input).  Returns a new list — the intact input is
    what the unshared-rebuild fallback recommits from."""
    if not _fires(site, ("unsorted", "nan"), len(pieces) > 0):
        return pieces
    out = list(pieces)
    if _PLAN.mode == "unsorted":  # type: ignore[union-attr]
        if len(out) >= 2:
            out[0], out[1] = out[1], out[0]
        else:
            p = out[0]
            out[0] = p._replace(ya=p.yb + 1.0, yb=p.ya)
    else:
        i = _nan_index(len(out))
        out[i] = out[i]._replace(za=float("nan"))
    return out


def corrupt_lane_block(site: str, buf, ibuf) -> None:
    """Corrupt a freshly-assembled ``(5, n)`` rope commit block in
    place (``buf`` float64 view, ``ibuf`` its int64 alias).  The block
    is a fresh allocation — never a view of a live chunk — so the
    fallback's rebuild from the intact piece lists is unaffected."""
    n = buf.shape[1]
    if not _fires(site, ("unsorted", "nan"), n > 0):
        return
    if _PLAN.mode == "unsorted":  # type: ignore[union-attr]
        if n >= 2:
            col0 = buf[:, 0].copy()
            icol0 = ibuf[4, 0]
            buf[:, 0] = buf[:, 1]
            ibuf[4, 0] = ibuf[4, 1]
            buf[:, 1] = col0
            ibuf[4, 1] = icol0
        else:
            ya0, yb0 = float(buf[0, 0]), float(buf[2, 0])
            buf[0, 0] = yb0 + 1.0
            buf[2, 0] = ya0
    else:
        buf[1, _nan_index(n)] = float("nan")


def corrupt_env_list(site: str, envs: list) -> list:
    """Corrupt the first non-trivial envelope of a batched merge
    answer (one eligible call per batch)."""
    idx = next(
        (i for i, e in enumerate(envs) if e is not None and len(e)), None
    )
    if idx is None:
        _fires(site, ("unsorted", "nan"), False)
        return envs
    out = list(envs)
    out[idx] = corrupt_flat(site, out[idx])
    return out


# Arm from the environment at import (the CI fault-injection leg and
# the CLI subprocess tests drive injection this way).
configure_from_env()
