"""Reliability subsystem: guarded dispatch, input hardening, fault
injection.

See ``docs/RELIABILITY.md`` for the guard-site table, the circuit-
breaker semantics and the strict-vs-guarded mode contract.
Numpy-free at import time — usable on the no-numpy leg.
"""

from repro.reliability.guard import (
    FAULT_THRESHOLD,
    InvariantViolation,
    ReliabilityReport,
    SiteIncidents,
    current_report,
    guarded_call,
    is_quarantined,
    reliability_run,
)
from repro.reliability.validate import validate_segments, validate_terrain

__all__ = [
    "FAULT_THRESHOLD",
    "InvariantViolation",
    "ReliabilityReport",
    "SiteIncidents",
    "current_report",
    "guarded_call",
    "is_quarantined",
    "reliability_run",
    "validate_segments",
    "validate_terrain",
]
