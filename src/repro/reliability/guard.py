"""Guarded kernel dispatch: invariant checks, python-path retry,
circuit breaker.

Five PRs of kernel work gave every numpy↔python boundary a bit-exact
python twin (the parity contract of :mod:`repro.envelope.engine`).
This module turns that twin into a runtime safety net.  Each guarded
boundary — ``merge_dispatch``, ``visibility_dispatch``, the fused
insert kernels, ``PackedProfile.splice`` and the batched build /
phase-2 sweeps — runs under a guard that

1. **checks** cheap post-conditions on the kernel's freshly-built
   output *before* it is committed anywhere (sorted ``ya`` lanes,
   finite ``z`` lanes, visible parts inside the query span, splice
   bounds inside the live range), and catches kernel exceptions;
2. **degrades**: in guarded mode (the default) a failed operation is
   transparently recomputed on the bit-exact python path — results,
   ``ops`` and all downstream accounting are parity-identical, so the
   only observable difference is the :class:`ReliabilityReport`
   incident;
3. **reports**: every incident is recorded per run (site, count,
   causes), and a circuit breaker quarantines a site to the python
   path for the rest of the run after :data:`FAULT_THRESHOLD` faults.

Modes
-----

:data:`GUARDS_ENABLED`
    Master switch (env ``REPRO_GUARDS``).  ``False`` removes all guard
    work — the ablation baseline the ``sequential-guard-ablation``
    bench rows measure against.  Kernel exceptions then propagate raw.
:data:`GUARDED_DISPATCH`
    ``True`` (default; env ``REPRO_GUARDED_DISPATCH``): degrade and
    record.  ``False`` (*strict*): the first fault raises
    :class:`repro.errors.KernelFault` naming the site — the mode CI
    uses to prove injected faults are actually caught at their site.

Check placement is *pre-commit* by design: outputs are validated while
the inputs they were computed from are still intact, so the python
retry recomputes from unmutated state.  The one exception is the
periodic whole-profile tick (site ``profile``), which is detection-
only — by the time a live profile fails validation the corruption is
already committed, so it raises :class:`~repro.errors.KernelFault` in
*both* modes rather than degrade to garbage.

This module is numpy-free at import time (the vectorized checks bind
numpy lazily) so the no-numpy leg can import and use the report /
validation machinery.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import KernelFault, ReproError
from repro.reliability import faultinject as _fi

__all__ = [
    "GUARDS_ENABLED",
    "GUARDED_DISPATCH",
    "GUARDED_CHECK_ALL",
    "FAULT_THRESHOLD",
    "InvariantViolation",
    "ReliabilityReport",
    "SiteIncidents",
    "reliability_run",
    "current_report",
    "guarded_call",
    "handle_fault",
    "violation",
    "is_quarantined",
    "check_visibility",
    "check_merged_lists",
    "check_flat",
    "check_profile",
]


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


#: Master guard switch; ``False`` is the zero-overhead ablation
#: baseline (kernel exceptions propagate raw, nothing is recorded).
GUARDS_ENABLED: bool = _env_flag("REPRO_GUARDS", True)

#: ``True``: degrade faulted operations to the python path and record
#: them.  ``False``: strict mode — raise :class:`KernelFault` naming
#: the site on the first fault.
GUARDED_DISPATCH: bool = _env_flag("REPRO_GUARDED_DISPATCH", True)

#: Run post-condition checks even on the scalar (python-twin) fast
#: paths, where a check can approach the kernel's own cost.  Off by
#: default — the scalar paths *are* the retry target, so checking them
#: buys detection, not recovery.  Env ``REPRO_GUARD_CHECK_ALL``.
GUARDED_CHECK_ALL: bool = _env_flag("REPRO_GUARD_CHECK_ALL", False)

#: Faults at one site within one run after which the circuit breaker
#: quarantines the site: the guard stops trying the kernel and routes
#: straight to the python path for the rest of the run.
FAULT_THRESHOLD: int = 3

#: Causes kept verbatim per site in a report (the count keeps going).
MAX_CAUSES: int = 5

#: ``True`` when the *innermost* report has quarantined any site —
#: a one-attribute-load prefilter for the hot paths.
ANY_QUARANTINED: bool = False


class InvariantViolation(ReproError):
    """A guarded kernel's output failed its post-condition check.

    Carries ``site`` so the guard that catches it attributes the fault
    to the boundary whose check failed (e.g. a splice-bounds violation
    detected inside an insert is still a ``packed_splice`` incident).
    """

    def __init__(self, site: str, message: str):
        self.site = site
        super().__init__(f"{site}: {message}")


def violation(site: str, message: str) -> None:
    """Raise an :class:`InvariantViolation` for ``site``."""
    raise InvariantViolation(site, message)


# ---------------------------------------------------------------------------
# Per-run reporting + circuit breaker
# ---------------------------------------------------------------------------


@dataclass
class SiteIncidents:
    """Fault tally for one guard site within one report."""

    site: str
    count: int = 0
    quarantined: bool = False
    causes: list = field(default_factory=list)


class ReliabilityReport:
    """Incident log of one run under guarded dispatch.

    ``sites`` maps guard-site name → :class:`SiteIncidents`.  A report
    is *degraded* when any fault was recorded — every recorded fault
    corresponds to one operation that was recomputed on the bit-exact
    python path, so a degraded run's results are still exact.
    """

    __slots__ = ("sites",)

    def __init__(self) -> None:
        self.sites: dict = {}

    def record(self, site: str, cause: BaseException) -> None:
        rec = self.sites.get(site)
        if rec is None:
            rec = self.sites[site] = SiteIncidents(site)
        rec.count += 1
        if len(rec.causes) < MAX_CAUSES:
            rec.causes.append(f"{type(cause).__name__}: {cause}")
        if rec.count >= FAULT_THRESHOLD:
            rec.quarantined = True

    @property
    def faults(self) -> int:
        return sum(rec.count for rec in self.sites.values())

    @property
    def degraded(self) -> bool:
        return bool(self.sites)

    def quarantined_sites(self) -> set:
        return {s for s, rec in self.sites.items() if rec.quarantined}

    def summary(self) -> str:
        """One line per faulted site, prefixed with the total."""
        if not self.sites:
            return "reliability: no kernel faults"
        lines = [
            f"reliability: {self.faults} kernel fault(s) degraded to the"
            f" python path across {len(self.sites)} site(s)"
        ]
        for site in sorted(self.sites):
            rec = self.sites[site]
            tag = " [quarantined]" if rec.quarantined else ""
            cause = f" — {rec.causes[0]}" if rec.causes else ""
            lines.append(f"  {site}: {rec.count} fault(s){tag}{cause}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            site: {
                "count": rec.count,
                "quarantined": rec.quarantined,
                "causes": list(rec.causes),
            }
            for site, rec in self.sites.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReliabilityReport {self.faults} fault(s),"
            f" {len(self.sites)} site(s)>"
        )


# The report stack.  ``_STACK[0]`` is the ambient process report (for
# library use outside any run context); ``reliability_run`` pushes a
# fresh per-run report.  Faults record into *every* open report (so an
# outer CLI context sees incidents of an inner run); the breaker reads
# the innermost one only, so quarantine is scoped to the current run.
_STACK: list = [ReliabilityReport()]


def _refresh_quarantine() -> None:
    global ANY_QUARANTINED
    ANY_QUARANTINED = bool(_STACK[-1].quarantined_sites())


def current_report() -> ReliabilityReport:
    """The innermost open report."""
    return _STACK[-1]


def reset_ambient() -> None:
    """Replace the ambient process report (test isolation)."""
    _STACK[0] = ReliabilityReport()
    if len(_STACK) == 1:
        _refresh_quarantine()


@contextmanager
def reliability_run() -> Iterator[ReliabilityReport]:
    """Open a per-run report; the circuit breaker scopes to it."""
    rep = ReliabilityReport()
    _STACK.append(rep)
    _refresh_quarantine()
    try:
        yield rep
    finally:
        _STACK.pop()
        _refresh_quarantine()


def is_quarantined(site: str) -> bool:
    rec = _STACK[-1].sites.get(site)
    return rec is not None and rec.quarantined


def handle_fault(site: str, exc: BaseException) -> None:
    """Dispatch one kernel fault: raise in strict mode, record in
    guarded mode (the caller then runs its python-path fallback)."""
    if not GUARDED_DISPATCH:
        raise KernelFault(site, exc) from exc
    for rep in _STACK:
        rep.record(site, exc)
    _refresh_quarantine()


def guarded_call(
    site: str,
    kernel: Callable,
    fallback: Callable,
    check: Optional[Callable] = None,
    corrupt: Optional[Callable] = None,
):
    """Run ``kernel`` under the guard for ``site``.

    ``check(result)`` raises :class:`InvariantViolation` on a bad
    post-condition; ``corrupt`` is the fault-injection hook applied to
    the fresh result when injection is armed.  On any fault the call
    is retried as ``fallback()`` (the bit-exact python path) with
    injection suppressed; in strict mode the fault raises
    :class:`KernelFault` instead.
    """
    if not GUARDS_ENABLED:
        return kernel()
    if ANY_QUARANTINED and is_quarantined(site):
        with _fi.suppressed():
            return fallback()
    try:
        _fi.trip(site)
        result = kernel()
        if corrupt is not None and _fi.ARMED:
            result = corrupt(result)
        if check is not None:
            check(result)
        return result
    except KernelFault:
        raise
    except Exception as exc:
        handle_fault(site, exc)
        with _fi.suppressed():
            return fallback()


# ---------------------------------------------------------------------------
# Post-condition checks.  All pre-commit: they validate freshly-built
# kernel output before it is spliced/shared anywhere, so a failed
# check leaves the inputs intact for the python retry.  NaN fails
# every ordered comparison below, so poisoned lanes trip the same
# predicates as unsorted ones.
# ---------------------------------------------------------------------------


def check_visibility(site: str, vis, y1: float, y2: float, eps: float) -> None:
    """Visible parts sorted, disjoint, finite and inside the query
    span; crossings finite.  Scalar — parts lists are short."""
    lo = (y1 if y1 <= y2 else y2) - eps - 1e-9
    hi = (y2 if y2 >= y1 else y1) + eps + 1e-9
    prev = lo
    for p in vis.parts:
        a = p.ya
        b = p.yb
        if not (prev <= a <= b <= hi):
            violation(
                site,
                f"visible part ({a!r}, {b!r}) unsorted or outside"
                f" span ({y1!r}, {y2!r})",
            )
        prev = b
    for w, z in vis.crossings:
        if not (lo <= w <= hi) or z != z:
            violation(site, f"crossing ({w!r}, {z!r}) non-finite or out of span")


def check_merged_lists(site: str, oya, oza, oyb, ozb) -> None:
    """Merged-window piece lists: sorted, non-overlapping, finite
    ``z`` lanes.  Scalar — used by the small-window fused path."""
    prev = float("-inf")
    for j in range(len(oya)):
        a = oya[j]
        b = oyb[j]
        if not (prev <= a <= b) or oza[j] != oza[j] or ozb[j] != ozb[j]:
            violation(
                site,
                f"merged piece {j} ({a!r}..{b!r}) unsorted or"
                " non-finite",
            )
        prev = b


def check_flat(site: str, ya, za, yb, zb) -> None:
    """Vectorized envelope-lane check: ``ya <= yb``, pieces sorted and
    non-overlapping, finite ``z`` lanes.  A handful of array
    reductions — used on the large-window / batched kernel outputs."""
    n = len(ya)
    if n == 0:
        return
    import numpy as np

    ok = bool((ya <= yb).all()) and bool(np.isfinite(za).all()) and bool(
        np.isfinite(zb).all()
    )
    if ok and n > 1:
        ok = bool((yb[:-1] <= ya[1:]).all())
    if not ok:
        violation(site, f"flat output lanes unsorted or non-finite ({n} pieces)")


def check_profile(profile) -> None:
    """Validate a live profile's lanes (the periodic tick).

    Detection-only: a live profile failing validation means corruption
    was already committed by an earlier splice, so this raises
    :class:`KernelFault` in both modes instead of degrading.
    """
    try:
        check_flat("profile", profile.ya, profile.za, profile.yb, profile.zb)
    except InvariantViolation as exc:
        raise KernelFault("profile", exc) from exc
