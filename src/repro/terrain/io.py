"""Terrain serialisation: JSON (lossless) and Wavefront OBJ (interop).

Loading is *hardened*: a malformed file raises
:class:`~repro.errors.TerrainError` carrying the path (and line or
field context) instead of leaking a raw ``KeyError`` / ``ValueError``
/ ``IndexError`` from the parser, and loaded terrains pass the
reliability front door (:func:`repro.reliability.validate_terrain`) —
NaN/Inf elevations and duplicate ``(x, y)`` vertices are rejected at
the boundary with a clear message rather than crashing a kernel later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError, TerrainError
from repro.geometry.primitives import Point3
from repro.reliability import validate_terrain
from repro.terrain.model import Terrain

__all__ = ["save_terrain_json", "load_terrain_json", "save_terrain_obj", "load_terrain_obj"]


def save_terrain_json(terrain: Terrain, path: Union[str, Path]) -> None:
    """Lossless JSON dump (vertices + faces)."""
    data = {
        "format": "repro-terrain",
        "version": 1,
        "vertices": [[v.x, v.y, v.z] for v in terrain.vertices],
        "faces": [list(f) for f in terrain.faces],
    }
    Path(path).write_text(json.dumps(data))


def load_terrain_json(
    path: Union[str, Path], *, nodata: Optional[float] = None
) -> Terrain:
    """Load a terrain from its JSON dump, with context on any defect.

    ``nodata`` names a sentinel elevation (e.g. ``-9999.0`` from a DEM
    export): vertices whose ``z`` equals it — or is ``null`` — are
    *rejected* with a message naming the vertex, not silently turned
    into NaN coordinates that fail deep inside a kernel.
    """
    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise TerrainError(f"{path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TerrainError(
            f"{path}: not valid JSON (line {exc.lineno}, column"
            f" {exc.colno}: {exc.msg})"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != "repro-terrain":
        raise TerrainError(f"{path}: not a repro terrain JSON file")
    for key in ("vertices", "faces"):
        if not isinstance(data.get(key), list):
            raise TerrainError(f"{path}: missing or non-list {key!r} field")
    verts: list[Point3] = []
    for i, v in enumerate(data["vertices"]):
        if nodata is not None and (
            (isinstance(v, (list, tuple)) and len(v) == 3 and v[2] is None)
            or (
                isinstance(v, (list, tuple))
                and len(v) == 3
                and isinstance(v[2], (int, float))
                and float(v[2]) == nodata
            )
        ):
            raise TerrainError(
                f"{path}: vertex {i} is a nodata hole"
                f" (z = {v[2]!r}); fill or crop the hole before loading"
            )
        try:
            x, y, z = v
            verts.append(Point3(float(x), float(y), float(z)))
        except (TypeError, ValueError) as exc:
            raise TerrainError(
                f"{path}: vertex {i} is not an [x, y, z] number triple:"
                f" {v!r}"
            ) from exc
    faces: list[tuple[int, int, int]] = []
    for i, f in enumerate(data["faces"]):
        try:
            a, b, c = f
            faces.append((int(a), int(b), int(c)))
        except (TypeError, ValueError) as exc:
            raise TerrainError(
                f"{path}: face {i} is not an index triple: {f!r}"
            ) from exc
    try:
        terrain = Terrain(verts, faces, validate=True)
    except ReproError as exc:
        raise TerrainError(f"{path}: {exc}") from exc
    # NaN/Inf or duplicate-(x, y) vertices surface as ValidationError
    # with the path already in context.
    return validate_terrain(terrain, context=str(path))


def save_terrain_obj(terrain: Terrain, path: Union[str, Path]) -> None:
    """Wavefront OBJ export (1-based indices, triangles only)."""
    lines = ["# repro terrain"]
    for v in terrain.vertices:
        lines.append(f"v {v.x:.9g} {v.y:.9g} {v.z:.9g}")
    for a, b, c in terrain.faces:
        lines.append(f"f {a + 1} {b + 1} {c + 1}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_terrain_obj(path: Union[str, Path]) -> Terrain:
    """Minimal OBJ import: ``v`` and triangular ``f`` records only.

    Malformed records raise :class:`TerrainError` with ``path:line``
    context; the loaded terrain passes the reliability front door.
    """
    verts: list[Point3] = []
    faces: list[tuple[int, int, int]] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TerrainError(f"{path}: {exc}") from exc
    for lineno, raw in enumerate(text.splitlines(), 1):
        parts = raw.split()
        if not parts or parts[0].startswith("#"):
            continue
        if parts[0] == "v":
            if len(parts) < 4:
                raise TerrainError(f"{path}:{lineno}: malformed vertex")
            try:
                verts.append(
                    Point3(float(parts[1]), float(parts[2]), float(parts[3]))
                )
            except ValueError as exc:
                raise TerrainError(
                    f"{path}:{lineno}: non-numeric vertex coordinate in"
                    f" {raw!r}"
                ) from exc
        elif parts[0] == "f":
            try:
                idx = [int(tok.split("/")[0]) - 1 for tok in parts[1:]]
            except ValueError as exc:
                raise TerrainError(
                    f"{path}:{lineno}: non-integer face index in {raw!r}"
                ) from exc
            if len(idx) != 3:
                raise TerrainError(
                    f"{path}:{lineno}: only triangular faces supported"
                )
            faces.append((idx[0], idx[1], idx[2]))
    try:
        terrain = Terrain(verts, faces, validate=True)
    except ReproError as exc:
        raise TerrainError(f"{path}: {exc}") from exc
    # NaN/Inf or duplicate-(x, y) vertices surface as ValidationError
    # with the path already in context.
    return validate_terrain(terrain, context=str(path))
