"""Terrain serialisation: JSON (lossless) and Wavefront OBJ (interop)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TerrainError
from repro.geometry.primitives import Point3
from repro.terrain.model import Terrain

__all__ = ["save_terrain_json", "load_terrain_json", "save_terrain_obj", "load_terrain_obj"]


def save_terrain_json(terrain: Terrain, path: Union[str, Path]) -> None:
    """Lossless JSON dump (vertices + faces)."""
    data = {
        "format": "repro-terrain",
        "version": 1,
        "vertices": [[v.x, v.y, v.z] for v in terrain.vertices],
        "faces": [list(f) for f in terrain.faces],
    }
    Path(path).write_text(json.dumps(data))


def load_terrain_json(path: Union[str, Path]) -> Terrain:
    data = json.loads(Path(path).read_text())
    if data.get("format") != "repro-terrain":
        raise TerrainError(f"{path}: not a repro terrain JSON file")
    verts = [Point3(*map(float, v)) for v in data["vertices"]]
    faces = [tuple(map(int, f)) for f in data["faces"]]
    return Terrain(verts, faces, validate=True)


def save_terrain_obj(terrain: Terrain, path: Union[str, Path]) -> None:
    """Wavefront OBJ export (1-based indices, triangles only)."""
    lines = ["# repro terrain"]
    for v in terrain.vertices:
        lines.append(f"v {v.x:.9g} {v.y:.9g} {v.z:.9g}")
    for a, b, c in terrain.faces:
        lines.append(f"f {a + 1} {b + 1} {c + 1}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_terrain_obj(path: Union[str, Path]) -> Terrain:
    """Minimal OBJ import: ``v`` and triangular ``f`` records only."""
    verts: list[Point3] = []
    faces: list[tuple[int, int, int]] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        parts = raw.split()
        if not parts or parts[0].startswith("#"):
            continue
        if parts[0] == "v":
            if len(parts) < 4:
                raise TerrainError(f"{path}:{lineno}: malformed vertex")
            verts.append(
                Point3(float(parts[1]), float(parts[2]), float(parts[3]))
            )
        elif parts[0] == "f":
            idx = [int(tok.split("/")[0]) - 1 for tok in parts[1:]]
            if len(idx) != 3:
                raise TerrainError(
                    f"{path}:{lineno}: only triangular faces supported"
                )
            faces.append((idx[0], idx[1], idx[2]))
    return Terrain(verts, faces, validate=True)
