"""Triangulation substrate.

The paper's step 0 triangulates the input subdivision with the
parallel algorithm of Atallah, Cole & Goodrich.  Downstream only the
*result* matters, so the reproduction provides:

* :func:`delaunay_faces` — Delaunay triangulation of a point set; a
  pure-Python Bowyer–Watson implementation (exact in-circle predicate)
  for small inputs and as the reference implementation, with a
  `scipy.spatial.Delaunay` fast path for large inputs (cross-checked
  against the reference in the test-suite);
* :func:`grid_faces` — the regular triangulation of a height grid
  (what DEM-derived terrains use; no Delaunay needed);
* :func:`triangulate_monotone_polygon` — y-monotone polygon
  triangulation, the building block the ACG construction shares with
  classic profile handling (profiles are y-monotone).
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.errors import GeometryError
from repro.geometry.predicates import incircle_exact, orient2d_adaptive
from repro.geometry.primitives import Point2

__all__ = [
    "delaunay_faces",
    "bowyer_watson",
    "grid_faces",
    "triangulate_monotone_polygon",
]


def delaunay_faces(
    points: Sequence[Point2],
    *,
    method: Literal["auto", "pure", "scipy"] = "auto",
) -> list[tuple[int, int, int]]:
    """Delaunay triangles of ``points`` as index triples.

    ``method='auto'`` uses SciPy above 300 points when available and
    the pure-Python reference otherwise.
    """
    n = len(points)
    if n < 3:
        raise GeometryError(f"need at least 3 points, got {n}")
    if method == "pure":
        return bowyer_watson(points)
    if method == "scipy":
        return _scipy_delaunay(points)
    if n > 300:
        try:
            return _scipy_delaunay(points)
        except ImportError:  # pragma: no cover - scipy is installed
            pass
    return bowyer_watson(points)


def _scipy_delaunay(points: Sequence[Point2]) -> list[tuple[int, int, int]]:
    import numpy as np
    from scipy.spatial import Delaunay  # type: ignore[import-untyped]

    arr = np.array([(p.x, p.y) for p in points], dtype=np.float64)
    tri = Delaunay(arr)
    return [tuple(sorted(map(int, simplex))) for simplex in tri.simplices]


def bowyer_watson(points: Sequence[Point2]) -> list[tuple[int, int, int]]:
    """Randomised-order Bowyer–Watson with exact predicates.

    O(n^2) worst case (linear walk per insertion over bad triangles);
    intended for n up to a few thousand.  Collinear full inputs raise
    :class:`GeometryError`.
    """
    n = len(points)
    if n < 3:
        raise GeometryError("need at least 3 points")
    # Super-triangle comfortably containing everything.
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    cx = (min(xs) + max(xs)) / 2
    cy = (min(ys) + max(ys)) / 2
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
    big = 50.0 * span
    sup = [
        Point2(cx - 3 * big, cy - big),
        Point2(cx + 3 * big, cy - big),
        Point2(cx, cy + 3 * big),
    ]
    pts: list[Point2] = list(points) + sup
    s0, s1, s2 = n, n + 1, n + 2
    triangles: set[tuple[int, int, int]] = {tuple(sorted((s0, s1, s2)))}  # type: ignore[arg-type]

    def circum_contains(tri: tuple[int, int, int], pi: int) -> bool:
        a, b, c = (pts[tri[0]], pts[tri[1]], pts[tri[2]])
        return incircle_exact(a, b, c, pts[pi]) > 0

    for pi in range(n):
        bad = [t for t in triangles if circum_contains(t, pi)]
        if not bad:
            # Point on/outside current hull of inserted points — with a
            # super-triangle this means exactly on a circumcircle;
            # treat the nearest triangle as bad to keep progress.
            raise GeometryError(
                f"degenerate Delaunay insertion at point {pi}"
            )
        # Boundary of the cavity: edges belonging to exactly one bad
        # triangle.
        edge_count: dict[tuple[int, int], int] = {}
        for t in bad:
            for e in _tri_edges(t):
                edge_count[e] = edge_count.get(e, 0) + 1
        for t in bad:
            triangles.discard(t)
        for e, cnt in edge_count.items():
            if cnt == 1:
                tri = tuple(sorted((e[0], e[1], pi)))
                triangles.add(tri)  # type: ignore[arg-type]
    # Drop triangles touching the super-triangle.
    return sorted(
        t
        for t in triangles
        if t[0] < n and t[1] < n and t[2] < n
    )


def _tri_edges(
    t: tuple[int, int, int]
) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
    a, b, c = t
    return (
        (a, b) if a < b else (b, a),
        (b, c) if b < c else (c, b),
        (a, c) if a < c else (c, a),
    )


def grid_faces(rows: int, cols: int) -> list[tuple[int, int, int]]:
    """Regular triangulation of a ``rows × cols`` vertex grid.

    Vertex ``(r, c)`` has index ``r*cols + c``; each cell is split
    along the ``(r,c)–(r+1,c+1)`` diagonal, alternating per cell parity
    to avoid global anisotropy.
    """
    if rows < 2 or cols < 2:
        raise GeometryError("grid must be at least 2x2")
    faces: list[tuple[int, int, int]] = []
    for r in range(rows - 1):
        for c in range(cols - 1):
            v00 = r * cols + c
            v01 = v00 + 1
            v10 = v00 + cols
            v11 = v10 + 1
            if (r + c) % 2 == 0:
                faces.append(tuple(sorted((v00, v01, v11))))  # type: ignore[arg-type]
                faces.append(tuple(sorted((v00, v11, v10))))  # type: ignore[arg-type]
            else:
                faces.append(tuple(sorted((v00, v01, v10))))  # type: ignore[arg-type]
                faces.append(tuple(sorted((v01, v11, v10))))  # type: ignore[arg-type]
    return faces


def triangulate_monotone_polygon(
    chain: Sequence[Point2],
) -> list[tuple[int, int, int]]:
    """Fan/stack triangulation of an x-monotone polygonal chain closed
    by its baseline — the classic linear-time monotone triangulation,
    restricted to the single-chain case profiles produce.

    ``chain`` must be strictly increasing in ``x``.  Returns triangles
    as index triples into ``chain``.
    """
    m = len(chain)
    if m < 3:
        return []
    for i in range(1, m):
        if chain[i].x <= chain[i - 1].x:
            raise GeometryError("chain is not strictly x-monotone")
    triangles: list[tuple[int, int, int]] = []
    stack = [0, 1]
    for i in range(2, m):
        while len(stack) >= 2 and (
            orient2d_adaptive(
                chain[stack[-2]], chain[stack[-1]], chain[i]
            )
            < 0
        ):
            triangles.append((stack[-2], stack[-1], i))
            stack.pop()
        stack.append(i)
    # The surviving stack is a left-turning chain, so the region it
    # bounds against the baseline is convex: fan it from the left end.
    for j in range(1, len(stack) - 1):
        triangles.append((stack[0], stack[j], stack[j + 1]))
    return triangles
