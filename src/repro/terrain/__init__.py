"""Terrain substrate: TIN model, generators, triangulation, DEM, I/O."""

from repro.terrain.dem import dem_to_terrain, parse_esri_ascii, write_esri_ascii
from repro.terrain.generators import (
    GENERATORS,
    fractal_terrain,
    generate_terrain,
    grid_terrain_from_heights,
    plateau_terrain,
    random_terrain,
    ridge_terrain,
    shielded_basin_terrain,
    valley_terrain,
)
from repro.terrain.io import (
    load_terrain_json,
    load_terrain_obj,
    save_terrain_json,
    save_terrain_obj,
)
from repro.terrain.model import Terrain
from repro.terrain.perspective import (
    Viewpoint,
    perspective_image_point,
    perspective_transform,
)
from repro.terrain.triangulate import (
    bowyer_watson,
    delaunay_faces,
    grid_faces,
    triangulate_monotone_polygon,
)

__all__ = [
    "GENERATORS",
    "Terrain",
    "Viewpoint",
    "bowyer_watson",
    "perspective_image_point",
    "perspective_transform",
    "delaunay_faces",
    "dem_to_terrain",
    "fractal_terrain",
    "generate_terrain",
    "grid_faces",
    "grid_terrain_from_heights",
    "load_terrain_json",
    "load_terrain_obj",
    "parse_esri_ascii",
    "plateau_terrain",
    "random_terrain",
    "ridge_terrain",
    "save_terrain_json",
    "save_terrain_obj",
    "shielded_basin_terrain",
    "triangulate_monotone_polygon",
    "valley_terrain",
    "write_esri_ascii",
]
