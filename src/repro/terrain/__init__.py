"""Terrain substrate: TIN model, generators, triangulation, DEM, I/O.

The synthetic generators and the DEM grid pipeline are array-based and
need NumPy; the TIN model, file I/O, perspective and triangulation are
pure Python.  Without NumPy the package still imports — the missing
names are absent and :data:`GENERATORS` is empty, so terrain *files*
remain fully usable.
"""

from repro.terrain.io import (
    load_terrain_json,
    load_terrain_obj,
    save_terrain_json,
    save_terrain_obj,
)
from repro.terrain.model import Terrain
from repro.terrain.perspective import (
    Viewpoint,
    perspective_image_point,
    perspective_transform,
)
from repro.terrain.triangulate import (
    bowyer_watson,
    delaunay_faces,
    grid_faces,
    triangulate_monotone_polygon,
)

__all__ = [
    "GENERATORS",
    "Terrain",
    "Viewpoint",
    "bowyer_watson",
    "perspective_image_point",
    "perspective_transform",
    "delaunay_faces",
    "generate_terrain",
    "grid_faces",
    "load_terrain_json",
    "load_terrain_obj",
    "save_terrain_json",
    "save_terrain_obj",
    "triangulate_monotone_polygon",
]

try:  # generators + DEM grids are array-based; optional without numpy
    from repro.terrain.dem import (  # noqa: F401
        dem_to_terrain,
        parse_esri_ascii,
        write_esri_ascii,
    )
    from repro.terrain.generators import (  # noqa: F401
        GENERATORS,
        fractal_terrain,
        generate_terrain,
        grid_terrain_from_heights,
        plateau_terrain,
        random_terrain,
        ridge_terrain,
        shielded_basin_terrain,
        valley_terrain,
    )

    __all__ += [
        "dem_to_terrain",
        "fractal_terrain",
        "grid_terrain_from_heights",
        "parse_esri_ascii",
        "plateau_terrain",
        "random_terrain",
        "ridge_terrain",
        "shielded_basin_terrain",
        "valley_terrain",
        "write_esri_ascii",
    ]
except ImportError:  # pragma: no cover - numpy ships in the toolchain
    GENERATORS: dict = {}

    def generate_terrain(kind: str, **kwargs):
        """Stub: synthetic terrain generation requires NumPy."""
        raise ImportError(
            "terrain generators require numpy; install the 'numpy'"
            " extra or load a terrain file instead"
        )
