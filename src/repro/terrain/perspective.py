"""Perspective viewing support.

The paper (§2): "We are viewing the scene in a direction perpendicular
to the projection plane, however the algorithm works for perspective
projection as well."  The reason it works is that a perspective view
from a finite viewpoint is an *orthographic view of a projectively
transformed scene*: mapping every vertex through

    y' = (y - vy) / (vx - x)
    z' = (z - vz) / (vx - x)
    x' = 1 / (vx - x)

(viewpoint ``(vx, vy, vz)``, looking along ``-x``) sends rays through
the viewpoint to rays parallel to the x-axis, preserves straightness
of edges (it is a projective map), and preserves the front-to-back
order along each ray (``1/(vx - x)`` is increasing in ``x`` for
``x < vx``, so nearer points keep larger ``x'``).
Hence running the standard pipeline on the transformed terrain
computes exactly the perspective visibility, with image coordinates
``(y', z')`` being the normalised picture-plane coordinates.

Requirements: every vertex strictly in front of the viewpoint
(``x < vx``) — checked, since the map degenerates at the viewpoint
plane.  Note the transformed scene is still a terrain in the algorithm
sense: edges project without crossings onto the new xy-plane because
projective maps preserve incidence.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import TerrainError
from repro.geometry.primitives import Point3
from repro.terrain.model import Terrain

__all__ = ["Viewpoint", "perspective_transform", "perspective_image_point"]


class Viewpoint(NamedTuple):
    """A finite camera position, looking along ``-x``."""

    x: float
    y: float
    z: float

    @property
    def position(self) -> Point3:
        return Point3(self.x, self.y, self.z)


def perspective_image_point(
    v: Point3, view: Viewpoint
) -> tuple[float, float]:
    """Picture-plane coordinates ``(y', z')`` of a scene point.

    Raises :class:`TerrainError` for points not strictly in front of
    the camera.
    """
    depth = view.x - v.x
    if depth <= 0:
        raise TerrainError(
            f"point {v} is behind (or at) the viewpoint plane x={view.x}"
        )
    return ((v.y - view.y) / depth, (v.z - view.z) / depth)


def perspective_transform(
    terrain: Terrain, view: Viewpoint, *, min_depth: float = 1e-6
) -> Terrain:
    """The projectively transformed terrain whose orthographic
    visibility equals the perspective visibility of ``terrain`` from
    ``view`` (see module docstring).

    ``min_depth`` guards against vertices arbitrarily close to the
    viewpoint plane (the map blows up there).
    """
    verts: list[Point3] = []
    for v in terrain.vertices:
        depth = view.x - v.x
        if depth < min_depth:
            raise TerrainError(
                f"vertex {v} too close to the viewpoint plane"
                f" (depth {depth} < {min_depth})"
            )
        verts.append(
            Point3(
                1.0 / depth,
                (v.y - view.y) / depth,
                (v.z - view.z) / depth,
            )
        )
    # The transformed vertex set can collapse distinct xy-projections
    # only if two vertices lie on one ray through the viewpoint with
    # equal y' — in that case the scene genuinely self-occludes at a
    # point and the strict terrain check rightfully fails.
    return Terrain(verts, terrain.faces, validate=True)
