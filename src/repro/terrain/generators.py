"""Synthetic terrain workload generators.

The paper has no testbed; output-sensitivity experiments need terrain
families whose input size ``n`` and output size ``k`` can be swept
independently (DESIGN.md §2).  Every generator takes a ``seed`` and is
fully deterministic.

Families
--------
``fractal``
    Diamond–square heightfield — the classic "realistic" terrain with
    mid-range occlusion; the workhorse for scaling experiments E1/E2.
``ridge``
    Parallel ridges perpendicular to the view direction.  Ridge
    heights *decrease* away from the viewer, so nearly everything is
    occluded: small ``k``.
``valley``
    Ridges *increasing* away from the viewer (an amphitheatre): nearly
    everything visible, ``k = Θ(n)`` and crossings abound.
``shielded_basin``
    A tall front wall hiding rough detail behind it; the wall height
    factor ``occlusion`` sweeps ``k`` at fixed ``n`` (experiment E3).
``plateau``
    Large flat steps — many collinear/degenerate contacts, a stress
    test for tie handling.
``random``
    Random xy sites (Delaunay-triangulated) with smooth random
    heights (sum of Gaussian bumps).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import TerrainError
from repro.geometry.primitives import Point2, Point3
from repro.terrain.model import Terrain
from repro.terrain.triangulate import delaunay_faces, grid_faces

__all__ = [
    "generate_terrain",
    "fractal_terrain",
    "ridge_terrain",
    "valley_terrain",
    "shielded_basin_terrain",
    "plateau_terrain",
    "random_terrain",
    "grid_terrain_from_heights",
    "GENERATORS",
]


def _jitter_grid_xy(
    rows: int, cols: int, spacing: float, rng: np.random.Generator
) -> np.ndarray:
    """Grid xy-coordinates with small deterministic jitter.

    The jitter (±20% of spacing) kills the exact collinearity /
    coincident-y degeneracies a perfect lattice would feed the sweep
    and envelope code, while preserving the triangulation's planarity
    (jitter is well below half the spacing).
    """
    gx, gy = np.meshgrid(
        np.arange(cols, dtype=np.float64),
        np.arange(rows, dtype=np.float64),
    )
    jx = rng.uniform(-0.2, 0.2, size=gx.shape)
    jy = rng.uniform(-0.2, 0.2, size=gy.shape)
    xy = np.stack(
        [(gx + jx) * spacing, (gy + jy) * spacing], axis=-1
    )
    return xy


def grid_terrain_from_heights(
    heights: np.ndarray,
    *,
    spacing: float = 1.0,
    jitter_seed: int | None = 0,
) -> Terrain:
    """Terrain from a 2-D height array over a (jittered) regular grid.

    ``heights[r, c]`` becomes the z of grid vertex ``(r, c)``; x runs
    along rows (the view direction), y along columns.  Pass
    ``jitter_seed=None`` for an exact lattice (degenerate on purpose).
    """
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2 or h.shape[0] < 2 or h.shape[1] < 2:
        raise TerrainError(f"heights must be at least 2x2, got {h.shape}")
    rows, cols = h.shape
    if jitter_seed is None:
        gx, gy = np.meshgrid(
            np.arange(cols, dtype=np.float64),
            np.arange(rows, dtype=np.float64),
        )
        xy = np.stack([gx * spacing, gy * spacing], axis=-1)
    else:
        rng = np.random.default_rng(jitter_seed)
        xy = _jitter_grid_xy(rows, cols, spacing, rng)
    verts = [
        Point3(float(xy[r, c, 1]), float(xy[r, c, 0]), float(h[r, c]))
        for r in range(rows)
        for c in range(cols)
    ]
    # Note the swap above: grid rows advance along +x (toward the
    # viewer at +inf), columns along +y (across the image).
    return Terrain(verts, grid_faces(rows, cols), validate=True)


def _diamond_square(size: int, roughness: float, rng: np.random.Generator) -> np.ndarray:
    """Classic diamond–square fractal heightfield of ``size x size``
    (``size`` must be ``2**k + 1``)."""
    if size < 3 or (size - 1) & (size - 2) != 0:
        raise TerrainError(f"diamond-square size must be 2**k+1, got {size}")
    h = np.zeros((size, size), dtype=np.float64)
    h[0, 0], h[0, -1], h[-1, 0], h[-1, -1] = rng.uniform(0, 1, 4)
    step = size - 1
    scale = 1.0
    while step > 1:
        half = step // 2
        # Diamond step.
        for r in range(half, size, step):
            for c in range(half, size, step):
                avg = (
                    h[r - half, c - half]
                    + h[r - half, c + half]
                    + h[r + half, c - half]
                    + h[r + half, c + half]
                ) / 4.0
                h[r, c] = avg + rng.uniform(-scale, scale)
        # Square step.
        for r in range(0, size, half):
            start = half if (r // half) % 2 == 0 else 0
            for c in range(start, size, step):
                total = 0.0
                cnt = 0
                for dr, dc in ((-half, 0), (half, 0), (0, -half), (0, half)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < size and 0 <= cc < size:
                        total += h[rr, cc]
                        cnt += 1
                h[r, c] = total / cnt + rng.uniform(-scale, scale)
        step = half
        scale *= roughness
    return h


def fractal_terrain(
    *, size: int = 33, roughness: float = 0.55, z_scale: float = 6.0, seed: int = 0
) -> Terrain:
    """Diamond–square fractal terrain (``size`` must be ``2**k + 1``)."""
    rng = np.random.default_rng(seed)
    h = _diamond_square(size, roughness, rng)
    h = (h - h.min()) * z_scale
    return grid_terrain_from_heights(h, jitter_seed=seed + 1)


def ridge_terrain(
    *, rows: int = 24, cols: int = 24, n_ridges: int = 5, seed: int = 0
) -> Terrain:
    """Parallel ridges with heights decreasing away from the viewer.

    Rows advance toward the viewer, so the first (nearest) ridge is
    the tallest and hides most of what lies behind: small ``k``.
    """
    rng = np.random.default_rng(seed)
    r_idx = np.arange(rows, dtype=np.float64)[:, None]
    phase = 2.0 * math.pi * n_ridges * r_idx / rows
    # Decay with distance from the viewer (viewer side is high r).
    decay = (r_idx + 1) / rows
    h = (1.2 + np.sin(phase)) * decay * 8.0
    h = h + 0.15 * rng.standard_normal((rows, 1))
    h = np.broadcast_to(h, (rows, cols)).copy()
    h += 0.05 * rng.standard_normal((rows, cols))
    return grid_terrain_from_heights(h, jitter_seed=seed + 1)


def valley_terrain(
    *, rows: int = 24, cols: int = 24, n_ridges: int = 5, seed: int = 0
) -> Terrain:
    """Amphitheatre: ridges rising away from the viewer, so successive
    ridges peek over the nearer ones — nearly everything visible."""
    rng = np.random.default_rng(seed)
    r_idx = np.arange(rows, dtype=np.float64)[:, None]
    phase = 2.0 * math.pi * n_ridges * r_idx / rows
    rise = (rows - r_idx) / rows  # far side is high
    h = (1.2 + np.sin(phase)) * rise * 8.0
    h = np.broadcast_to(h, (rows, cols)).copy()
    h += 0.05 * rng.standard_normal((rows, cols))
    return grid_terrain_from_heights(h, jitter_seed=seed + 1)


def shielded_basin_terrain(
    *,
    rows: int = 24,
    cols: int = 24,
    occlusion: float = 1.0,
    detail: float = 3.0,
    seed: int = 0,
) -> Terrain:
    """A front wall shielding rough detail behind it.

    ``occlusion`` in ``[0, ~2]`` scales the wall height: at 0 the basin
    detail is fully exposed (large ``k``), around 1.5+ the wall hides
    almost everything (``k`` near the wall size alone).  Experiment E3
    sweeps this knob at fixed ``n``.
    """
    rng = np.random.default_rng(seed)
    h = detail * rng.random((rows, cols))
    # Clamp so degenerate 1-row grids reach grid_terrain_from_heights
    # and fail its clean "at least 2x2" TerrainError instead of a raw
    # broadcast ValueError here.
    wall_rows = min(rows, max(2, rows // 8))
    wall_height = occlusion * (detail + 4.0)
    # Viewer side is high r: the wall occupies the nearest rows.
    h[-wall_rows:, :] = wall_height + 0.1 * rng.random((wall_rows, cols))
    return grid_terrain_from_heights(h, jitter_seed=seed + 1)


def plateau_terrain(
    *, rows: int = 24, cols: int = 24, steps: int = 4, seed: int = 0
) -> Terrain:
    """Flat terraces — heavy tie/collinearity stress for the kernels."""
    rng = np.random.default_rng(seed)
    r_idx = np.arange(rows)[:, None]
    level = (r_idx * steps // rows).astype(np.float64)
    h = np.broadcast_to(level * 3.0, (rows, cols)).copy()
    h += 0.01 * rng.standard_normal((rows, cols))
    return grid_terrain_from_heights(h, jitter_seed=seed + 1)


def random_terrain(
    *, n_points: int = 200, n_bumps: int = 12, seed: int = 0
) -> Terrain:
    """Random sites, Delaunay faces, smooth Gaussian-bump heights."""
    if n_points < 3:
        raise TerrainError("random terrain needs at least 3 points")
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0.0, 100.0, size=(n_points, 2))
    centers = rng.uniform(0.0, 100.0, size=(n_bumps, 2))
    amps = rng.uniform(2.0, 10.0, size=n_bumps)
    widths = rng.uniform(8.0, 25.0, size=n_bumps)
    d2 = ((xy[:, None, :] - centers[None, :, :]) ** 2).sum(axis=-1)
    z = (amps[None, :] * np.exp(-d2 / (2 * widths[None, :] ** 2))).sum(axis=1)
    pts2 = [Point2(float(x), float(y)) for x, y in xy]
    faces = delaunay_faces(pts2)
    verts = [
        Point3(float(x), float(y), float(h))
        for (x, y), h in zip(xy, z)
    ]
    return Terrain(verts, faces, validate=True)


GENERATORS: dict[str, Callable[..., Terrain]] = {
    "fractal": fractal_terrain,
    "ridge": ridge_terrain,
    "valley": valley_terrain,
    "shielded_basin": shielded_basin_terrain,
    "plateau": plateau_terrain,
    "random": random_terrain,
}


def generate_terrain(kind: str, **params: object) -> Terrain:
    """Dispatch to a generator family by name (see module docstring)."""
    try:
        gen = GENERATORS[kind]
    except KeyError:
        raise TerrainError(
            f"unknown terrain kind {kind!r};"
            f" available: {sorted(GENERATORS)}"
        ) from None
    return gen(**params)  # type: ignore[arg-type]
