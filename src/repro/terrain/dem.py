"""Digital-elevation-model (DEM) import.

Geographic terrain data commonly arrives as a regular height grid
(e.g. ESRI ASCII grid).  This module parses that format and converts
grids to TINs via :func:`grid_terrain_from_heights` — the substrate
for the GIS viewshed example.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import TerrainError
from repro.terrain.generators import grid_terrain_from_heights
from repro.terrain.model import Terrain

__all__ = ["parse_esri_ascii", "dem_to_terrain", "write_esri_ascii"]

_HEADER_KEYS = {"ncols", "nrows", "xllcorner", "yllcorner", "cellsize"}


def parse_esri_ascii(source: Union[str, Path, TextIO]) -> tuple[np.ndarray, float]:
    """Parse an ESRI ASCII grid; returns ``(heights, cellsize)``.

    ``heights[0]`` is the southernmost row (the file stores north
    first; we flip so row index increases northward, matching the
    terrain convention that rows advance along +x).  ``NODATA`` cells
    are filled with the grid minimum (terrains must be total
    functions).
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
        stream: TextIO = io.StringIO(text)
    else:
        stream = source
    header: dict[str, float] = {}
    rows: list[list[float]] = []
    nodata = None
    for line in stream:
        parts = line.split()
        if not parts:
            continue
        key = parts[0].lower()
        if key in _HEADER_KEYS:
            header[key] = float(parts[1])
        elif key == "nodata_value":
            nodata = float(parts[1])
        else:
            rows.append([float(tok) for tok in parts])
    for req in ("ncols", "nrows", "cellsize"):
        if req not in header:
            raise TerrainError(f"ESRI ASCII grid missing header {req!r}")
    ncols, nrows = int(header["ncols"]), int(header["nrows"])
    flat = [v for row in rows for v in row]
    if len(flat) != ncols * nrows:
        raise TerrainError(
            f"expected {ncols * nrows} height values, got {len(flat)}"
        )
    h = np.array(flat, dtype=np.float64).reshape(nrows, ncols)
    h = np.flipud(h)
    if nodata is not None:
        mask = h == nodata
        if mask.all():
            raise TerrainError("grid is entirely NODATA")
        h[mask] = h[~mask].min()
    return h, float(header["cellsize"])


def dem_to_terrain(
    source: Union[str, Path, TextIO],
    *,
    z_exaggeration: float = 1.0,
    jitter_seed: int | None = 0,
) -> Terrain:
    """Load an ESRI ASCII grid as a terrain TIN."""
    h, cellsize = parse_esri_ascii(source)
    return grid_terrain_from_heights(
        h * z_exaggeration, spacing=cellsize, jitter_seed=jitter_seed
    )


def write_esri_ascii(
    heights: np.ndarray, path: Union[str, Path], *, cellsize: float = 1.0
) -> None:
    """Write a height grid in ESRI ASCII format (row 0 = south)."""
    h = np.asarray(heights, dtype=np.float64)
    if h.ndim != 2:
        raise TerrainError("heights must be 2-D")
    nrows, ncols = h.shape
    lines = [
        f"ncols {ncols}",
        f"nrows {nrows}",
        "xllcorner 0.0",
        "yllcorner 0.0",
        f"cellsize {cellsize}",
    ]
    for row in np.flipud(h):
        lines.append(" ".join(f"{v:.6g}" for v in row))
    Path(path).write_text("\n".join(lines) + "\n")
