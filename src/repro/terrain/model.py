"""Polyhedral-terrain model (triangulated irregular network).

A terrain is a piecewise-linear surface meeting every vertical line at
exactly one point: ``z = f(x, y)``.  We store it as the paper does —
"a graph G whose vertices are 3-tuples (x, y, z) ... and whose edges
correspond to the segments of the polyhedral surface" — concretely a
vertex array plus triangle list (a TIN).

The viewer is at ``x = +inf`` looking along ``-x``; the image plane is
the zy-plane.  :meth:`Terrain.rotated` lets callers view a scene from
any horizontal direction by rotating the terrain instead of the
camera, which keeps the algorithm's coordinate conventions fixed.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import TerrainError
from repro.geometry.predicates import segments_intersect_exact
from repro.geometry.primitives import Point2, Point3
from repro.geometry.segments import ImageSegment, MapSegment

__all__ = ["Terrain"]


class Terrain:
    """An immutable triangulated terrain.

    Parameters
    ----------
    vertices:
        Surface points; their xy-projections must be pairwise distinct
        (checked — duplicate xy with different z would violate
        ``z = f(x, y)``).
    faces:
        Triangles as vertex index triples.  Edges are derived.
    validate:
        When true (default) performs the cheap invariant checks; the
        expensive planarity check is separate
        (:meth:`check_planarity`) because it is quadratic.
    """

    __slots__ = ("vertices", "faces", "_edges")

    def __init__(
        self,
        vertices: Sequence[Point3],
        faces: Sequence[tuple[int, int, int]],
        *,
        validate: bool = True,
    ):
        self.vertices: list[Point3] = [Point3(*v) for v in vertices]
        self.faces: list[tuple[int, int, int]] = [
            tuple(sorted(f)) for f in faces  # type: ignore[misc]
        ]
        if validate:
            self._validate()
        self._edges: Optional[list[tuple[int, int]]] = None

    # -- invariants ----------------------------------------------------

    def _validate(self) -> None:
        n = len(self.vertices)
        seen_xy: dict[tuple[float, float], int] = {}
        for i, v in enumerate(self.vertices):
            key = (v.x, v.y)
            if key in seen_xy:
                raise TerrainError(
                    f"vertices {seen_xy[key]} and {i} share xy {key}:"
                    " not a function z = f(x, y)"
                )
            seen_xy[key] = i
        for f in self.faces:
            a, b, c = f
            if not (0 <= a < n and 0 <= b < n and 0 <= c < n):
                raise TerrainError(f"face {f} references missing vertex")
            if a == b or b == c or a == c:
                raise TerrainError(f"degenerate face {f}")

    def check_planarity(self) -> None:
        """Exact check that no two edge xy-projections properly cross.

        Quadratic — intended for tests and small inputs.  Raises
        :class:`TerrainError` on the first crossing pair.
        """
        edges = self.edges
        segs = [
            (
                self.vertices[i].project_xy(),
                self.vertices[j].project_xy(),
                (i, j),
            )
            for i, j in edges
        ]
        for a in range(len(segs)):
            pa, qa, ea = segs[a]
            for b in range(a + 1, len(segs)):
                pb, qb, eb = segs[b]
                if set(ea) & set(eb):
                    continue  # sharing a vertex is fine
                if segments_intersect_exact(
                    pa, qa, pb, qb, proper_only=True
                ):
                    raise TerrainError(
                        f"edges {ea} and {eb} cross in xy-projection"
                    )

    # -- derived structure ----------------------------------------------

    @property
    def edges(self) -> list[tuple[int, int]]:
        """Sorted unique undirected edges ``(i, j)`` with ``i < j``."""
        if self._edges is None:
            seen: set[tuple[int, int]] = set()
            for a, b, c in self.faces:
                seen.add((a, b) if a < b else (b, a))
                seen.add((b, c) if b < c else (c, b))
                seen.add((a, c) if a < c else (c, a))
            self._edges = sorted(seen)
        return self._edges

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_edges(self) -> int:
        """The paper's input size ``n``."""
        return len(self.edges)

    @property
    def n_faces(self) -> int:
        return len(self.faces)

    # -- projections -----------------------------------------------------

    def edge_endpoints(self, edge_index: int) -> tuple[Point3, Point3]:
        i, j = self.edges[edge_index]
        return self.vertices[i], self.vertices[j]

    def map_segment(self, edge_index: int) -> MapSegment:
        """xy-projection of an edge (for front-to-back ordering)."""
        a, b = self.edge_endpoints(edge_index)
        return MapSegment.make(a.project_xy(), b.project_xy(), edge_index)

    def image_segment(self, edge_index: int) -> ImageSegment:
        """zy-projection of an edge (for profiles / visibility)."""
        a, b = self.edge_endpoints(edge_index)
        return ImageSegment.make(a.project_zy(), b.project_zy(), edge_index)

    def map_segments(self) -> list[MapSegment]:
        return [self.map_segment(e) for e in range(self.n_edges)]

    def image_segments(self) -> list[ImageSegment]:
        return [self.image_segment(e) for e in range(self.n_edges)]

    # -- transforms -------------------------------------------------------

    def rotated(self, azimuth_degrees: float) -> "Terrain":
        """The terrain rotated about the z-axis.

        Viewing the original scene from horizontal direction ``theta``
        equals viewing ``rotated(-theta)`` from the canonical ``+x``.
        """
        t = math.radians(azimuth_degrees)
        c, s = math.cos(t), math.sin(t)
        verts = [
            Point3(c * v.x - s * v.y, s * v.x + c * v.y, v.z)
            for v in self.vertices
        ]
        return Terrain(verts, self.faces, validate=False)

    def scaled(self, *, xy: float = 1.0, z: float = 1.0) -> "Terrain":
        """Anisotropic scaling (z exaggeration is common for DEMs)."""
        if xy <= 0 or z <= 0:
            raise TerrainError("scale factors must be positive")
        verts = [
            Point3(v.x * xy, v.y * xy, v.z * z) for v in self.vertices
        ]
        return Terrain(verts, self.faces, validate=False)

    def translated(self, dx: float, dy: float, dz: float) -> "Terrain":
        verts = [
            Point3(v.x + dx, v.y + dy, v.z + dz) for v in self.vertices
        ]
        return Terrain(verts, self.faces, validate=False)

    # -- queries ----------------------------------------------------------

    def height_range(self) -> tuple[float, float]:
        zs = [v.z for v in self.vertices]
        if not zs:
            raise TerrainError("empty terrain")
        return (min(zs), max(zs))

    def xy_bounds(self) -> tuple[float, float, float, float]:
        if not self.vertices:
            raise TerrainError("empty terrain")
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    def surface_height_at(self, x: float, y: float) -> Optional[float]:
        """Height of the surface at ``(x, y)``: barycentric lookup over
        the faces (linear scan — a convenience query, not a hot path).
        Returns ``None`` outside the triangulation."""
        p = Point2(x, y)
        for a, b, c in self.faces:
            va, vb, vc = (
                self.vertices[a],
                self.vertices[b],
                self.vertices[c],
            )
            h = _barycentric_height(p, va, vb, vc)
            if h is not None:
                return h
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Terrain({self.n_vertices} vertices, {self.n_edges} edges,"
            f" {self.n_faces} faces)"
        )


def _barycentric_height(
    p: Point2, a: Point3, b: Point3, c: Point3
) -> Optional[float]:
    """Height of triangle ``abc`` above ``p``, or ``None`` outside."""
    ax, ay = a.x, a.y
    v0 = (b.x - ax, b.y - ay)
    v1 = (c.x - ax, c.y - ay)
    v2 = (p.x - ax, p.y - ay)
    den = v0[0] * v1[1] - v1[0] * v0[1]
    if den == 0:
        return None
    u = (v2[0] * v1[1] - v1[0] * v2[1]) / den
    v = (v0[0] * v2[1] - v2[0] * v0[1]) / den
    if u < -1e-12 or v < -1e-12 or u + v > 1 + 1e-12:
        return None
    return a.z + u * (b.z - a.z) + v * (c.z - a.z)
