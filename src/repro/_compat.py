"""Deprecation shims: warn-once plumbing for superseded call paths.

The API redesign (``docs/API.md``) front-doors every run through
:class:`repro.config.HsrConfig`; the older bespoke parameters keep
working through thin shims that emit **one** :class:`DeprecationWarning`
per process per shim (not per call — a service issuing thousands of
queries through a legacy path should log the migration hint once, not
flood stderr).

Importing :mod:`repro` itself never warns:
``python -W error::DeprecationWarning -c "import repro"`` stays clean,
and the warnings fire only when a deprecated *usage* actually executes.
``tests/test_package_api.py`` pins both properties.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_deprecation_registry"]

#: Shim keys that have already warned in this process.
_seen: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is
    seen in this process; later calls are silent."""
    if key in _seen:
        return
    _seen.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_registry() -> None:
    """Forget which shims have warned (test isolation helper)."""
    _seen.clear()
