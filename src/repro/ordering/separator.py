"""Separator tree over the front-to-back edge order.

The paper's separator tree (via Tamassia–Vitter monotone-chain
decomposition) serves two roles: it linearises the in-front-of order
and provides the balanced binary skeleton on which the Profile
Computation Tree (PCT) is built.  The linearisation here comes from
:mod:`repro.ordering.sweep`; this module supplies the skeleton — a
balanced binary tree whose leaves are the ordered edges and whose
internal nodes span contiguous order ranges.

The same class doubles as the PCT shape: Phase 1 attaches an
intermediate profile to every node, Phase 2 walks it layer by layer
(see :mod:`repro.hsr.pct`).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import OrderingError

__all__ = ["SeparatorNode", "SeparatorTree"]


class SeparatorNode:
    """One node of the separator tree: the edge-order range
    ``[lo, hi)`` of the leaves below it."""

    __slots__ = ("lo", "hi", "left", "right", "parent", "depth", "index")

    def __init__(self, lo: int, hi: int, depth: int):
        self.lo = lo
        self.hi = hi
        self.left: Optional["SeparatorNode"] = None
        self.right: Optional["SeparatorNode"] = None
        self.parent: Optional["SeparatorNode"] = None
        self.depth = depth
        self.index = -1  # BFS numbering, assigned by the tree

    @property
    def is_leaf(self) -> bool:
        return self.hi - self.lo <= 1

    @property
    def span(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeparatorNode([{self.lo}, {self.hi}), depth={self.depth})"


class SeparatorTree:
    """Balanced binary tree over an ordered edge sequence.

    Parameters
    ----------
    order:
        Front-to-back edge indices (leaf ``i`` is ``order[i]``).
    """

    def __init__(self, order: Sequence[int]):
        if not order:
            raise OrderingError("separator tree over empty edge order")
        self.order: list[int] = list(order)
        self.root = self._build(0, len(order), 0)
        self._levels: list[list[SeparatorNode]] = []
        self._assign_levels()

    def _build(self, lo: int, hi: int, depth: int) -> SeparatorNode:
        node = SeparatorNode(lo, hi, depth)
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._build(lo, mid, depth + 1)
            node.right = self._build(mid, hi, depth + 1)
            node.left.parent = node
            node.right.parent = node
        return node

    def _assign_levels(self) -> None:
        frontier = [self.root]
        idx = 0
        while frontier:
            self._levels.append(frontier)
            nxt: list[SeparatorNode] = []
            for node in frontier:
                node.index = idx
                idx += 1
                if node.left is not None:
                    nxt.append(node.left)
                if node.right is not None:
                    nxt.append(node.right)
            frontier = nxt

    # -- traversal ------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of layers (root layer = 1)."""
        return len(self._levels)

    def levels(self) -> Iterator[list[SeparatorNode]]:
        """Layers root-first — Phase 2's processing order."""
        return iter(self._levels)

    def levels_bottom_up(self) -> Iterator[list[SeparatorNode]]:
        """Layers leaves-first — Phase 1's processing order."""
        return reversed(self._levels)

    def nodes(self) -> Iterator[SeparatorNode]:
        for level in self._levels:
            yield from level

    def leaves(self) -> list[SeparatorNode]:
        return [node for node in self.nodes() if node.is_leaf]

    def leaf_edge(self, node: SeparatorNode) -> int:
        """The terrain-edge index at a leaf."""
        if not node.is_leaf:
            raise OrderingError(f"{node!r} is not a leaf")
        return self.order[node.lo]

    @property
    def n_leaves(self) -> int:
        return len(self.order)

    def node_count(self) -> int:
        return sum(len(level) for level in self._levels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SeparatorTree({self.n_leaves} leaves, height={self.height})"
        )
