"""Front-to-back ordering and the separator/PCT tree skeleton."""

from repro.ordering.separator import SeparatorNode, SeparatorTree
from repro.ordering.sweep import (
    front_to_back_order,
    in_front_comparison,
    order_constraints,
)

__all__ = [
    "SeparatorNode",
    "SeparatorTree",
    "front_to_back_order",
    "in_front_comparison",
    "order_constraints",
]
