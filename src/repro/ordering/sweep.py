"""Front-to-back edge ordering by plane sweep.

The paper orders edges with a Tamassia–Vitter separator tree; the only
property downstream phases use is that the result is a linear
extension of the *in-front-of* partial order:

    e_i ≺ e_j  iff some viewing ray meets e_i before e_j,

equivalently (viewer at ``x = +inf``): at some common map ``y``, the
xy-projection of ``e_i`` has strictly larger ``x``.  Because the
xy-projections of terrain edges never properly cross, the relative
x-order of two overlapping projections is constant over their common
y-range, and the relation is acyclic.

The sweep advances in ``y`` keeping the status — projections crossing
the sweep line, sorted by ``x``.  Whenever two segments become
*adjacent* in the status (insertion next to a neighbour, or removal of
the last segment between two), a precedence constraint is recorded.
Any two overlapping segments are connected through the chain of
status-adjacent pairs at any common ``y``, so the transitive closure
of recorded constraints contains the full partial order; a
topological sort then yields the front-to-back sequence.

Degenerate edges whose projection is horizontal in the map plane
(constant sweep ``y``) are inserted and immediately removed, which
records their neighbour constraints at that single ``y``; they occlude
a measure-zero sliver only, and their own visibility is decided by a
point query downstream.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.errors import OrderingError
from repro.geometry.segments import MapSegment
from repro.terrain.model import Terrain

__all__ = ["front_to_back_order", "in_front_comparison", "order_constraints"]


def in_front_comparison(a: MapSegment, b: MapSegment) -> int:
    """``+1`` when ``a`` is in front of ``b`` (larger x on the common
    y-range), ``-1`` for behind, ``0`` when the projections share at
    most a point of y-range (no constraint).

    Evaluated at the midpoint of the common y-range, where the
    constant-sign property of non-crossing projections makes a single
    comparison decisive.
    """
    lo = max(a.y1, b.y1)
    hi = min(a.y2, b.y2)
    if hi <= lo:
        return 0
    ym = 0.5 * (lo + hi)
    xa = a.x_at(ym)
    xb = b.x_at(ym)
    if xa > xb:
        return 1
    if xa < xb:
        return -1
    return 0


class _StatusEntry:
    """Sort adapter: orders status entries by x at the common y-range."""

    __slots__ = ("seg",)

    def __init__(self, seg: MapSegment):
        self.seg = seg

    def __lt__(self, other: "_StatusEntry") -> bool:
        c = in_front_comparison(self.seg, other.seg)
        if c != 0:
            return c < 0  # status is sorted by ascending x (back first)
        return self.seg.source < other.seg.source


def order_constraints(
    segments: Sequence[MapSegment],
) -> list[tuple[int, int]]:
    """All (front, back) precedence constraints from the sweep.

    Each pair ``(f, b)`` asserts edge ``f`` must be processed before
    edge ``b``.  Constraint count is ``O(n)`` — at most two per
    insertion and one per removal.
    """
    events: list[tuple[float, int, int]] = []
    # Event kinds at equal y: removals (0) before insert/remove pairs
    # of degenerate horizontals (1) before insertions (2); this keeps
    # point-contact pairs unconstrained.
    for idx, seg in enumerate(segments):
        if seg.is_horizontal:
            events.append((seg.y1, 1, idx))
        else:
            events.append((seg.y1, 2, idx))
            events.append((seg.y2, 0, idx))
    events.sort()

    status: list[_StatusEntry] = []
    constraints: list[tuple[int, int]] = []

    def locate(entry: _StatusEntry) -> int:
        lo, hi = 0, len(status)
        while lo < hi:
            mid = (lo + hi) // 2
            if status[mid] < entry:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def record_neighbours(pos: int, idx: int) -> None:
        # status[pos] == the entry for idx; left neighbour is behind
        # (smaller x), right neighbour is in front.
        if pos > 0:
            constraints.append((idx, status[pos - 1].seg.source))
        if pos + 1 < len(status):
            constraints.append((status[pos + 1].seg.source, idx))

    def remove(idx: int, seg: MapSegment) -> None:
        entry = _StatusEntry(seg)
        pos = locate(entry)
        # The comparator can place equal-at-midpoint entries either
        # side; scan the small neighbourhood for the exact source.
        scan = pos
        while scan < len(status) and status[scan].seg.source != idx:
            scan += 1
        if scan == len(status):
            scan = pos - 1
            while scan >= 0 and status[scan].seg.source != idx:
                scan -= 1
        if scan < 0:  # pragma: no cover - defensive
            raise OrderingError(f"segment {idx} missing from sweep status")
        status.pop(scan)
        if 0 < scan < len(status):
            # Newly adjacent pair (left=behind, right=front).
            constraints.append(
                (status[scan].seg.source, status[scan - 1].seg.source)
            )

    for _y, _kind, idx in events:
        seg = segments[idx]
        if _kind == 2:
            entry = _StatusEntry(seg)
            pos = locate(entry)
            status.insert(pos, entry)
            record_neighbours(pos, idx)
        elif _kind == 0:
            remove(idx, seg)
        else:  # degenerate horizontal: insert + record + remove
            entry = _StatusEntry(seg)
            pos = locate(entry)
            status.insert(pos, entry)
            record_neighbours(pos, idx)
            status.pop(pos)

    return constraints


def front_to_back_order(
    terrain: Terrain,
    *,
    segments: Sequence[MapSegment] | None = None,
    tie_break: str = "min",
) -> list[int]:
    """Front-to-back edge processing order for ``terrain``.

    Returns edge indices such that no later edge ever occludes an
    earlier one.  Deterministic: among simultaneously-ready edges the
    smallest index goes first (``tie_break="min"``) or the largest
    (``tie_break="max"``) — two different valid linear extensions,
    which the test-suite uses to check that the visibility map is
    order-independent.  Raises :class:`OrderingError` if the
    constraint graph has a cycle (impossible for valid terrains;
    indicates corrupt input).
    """
    if tie_break not in ("min", "max"):
        raise OrderingError(f"unknown tie_break {tie_break!r}")
    sign = 1 if tie_break == "min" else -1
    segs = list(segments) if segments is not None else terrain.map_segments()
    n = len(segs)
    constraints = order_constraints(segs)
    succ: list[list[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    seen: set[tuple[int, int]] = set()
    for front, back in constraints:
        if front == back or (front, back) in seen:
            continue
        seen.add((front, back))
        succ[front].append(back)
        indeg[back] += 1
    heap = [sign * i for i in range(n) if indeg[i] == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        i = sign * heapq.heappop(heap)
        order.append(i)
        for j in succ[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                heapq.heappush(heap, sign * j)
    if len(order) != n:
        raise OrderingError(
            "in-front-of constraint graph has a cycle"
            f" ({n - len(order)} edges unordered) — input is not a"
            " valid terrain projection"
        )
    return order
