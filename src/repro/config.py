"""The unified run configuration: one frozen object through every front door.

Every public entry point — :class:`~repro.hsr.sequential.SequentialHSR`,
:class:`~repro.hsr.parallel.ParallelHSR`,
:func:`~repro.envelope.build.build_envelope`, the
:mod:`repro.hsr.queries` helpers and the
:class:`~repro.service.ViewshedSession` query service — accepts a
``config=`` :class:`HsrConfig`.  The dataclass replaces the keyword
sprawl that had accreted across constructors (``engine=`` here,
``eps=`` there, module-global toggles monkeypatched in tests, worker
counts read from the environment) with a single immutable, hashable
value that can be threaded through a whole pipeline, cached on, and
compared.

Resolution rule
---------------
Every optional field defaults to ``None`` meaning *use the library
default*.  The library defaults remain the documented module globals —
:data:`repro.envelope.engine.USE_PACKED_PROFILE`,
:data:`repro.envelope.flat_splice.USE_FUSED_INSERT`, the
``FLAT_*_CUTOFF`` constants — so existing ablation hooks (and the
bench toggles) keep working, and a default-constructed ``HsrConfig()``
changes nothing.  A field that *is* set wins over the global for the
call it is threaded through, without mutating any process-wide state:
two sessions with different configs can interleave safely.

``workers`` selects real multi-process execution
(:mod:`repro.parallel_exec`): ``1`` (default) stays in-process,
``N > 1`` dispatches independent D&C merge groups to a process pool,
``"auto"`` asks :func:`repro.parallel_exec.available_workers` (which
honours ``REPRO_WORKERS``, the one environment override retained —
documented in ``docs/API.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Union

from repro.geometry.primitives import EPS

__all__ = ["HsrConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class HsrConfig:
    """Immutable configuration for HSR runs and viewshed queries.

    Parameters
    ----------
    engine:
        Envelope kernel: ``"python"``, ``"numpy"``, or ``None``/
        ``"auto"`` for the default (numpy when importable).
    eps:
        Geometric tolerance shared by every predicate.
    workers:
        Process count for the :mod:`repro.parallel_exec` layers; ``1``
        means in-process, ``"auto"`` resolves via
        :func:`repro.parallel_exec.available_workers`.
    use_packed_profile / use_fused_insert / use_scalar_fastpaths:
        Sequential-path kernel toggles; ``None`` defers to the module
        globals (the documented defaults).
    use_compiled_insert:
        The compiled fused-insert core (one C call per packed insert);
        ``None`` defers to :data:`repro.envelope.flat_splice.
        USE_COMPILED_INSERT`, which is on exactly when the optional
        extension compiled at install time.  ``True`` on a no-compiler
        install is a silent no-op (the cascade answers, bit-exact).
    flat_merge_cutoff / flat_visibility_cutoff / flat_fused_cutoff:
        Scalar-vs-array dispatch boundaries; ``None`` defers to the
        measured defaults in :mod:`repro.envelope.engine`.
    parallel_min_segments / parallel_min_pieces:
        Input-size floors below which the parallel executor declines
        (IPC would dominate); ``None`` defers to
        :mod:`repro.parallel_exec` defaults.  Tests set them to ``0``
        to exercise the pool on small fixtures.
    """

    engine: Optional[str] = None
    eps: float = EPS
    workers: Union[int, str] = 1
    use_packed_profile: Optional[bool] = None
    use_fused_insert: Optional[bool] = None
    use_scalar_fastpaths: Optional[bool] = None
    use_compiled_insert: Optional[bool] = None
    flat_merge_cutoff: Optional[int] = None
    flat_visibility_cutoff: Optional[int] = None
    flat_fused_cutoff: Optional[int] = None
    parallel_min_segments: Optional[int] = None
    parallel_min_pieces: Optional[int] = None

    # -- resolution helpers (read the documented defaults lazily, so a
    # -- default config always tracks the live module globals) --------

    def resolved_engine(self) -> str:
        from repro.envelope.engine import resolve_engine

        return resolve_engine(self.engine)

    def resolved_workers(self) -> int:
        if self.workers == "auto":
            from repro.parallel_exec import available_workers

            return available_workers()
        return max(1, int(self.workers))

    def packed_profile(self) -> bool:
        if self.use_packed_profile is not None:
            return self.use_packed_profile
        import repro.envelope.engine as _engine

        return _engine.USE_PACKED_PROFILE

    def fused_insert(self) -> bool:
        if self.use_fused_insert is not None:
            return self.use_fused_insert
        import repro.envelope.flat_splice as _splice

        return _splice.USE_FUSED_INSERT

    def scalar_fastpaths(self) -> bool:
        if self.use_scalar_fastpaths is not None:
            return self.use_scalar_fastpaths
        import repro.envelope.flat_splice as _splice

        return _splice.USE_SCALAR_FASTPATHS

    def compiled_insert(self) -> bool:
        if self.use_compiled_insert is not None:
            return self.use_compiled_insert
        import repro.envelope.flat_splice as _splice

        return _splice.USE_COMPILED_INSERT

    def merge_cutoff(self) -> int:
        if self.flat_merge_cutoff is not None:
            return self.flat_merge_cutoff
        import repro.envelope.engine as _engine

        return _engine.FLAT_MERGE_CUTOFF

    def visibility_cutoff(self) -> int:
        if self.flat_visibility_cutoff is not None:
            return self.flat_visibility_cutoff
        import repro.envelope.engine as _engine

        return _engine.FLAT_VISIBILITY_CUTOFF

    def fused_cutoff(self) -> int:
        if self.flat_fused_cutoff is not None:
            return self.flat_fused_cutoff
        import repro.envelope.engine as _engine

        return _engine.FLAT_FUSED_CUTOFF

    # -- construction helpers -----------------------------------------

    def replace(self, **changes: object) -> "HsrConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @staticmethod
    def resolve(
        config: Optional["HsrConfig"],
        *,
        engine: Optional[str] = None,
        eps: Optional[float] = None,
    ) -> "HsrConfig":
        """Normalise a front door's ``(config, engine=, eps=)`` inputs.

        Explicit ``engine=`` / ``eps=`` keywords — kept on the
        constructors as supported shorthand — override the
        corresponding config fields; a missing config starts from
        :data:`DEFAULT_CONFIG`.
        """
        out = config if config is not None else DEFAULT_CONFIG
        changes: dict[str, object] = {}
        if engine is not None:
            changes["engine"] = engine
        if eps is not None:
            changes["eps"] = eps
        return out.replace(**changes) if changes else out


#: The all-defaults configuration (engine auto, in-process, module
#: globals for every toggle).
DEFAULT_CONFIG = HsrConfig()
