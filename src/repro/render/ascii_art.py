"""Terminal rendering of visibility maps (quick-look diagnostics)."""

from __future__ import annotations

from repro.hsr.result import VisibilityMap

__all__ = ["ascii_visibility"]

_SHADES = ".:-=+*#%@"


def ascii_visibility(
    vmap: VisibilityMap, *, width: int = 78, height: int = 22
) -> str:
    """Rasterise a visibility map into a character grid.

    Each visible segment is sampled along its length; the glyph
    encodes the source edge (so adjacent edges are distinguishable in
    a terminal).  Returns the multi-line string.
    """
    if not vmap.segments:
        return "(empty visibility map)"
    ys: list[float] = []
    zs: list[float] = []
    for s in vmap.segments:
        ys += [s.ya, s.yb]
        zs += [s.za, s.zb]
    y0, y1 = min(ys), max(ys)
    z0, z1 = min(zs), max(zs)
    dy = max(y1 - y0, 1e-9)
    dz = max(z1 - z0, 1e-9)
    grid = [[" "] * width for _ in range(height)]

    def plot(y: float, z: float, edge: int) -> None:
        c = int((y - y0) / dy * (width - 1))
        r = int((z - z0) / dz * (height - 1))
        grid[height - 1 - r][c] = _SHADES[edge % len(_SHADES)]

    for s in vmap.segments:
        steps = max(
            2,
            int(abs(s.yb - s.ya) / dy * width)
            + int(abs(s.zb - s.za) / dz * height),
        )
        for i in range(steps + 1):
            t = i / steps
            plot(s.ya + t * (s.yb - s.ya), s.za + t * (s.zb - s.za), s.edge)
    return "\n".join("".join(row) for row in grid)
