"""Rendering backends consuming the object-space visibility map."""

from repro.render.ascii_art import ascii_visibility
from repro.render.svg import render_envelope_svg, render_visibility_svg

__all__ = [
    "ascii_visibility",
    "render_envelope_svg",
    "render_visibility_svg",
]
