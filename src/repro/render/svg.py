"""SVG rendering of visibility maps and profiles.

The algorithm's output is device-independent (§1.1: "a combinatorial
description of the visible scene which can then be rendered on any
display device") — this module is one such display device.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.envelope.chain import Envelope
from repro.hsr.result import VisibilityMap

__all__ = ["render_visibility_svg", "render_envelope_svg"]

_PALETTE = [
    "#1b9e77",
    "#d95f02",
    "#7570b3",
    "#e7298a",
    "#66a61e",
    "#e6ab02",
    "#a6761d",
    "#666666",
]


def _viewbox(
    points: Sequence[tuple[float, float]], pad: float = 0.05
) -> tuple[float, float, float, float]:
    ys = [p[0] for p in points]
    zs = [p[1] for p in points]
    y0, y1 = min(ys), max(ys)
    z0, z1 = min(zs), max(zs)
    dy = max(y1 - y0, 1e-9)
    dz = max(z1 - z0, 1e-9)
    return (y0 - pad * dy, z0 - pad * dz, dy * (1 + 2 * pad), dz * (1 + 2 * pad))


def render_visibility_svg(
    vmap: VisibilityMap,
    path: Union[str, Path, None] = None,
    *,
    width: int = 800,
    height: int = 400,
    stroke_width: Optional[float] = None,
    title: str = "visible image",
) -> str:
    """Render a visibility map as an SVG document.

    Returns the SVG text; writes it to ``path`` when given.  The image
    plane's z points up, so the SVG y-axis is flipped.
    """
    pts: list[tuple[float, float]] = []
    for s in vmap.segments:
        pts.append((s.ya, s.za))
        pts.append((s.yb, s.zb))
    if not pts:
        pts = [(0.0, 0.0), (1.0, 1.0)]
    vx, vz, vw, vh = _viewbox(pts)
    sw = stroke_width if stroke_width is not None else vw / 400.0
    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" viewBox="{vx:.6g} {-(vz + vh):.6g}'
        f' {vw:.6g} {vh:.6g}">',
        f"<title>{title}</title>",
        f'<rect x="{vx:.6g}" y="{-(vz + vh):.6g}" width="{vw:.6g}"'
        f' height="{vh:.6g}" fill="#0b1021"/>',
    ]
    for s in vmap.segments:
        color = _PALETTE[s.edge % len(_PALETTE)]
        if s.is_point:
            lines.append(
                f'<circle cx="{s.ya:.6g}" cy="{-s.za:.6g}" r="{sw:.6g}"'
                f' fill="{color}"/>'
            )
        else:
            lines.append(
                f'<line x1="{s.ya:.6g}" y1="{-s.za:.6g}" x2="{s.yb:.6g}"'
                f' y2="{-s.zb:.6g}" stroke="{color}"'
                f' stroke-width="{sw:.6g}" stroke-linecap="round"/>'
            )
    lines.append("</svg>")
    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text)
    return text


def render_envelope_svg(
    env: Envelope,
    path: Union[str, Path, None] = None,
    *,
    width: int = 800,
    height: int = 300,
    title: str = "upper profile",
) -> str:
    """Render an envelope (e.g. the scene horizon) as an SVG polyline
    per contiguous run, with gaps left blank."""
    pts = [(v.x, v.y) for v in env.vertices()] or [(0.0, 0.0), (1.0, 1.0)]
    vx, vz, vw, vh = _viewbox(pts)
    sw = vw / 400.0
    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" viewBox="{vx:.6g} {-(vz + vh):.6g}'
        f' {vw:.6g} {vh:.6g}">',
        f"<title>{title}</title>",
    ]
    run: list[str] = []
    prev_end: Optional[float] = None
    for p in env.pieces:
        if prev_end is not None and p.ya > prev_end:
            if run:
                lines.append(
                    f'<polyline points="{" ".join(run)}" fill="none"'
                    f' stroke="#d95f02" stroke-width="{sw:.6g}"/>'
                )
            run = []
        if not run:
            run.append(f"{p.ya:.6g},{-p.za:.6g}")
        run.append(f"{p.yb:.6g},{-p.zb:.6g}")
        prev_end = p.yb
    if run:
        lines.append(
            f'<polyline points="{" ".join(run)}" fill="none"'
            f' stroke="#d95f02" stroke-width="{sw:.6g}"/>'
        )
    lines.append("</svg>")
    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text)
    return text
