"""Multi-core execution of the level-batched D&C layers.

Two parallel kernels, both bit-exact with the in-process engines:

:func:`build_envelope_parallel`
    The divide-and-conquer envelope build split at the reference
    recursion's own ``mid = (lo + hi) // 2`` boundaries: the top
    ``log2(chunks)`` tree levels stay in the parent, every subtree
    below them builds in a worker process
    (:func:`repro.envelope.flat.build_envelope_flat` on its contiguous
    segment range — the relative splits coincide with the global ones
    because ``(2·lo + n) // 2 == lo + n // 2``), and the parent merges
    the chunk envelopes up with
    :func:`~repro.envelope.flat.merge_envelopes_flat`.  Crossings
    concatenate in the reference post-order (left subtree, right
    subtree, node), and ``ops`` telescopes to leaf charges plus every
    merge's elementary-interval count — the exact
    :func:`~repro.envelope.build.build_envelope` contract.

:func:`parallel_batch_merge`
    One D&C level's independent merge groups
    (:func:`repro.envelope.flat.batch_merge` semantics) partitioned
    into contiguous, piece-balanced group ranges, one range per
    worker.  Group independence is the existing batch invariant, so a
    chunked run returns byte-identical arrays to the single sweep.

Inputs ride :mod:`multiprocessing.shared_memory` blocks
(:class:`~repro.parallel_exec.shm.ShmBundle`): the flat SoA arrays are
written once and workers map the same pages, so per-task pickling is
limited to a block name, a few ints, and the (small) result metadata.
Workers are a lazily-created, process-wide ``fork``-context pool —
forked children inherit the already-imported numpy and repro modules,
making warm dispatch latency sub-millisecond.

Failure model (the PR-6 guard-site pattern, site ``parallel_exec``):
*unavailability* — no ``fork`` start method, pool creation failure, or
an input below the IPC-amortisation floors — declines silently and the
caller's in-process path runs; a *worker fault* mid-task is recorded
via :func:`repro.reliability.guard.handle_fault` (strict mode raises
:class:`~repro.errors.KernelFault`; guarded mode falls back bit-exact,
and the circuit breaker quarantines the site after repeated faults).
``REPRO_FAULT_INJECT=parallel_exec:raise:N`` exercises the whole
recovery path in tests.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

import numpy as np

from repro.errors import KernelFault
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.parallel_exec.shm import ShmBundle
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = [
    "available_workers",
    "build_envelope_parallel",
    "parallel_batch_merge",
    "maybe_build_envelope",
    "maybe_batch_merge",
    "shutdown",
    "parallel_stats",
    "reset_stats",
    "PARALLEL_BUILD_MIN_SEGMENTS",
    "PARALLEL_MERGE_MIN_PIECES",
]

_F = np.float64
_I = np.int64

SITE = "parallel_exec"

#: Below these input sizes the in-process batched sweeps win outright
#: (pool dispatch + page mapping cost ~100µs per level); measured on
#: the E9 build workload, see ``docs/BENCHMARKS.md``.  Overridable per
#: run via :class:`repro.config.HsrConfig` (tests set them to 0).
PARALLEL_BUILD_MIN_SEGMENTS: int = 2048
PARALLEL_MERGE_MIN_PIECES: int = 8192

#: Observability counters (reset with :func:`reset_stats`): how often
#: the pool engaged, declined, or faulted — the parity tests assert the
#: parallel path actually executed rather than silently falling back.
parallel_stats: dict[str, int] = {
    "builds": 0,
    "batched_merges": 0,
    "chunks": 0,
    "declined": 0,
    "faults": 0,
}


def reset_stats() -> None:
    for key in parallel_stats:
        parallel_stats[key] = 0


def available_workers() -> int:
    """Worker count honouring ``REPRO_WORKERS`` (default: the CPUs this
    process may schedule on).

    The canonical home of the helper formerly in
    :mod:`repro.pram.pool` — the one environment override the config
    redesign retains, because "how many cores may I use" is a
    deployment property, not an algorithm parameter.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- pool lifecycle ----------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _get_pool(workers: int) -> Optional[ProcessPoolExecutor]:
    """The process-wide fork pool, grown on demand; ``None`` when real
    workers are unavailable on this platform."""
    global _pool, _pool_workers
    if _pool is not None and _pool_workers >= workers:
        return _pool
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():  # pragma: no cover
        return None
    try:
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=mp.get_context("fork")
        )
    except Exception:  # pragma: no cover - resource exhaustion
        return None
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    _pool = pool
    _pool_workers = workers
    return _pool


def shutdown() -> None:
    """Tear down the worker pool (idempotent; a later dispatch simply
    re-creates it)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown)


# -- worker tasks (module level: picklable by reference) ---------------

_STACK_FIELDS = ("ya", "za", "yb", "zb", "source", "offsets")


def _build_chunk_task(args: tuple) -> tuple:
    """Worker: build the envelope of one contiguous segment chunk.

    Returns ``(bundle_name, bundle_spec, crossings, ops)`` — the chunk
    envelope rides a worker-created shared-memory block (the parent
    attaches and unlinks it), crossings (already in the chunk subtree's
    post-order) and the scalar ops total ride the result pickle.
    """
    name, spec, lo, hi, eps, record = args
    from repro.envelope.flat import _postorder_index, build_envelope_flat

    bundle = ShmBundle.attach(name, spec)
    try:
        rows = bundle["segments"][lo:hi].tolist()
    finally:
        bundle.close()
    segs = [
        ImageSegment(r[0], r[1], r[2], r[3], int(r[4])) for r in rows
    ]
    fb = build_envelope_flat(segs, eps=eps, record_crossings=record)
    env = fb.envelope
    out = ShmBundle.create(
        {
            "ya": env.ya,
            "za": env.za,
            "yb": env.yb,
            "zb": env.zb,
            "source": env.source,
        }
    )
    out_name, out_spec = out.name, out.spec
    out.close()  # keep the block; the parent unlinks it
    if record:
        order = _postorder_index(fb.n_segments)
        crossings = fb.collect_crossings(
            sorted(fb.node_crossings, key=order.__getitem__)
        )
    else:
        crossings = []
    return (out_name, out_spec, crossings, fb.n_segments + fb.total_merge_ops)


def _slice_stack(stack, g_lo: int, g_hi: int):
    """Groups ``[g_lo, g_hi)`` of a stacked set as a zero-copy
    sub-stack with rebased offsets."""
    from repro.envelope.flat import _Stacked

    lo = int(stack.offsets[g_lo])
    hi = int(stack.offsets[g_hi])
    return _Stacked(
        stack.ya[lo:hi],
        stack.za[lo:hi],
        stack.yb[lo:hi],
        stack.zb[lo:hi],
        stack.source[lo:hi],
        np.asarray(stack.offsets[g_lo : g_hi + 1]) - lo,
    )


def _merge_chunk_task(args: tuple) -> tuple:
    """Worker: run one contiguous group range of a batched merge.

    The output arrays of :func:`~repro.envelope.flat.batch_merge` are
    freshly allocated (never views of the input block), so they return
    through the result pickle after the input mapping closes.
    """
    name, spec, g_lo, g_hi, eps, record = args
    from repro.envelope.flat import _Stacked, batch_merge

    bundle = ShmBundle.attach(name, spec)
    try:
        a = _slice_stack(
            _Stacked(*(bundle["a_" + f] for f in _STACK_FIELDS)), g_lo, g_hi
        )
        b = _slice_stack(
            _Stacked(*(bundle["b_" + f] for f in _STACK_FIELDS)), g_lo, g_hi
        )
        res = batch_merge(a, b, eps=eps, record_crossings=record)
        m = res.merged
        return (
            np.ascontiguousarray(m.ya),
            np.ascontiguousarray(m.za),
            np.ascontiguousarray(m.yb),
            np.ascontiguousarray(m.zb),
            np.ascontiguousarray(m.source),
            np.ascontiguousarray(m.offsets),
            res.ops,
            res.cross_group,
            res.cross_y,
            res.cross_z,
            res.cross_front,
            res.cross_back,
        )
    finally:
        bundle.close()


# -- parallel D&C build ------------------------------------------------


def _chunk_bounds(lo: int, hi: int, depth: int) -> list[tuple[int, int]]:
    """Leaf ranges of the top ``depth`` levels of the reference
    recursion (split at ``(lo + hi) // 2``, exactly)."""
    if depth == 0:
        return [(lo, hi)]
    mid = (lo + hi) // 2
    return _chunk_bounds(lo, mid, depth - 1) + _chunk_bounds(
        mid, hi, depth - 1
    )


def build_envelope_parallel(
    segments: Sequence[ImageSegment],
    *,
    eps: float = EPS,
    workers: int,
    record_crossings: bool = True,
    min_segments: Optional[int] = None,
) -> Optional[tuple]:
    """Multi-core upper-envelope build; see the module docstring.

    Returns ``(FlatEnvelope, crossings, total_ops)`` — bit-exact with
    :func:`repro.envelope.build.build_envelope` — or ``None`` when the
    pool is unavailable or the input is below the IPC floor (the caller
    runs its in-process path).  Worker exceptions propagate; wrap via
    :func:`maybe_build_envelope` for the guarded front door.
    """
    from repro.envelope.flat import (
        FlatEnvelope,
        _tuples_to_matrix,
        merge_envelopes_flat,
    )

    floor = (
        PARALLEL_BUILD_MIN_SEGMENTS if min_segments is None else min_segments
    )
    all_mat = (
        _tuples_to_matrix(segments)
        if len(segments)
        else np.empty((0, 5), _F)
    )
    seg_mat = np.ascontiguousarray(all_mat[all_mat[:, 0] != all_mat[:, 2]])
    m = len(seg_mat)
    if workers < 2 or m < max(floor, 8):
        parallel_stats["declined"] += 1
        return None
    depth = max(1, math.ceil(math.log2(min(workers, m // 2))))
    while (1 << depth) * 2 > m:  # every chunk keeps >= 2 segments
        depth -= 1
    if depth < 1:
        parallel_stats["declined"] += 1
        return None
    pool = _get_pool(min(workers, 1 << depth))
    if pool is None:  # pragma: no cover - platform without fork
        parallel_stats["declined"] += 1
        return None

    bounds = _chunk_bounds(0, m, depth)
    bundle = ShmBundle.create({"segments": seg_mat})
    try:
        futures = [
            pool.submit(
                _build_chunk_task,
                (bundle.name, bundle.spec, lo, hi, eps, record_crossings),
            )
            for lo, hi in bounds
        ]
        results = [f.result() for f in futures]
    finally:
        bundle.unlink()

    chunk_envs: dict[tuple[int, int], tuple] = {}
    child_bundles = []
    try:
        for (lo, hi), (out_name, out_spec, crossings, ops) in zip(
            bounds, results
        ):
            child = ShmBundle.attach(out_name, out_spec)
            child_bundles.append(child)
            env = FlatEnvelope(
                child["ya"],
                child["za"],
                child["yb"],
                child["zb"],
                child["source"],
            )
            chunk_envs[(lo, hi)] = (env, crossings, ops)

        def assemble(lo: int, hi: int, d: int) -> tuple:
            if d == 0:
                return chunk_envs[(lo, hi)]
            mid = (lo + hi) // 2
            env_l, cross_l, ops_l = assemble(lo, mid, d - 1)
            env_r, cross_r, ops_r = assemble(mid, hi, d - 1)
            res = merge_envelopes_flat(
                env_l, env_r, eps=eps, record_crossings=record_crossings
            )
            return (
                res.envelope,
                cross_l + cross_r + res.crossings,
                ops_l + ops_r + res.ops,
            )

        # Non-empty chunks make every top merge allocate fresh output
        # arrays, so the final envelope never aliases worker memory.
        env, crossings, total_ops = assemble(0, m, depth)
    finally:
        for child in child_bundles:
            child.unlink()

    parallel_stats["builds"] += 1
    parallel_stats["chunks"] += len(bounds)
    return env, crossings, total_ops


# -- parallel batched level merge --------------------------------------


def parallel_batch_merge(
    a,
    b,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
    workers: int,
    min_pieces: Optional[int] = None,
):
    """One level's independent merge groups across real cores.

    Byte-identical to :func:`repro.envelope.flat.batch_merge` on the
    same stacks (group independence is the batch invariant); returns
    ``None`` when the pool is unavailable or the level is below the
    IPC floor.  Worker exceptions propagate; wrap via
    :func:`maybe_batch_merge` for the guarded call sites.
    """
    from repro.envelope.flat import _BatchOut, _Stacked

    G = a.n_groups
    total_pieces = len(a.ya) + len(b.ya)
    floor = PARALLEL_MERGE_MIN_PIECES if min_pieces is None else min_pieces
    if workers < 2 or G < 2 or total_pieces < max(floor, 2):
        parallel_stats["declined"] += 1
        return None

    # Contiguous group ranges balanced by total piece count (a level's
    # group sizes are highly skewed near the recursion root).
    weights = np.diff(np.asarray(a.offsets)) + np.diff(
        np.asarray(b.offsets)
    )
    cum = np.cumsum(weights)
    n_chunks = min(workers, G)
    targets = np.arange(1, n_chunks) * (float(cum[-1]) / n_chunks)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds_g = sorted({0, G, *(int(c) for c in cuts if 0 < int(c) < G)})
    pairs = list(zip(bounds_g[:-1], bounds_g[1:]))
    if len(pairs) < 2:
        parallel_stats["declined"] += 1
        return None
    pool = _get_pool(min(workers, len(pairs)))
    if pool is None:  # pragma: no cover - platform without fork
        parallel_stats["declined"] += 1
        return None

    payload = {}
    for prefix, stack in (("a_", a), ("b_", b)):
        for field in _STACK_FIELDS:
            payload[prefix + field] = np.ascontiguousarray(
                getattr(stack, field)
            )
    bundle = ShmBundle.create(payload)
    try:
        futures = [
            pool.submit(
                _merge_chunk_task,
                (bundle.name, bundle.spec, g_lo, g_hi, eps, record_crossings),
            )
            for g_lo, g_hi in pairs
        ]
        results = [f.result() for f in futures]
    finally:
        bundle.unlink()

    off_parts = [np.zeros(1, _I)]
    base = 0
    for r in results:
        off = r[5]
        off_parts.append(off[1:] + base)
        base += int(off[-1])
    merged = _Stacked(
        np.concatenate([r[0] for r in results]),
        np.concatenate([r[1] for r in results]),
        np.concatenate([r[2] for r in results]),
        np.concatenate([r[3] for r in results]),
        np.concatenate([r[4] for r in results]),
        np.concatenate(off_parts),
    )
    ops = np.concatenate([r[6] for r in results])
    cross_group = np.concatenate(
        [r[7] + g_lo for r, (g_lo, _g_hi) in zip(results, pairs)]
    )
    out = _BatchOut(
        merged,
        ops,
        cross_group,
        np.concatenate([r[8] for r in results]),
        np.concatenate([r[9] for r in results]),
        np.concatenate([r[10] for r in results]),
        np.concatenate([r[11] for r in results]),
    )
    parallel_stats["batched_merges"] += 1
    parallel_stats["chunks"] += len(pairs)
    return out


# -- guarded front doors ----------------------------------------------


def maybe_build_envelope(
    segments: Sequence[ImageSegment], *, eps: float, config
) -> Optional[tuple]:
    """Guard-site wrapper around :func:`build_envelope_parallel` for
    :func:`repro.envelope.build.build_envelope`: ``None`` means "use
    the in-process path" (declined, quarantined, or a recorded worker
    fault in guarded mode)."""
    workers = config.resolved_workers()
    if workers < 2:
        return None
    if _guard.GUARDS_ENABLED and (
        _guard.ANY_QUARANTINED and _guard.is_quarantined(SITE)
    ):
        return None
    try:
        if _fi.ARMED:
            _fi.trip(SITE)
        res = build_envelope_parallel(
            segments,
            eps=eps,
            workers=workers,
            record_crossings=True,
            min_segments=config.parallel_min_segments,
        )
        if res is not None and _guard.GUARDS_ENABLED:
            env = res[0]
            if _fi.ARMED:
                env = _fi.corrupt_flat(SITE, env)
                res = (env, res[1], res[2])
            _guard.check_flat(SITE, env.ya, env.za, env.yb, env.zb)
        return res
    except KernelFault:
        raise
    except Exception as exc:
        if not _guard.GUARDS_ENABLED:
            raise
        _guard.handle_fault(SITE, exc)
        parallel_stats["faults"] += 1
        return None


def maybe_batch_merge(
    a, b, *, eps: float, record_crossings: bool = True, config=None
):
    """Guard-site wrapper around :func:`parallel_batch_merge` for the
    Phase-1/Phase-2 level merges: ``None`` means "run the in-process
    :func:`~repro.envelope.flat.batch_merge`"."""
    workers = config.resolved_workers() if config is not None else 1
    if workers < 2:
        return None
    if _guard.GUARDS_ENABLED and (
        _guard.ANY_QUARANTINED and _guard.is_quarantined(SITE)
    ):
        return None
    try:
        if _fi.ARMED:
            _fi.trip(SITE)
        return parallel_batch_merge(
            a,
            b,
            eps=eps,
            record_crossings=record_crossings,
            workers=workers,
            min_pieces=(
                config.parallel_min_pieces if config is not None else None
            ),
        )
    except KernelFault:
        raise
    except Exception as exc:
        if not _guard.GUARDS_ENABLED:
            raise
        _guard.handle_fault(SITE, exc)
        parallel_stats["faults"] += 1
        return None
