"""Shared-memory ndarray bundles for zero-copy worker handoff.

The flat SoA layout of :mod:`repro.envelope.flat` keeps every envelope
as a handful of contiguous 1-D arrays, which makes process handoff
cheap: pack the arrays into **one**
:class:`multiprocessing.shared_memory.SharedMemory` block and ship only
the block *name* plus a small layout spec through the task pickle.  The
worker maps the same physical pages and slices zero-copy views — no
per-task array serialisation, which is exactly the cost that made the
PR-1 pickling :class:`~repro.pram.pool.ProcessBackend` lose to the
batched in-process sweeps (experiment E8).

Lifecycle contract (enforced by the callers in
:mod:`repro.parallel_exec.executor`):

* the **creator** (parent for inputs, worker for outputs) writes the
  arrays, hands out ``(name, spec)``, and eventually calls
  :meth:`ShmBundle.unlink`;
* an **attacher** maps the block read-only-by-convention and calls
  :meth:`ShmBundle.close` when its views are dead — always *before*
  the creator unlinks (the synchronous submit/collect flow guarantees
  the ordering, and the fork start method keeps a single
  ``resource_tracker``, so register/unregister pairs stay balanced).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional, Sequence

import numpy as np

__all__ = ["ShmBundle", "BundleSpec"]

#: ``(field name, shape, dtype string, byte offset)`` rows plus the
#: total byte size — everything an attacher needs, small enough to ride
#: the task pickle.
BundleSpec = tuple[tuple[tuple[str, tuple[int, ...], str, int], ...], int]

_ALIGN = 16


class ShmBundle:
    """Named ndarrays packed into one shared-memory block."""

    __slots__ = ("shm", "spec", "arrays", "_owner")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: BundleSpec,
        arrays: dict[str, np.ndarray],
        owner: bool,
    ):
        self.shm = shm
        self.spec = spec
        self.arrays = arrays
        self._owner = owner

    @property
    def name(self) -> str:
        return self.shm.name

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    @classmethod
    def create(
        cls, arrays: dict[str, np.ndarray]
    ) -> "ShmBundle":
        """Allocate one block holding copies of ``arrays``."""
        rows: list[tuple[str, tuple[int, ...], str, int]] = []
        offset = 0
        for name, arr in arrays.items():
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            rows.append((name, arr.shape, arr.dtype.str, offset))
            offset += arr.nbytes
        total = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=total)
        views: dict[str, np.ndarray] = {}
        for (name, shape, dtype, off), src in zip(rows, arrays.values()):
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
            view[...] = src
            views[name] = view
        return cls(shm, (tuple(rows), total), views, owner=True)

    @classmethod
    def attach(cls, name: str, spec: BundleSpec) -> "ShmBundle":
        """Map an existing block by name and rebuild the views."""
        shm = shared_memory.SharedMemory(name=name)
        rows, _total = spec
        views = {
            field: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
            for field, shape, dtype, off in rows
        }
        return cls(shm, spec, views, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        self.arrays = {}
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    def unlink(self) -> None:
        """Close and free the block (creator side)."""
        self.close()
        try:
            self.shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass


def pack_stacked(
    prefix: str, arrays: Sequence[np.ndarray], names: Sequence[str]
) -> dict[str, np.ndarray]:
    """Helper: key ``arrays`` as ``f"{prefix}{name}"`` for bundling."""
    return {prefix + n: a for n, a in zip(names, arrays)}


def take(
    bundle: ShmBundle, prefix: str, names: Sequence[str]
) -> list[np.ndarray]:
    """Inverse of :func:`pack_stacked` on an attached bundle."""
    return [bundle[prefix + n] for n in names]


def fingerprint(spec: BundleSpec) -> Optional[str]:  # pragma: no cover
    """Debug helper: stable one-line description of a bundle layout."""
    rows, total = spec
    if not rows:
        return None
    return ",".join(f"{n}{list(s)}" for n, s, _d, _o in rows) + f":{total}B"
