"""Real multi-core execution for the level-batched D&C layers.

The subsystem ROADMAP item 3 calls for: the D&C envelope build and the
phase-2 level merges dispatched to a ``fork``-context process pool over
:mod:`multiprocessing.shared_memory`-backed numpy buffers (zero-copy
thanks to the flat SoA layout), bit-exact with the in-process engines
and guarded by the ``parallel_exec`` fault site — unavailable workers
decline silently, worker faults fall back through the PR-6 recovery
pattern.  Select it per run with
:class:`repro.config.HsrConfig(workers=N)`; nothing here runs unless a
config asks for more than one worker.

See :mod:`repro.parallel_exec.executor` for the execution model and
:mod:`repro.parallel_exec.shm` for the buffer lifecycle contract.
"""

from repro.parallel_exec.executor import (
    PARALLEL_BUILD_MIN_SEGMENTS,
    PARALLEL_MERGE_MIN_PIECES,
    available_workers,
    build_envelope_parallel,
    maybe_batch_merge,
    maybe_build_envelope,
    parallel_batch_merge,
    parallel_stats,
    reset_stats,
    shutdown,
)

__all__ = [
    "available_workers",
    "build_envelope_parallel",
    "parallel_batch_merge",
    "maybe_build_envelope",
    "maybe_batch_merge",
    "shutdown",
    "parallel_stats",
    "reset_stats",
    "PARALLEL_BUILD_MIN_SEGMENTS",
    "PARALLEL_MERGE_MIN_PIECES",
]
