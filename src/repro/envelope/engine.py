"""Envelope kernel selection.

Two interchangeable merge kernels produce bit-identical results (the
property suite in ``tests/test_envelope_flat.py`` enforces it):

``"python"``
    The reference per-interval sweep in :mod:`repro.envelope.merge` —
    pure Python, no dependencies, the semantic ground truth.
``"numpy"``
    The vectorized kernel in :mod:`repro.envelope.flat` — batched
    array sweeps, dramatically faster on large envelopes and on
    level-batched divide-and-conquer builds.

``engine=None`` (or ``"auto"``) resolves to :data:`DEFAULT_ENGINE` —
``"numpy"`` when NumPy is importable, else ``"python"``.  The NumPy
dependency is gated here so the rest of the library never imports it
directly.

:func:`merge_dispatch` additionally applies a size cutoff
(:data:`FLAT_MERGE_CUTOFF`): below it the Python sweep is faster than
the array pipeline's fixed launch overhead, so small merges run on the
reference kernel even under ``engine="numpy"``.  Because the kernels
agree exactly, the dispatch point is unobservable in results — only in
wall clock.  PRAM ``ops`` charges are engine-independent by
construction (elementary-interval counts), so cost accounting is
unaffected by kernel choice.

:func:`visibility_dispatch` applies the same policy to segment-vs-
profile visibility queries: scalar scan below
:data:`FLAT_VISIBILITY_CUTOFF` overlapped pieces, the batched kernel
of :mod:`repro.envelope.flat_visibility` above it (vertical queries
always take the scalar point query — they are O(log m) either way).

The sequential flat insert path does not pay the two dispatches
separately: :func:`repro.envelope.flat_splice.insert_segment_flat`
answers visibility *and* the merged window in one fused sweep
(:mod:`repro.envelope.flat_fused`), switching from its scalar fused
loop to its vectorized fused kernel at :data:`FLAT_FUSED_CUTOFF`
overlapped pieces.  Its live profile defaults to the packed
single-buffer layout (:data:`USE_PACKED_PROFILE`,
:mod:`repro.envelope.packed`), whose splices mutate the buffer in
place — window views passed to :func:`visibility_dispatch` are
therefore per-insert temporaries that must be re-derived from the
live profile after every splice, never cached across inserts.  All
cutoffs are wall-clock-only dispatch points:
every kernel pair agrees bit for bit, which
``tests/test_envelope_flat_fused.py`` pins exactly at, one below and
one above each boundary.

Both dispatchers are *guard sites* of the reliability layer
(:mod:`repro.reliability.guard`): the numpy branch runs under
post-condition checks and, on a kernel fault in guarded mode, the call
falls through to the python tail below the cutoff — the same bit-exact
code, so a degraded dispatch is observable only in the
:class:`~repro.reliability.guard.ReliabilityReport` (and the wall
clock).  See ``docs/RELIABILITY.md``.

See ``docs/ARCHITECTURE.md`` for the full dispatch map and
``docs/BENCHMARKS.md`` for how the cutoffs were measured.
"""

from __future__ import annotations

from typing import Optional

from repro.envelope.chain import Envelope
from repro.envelope.merge import MergeResult, merge_envelopes
from repro.envelope.visibility import VisibilityResult, visible_parts
from repro.errors import EnvelopeError, KernelFault
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = [
    "HAVE_NUMPY",
    "DEFAULT_ENGINE",
    "ENGINES",
    "resolve_engine",
    "merge_dispatch",
    "visibility_dispatch",
    "FLAT_MERGE_CUTOFF",
    "FLAT_VISIBILITY_CUTOFF",
    "FLAT_FUSED_CUTOFF",
    "USE_PACKED_PROFILE",
    "USE_CHUNKED_PROFILE",
    "CHUNKED_PROFILE_CUTOFF",
]

try:  # pragma: no cover - exercised implicitly on import
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy ships in the toolchain
    HAVE_NUMPY = False

ENGINES = ("python", "numpy")

#: Engine used when callers pass ``engine=None`` / ``"auto"``.
DEFAULT_ENGINE: str = "numpy" if HAVE_NUMPY else "python"

#: Total input pieces below which :func:`merge_dispatch` prefers the
#: Python sweep even under ``engine="numpy"`` — the array pipeline's
#: per-call overhead dominates on tiny merges.
FLAT_MERGE_CUTOFF: int = 64

#: Overlapped-piece count below which :func:`visibility_dispatch`
#: prefers the scalar scan even under ``engine="numpy"`` — the batched
#: kernel's fixed launch overhead (~a few dozen array ops) beats the
#: ~µs/piece scalar walk only on windows of this order.
FLAT_VISIBILITY_CUTOFF: int = 96

#: Overlapped-piece count at which the *fused* visibility+merge insert
#: (:mod:`repro.envelope.flat_fused`, the sequential flat path's
#: kernel) switches from its scalar fused loop to its vectorized fused
#: sweep.  One launch amortises over both the visibility answer and
#: the merged window, so the breakeven sits well below the two-launch
#: path's effective 96-piece visibility cutoff (measured on the E9 and
#: wide-strip insert workloads; see ``docs/BENCHMARKS.md``).
FLAT_FUSED_CUTOFF: int = 64

#: Live-profile layout switch for the sequential flat path and the
#: Phase-2 direct-flat accumulation.  ``True`` (the default) keeps the
#: profile in one packed buffer with slack at both ends
#: (:class:`repro.envelope.packed.PackedProfile`) so splices edit in
#: place; ``False`` restores the immutable five-array
#: :class:`~repro.envelope.flat_splice.FlatProfile` with its
#: per-insert concatenate splice (the PR-4 cascade — the
#: ``sequential-packed-ablation`` bench rows toggle this).  Both
#: layouts produce bit-identical results; the switch is wall-clock
#: (and allocation-behaviour) only.
USE_PACKED_PROFILE: bool = True

#: Note on the compiled insert core: when the optional C extension
#: built at install time (``repro.envelope._ccore.HAVE_CCORE``), the
#: packed sequential insert bypasses this module's cutoff cascade
#: entirely — one compiled call per insert handles every window size —
#: unless ``flat_splice.USE_COMPILED_INSERT`` (env ``REPRO_COMPILED=0``
#: or ``HsrConfig.use_compiled_insert``) turns it off.  The cutoffs
#: above still govern every non-packed caller, synthetic-source
#: windows, and all no-compiler installs; parity is unconditional.

#: Promote the live packed profile to the chunked gap-buffer layout
#: (:class:`repro.envelope.packed.ChunkedProfile`) once it holds at
#: least :data:`CHUNKED_PROFILE_CUTOFF` pieces.  The chunked layout
#: bounds a size-changing splice's data movement by the chunk size
#: instead of the packed buffer's O(min(head, tail)) side shift —
#: asymptotically better on large clustered-splice profiles, but it
#: pays two-level Python lookups on every query.  Measured on the
#: recorded machine's wide-strip family it does not beat the packed
#: memmove at the bench sizes (the ``sequential-chunked-ablation``
#: row tracks it), so the default stays off; results are bit-exact
#: either way.
USE_CHUNKED_PROFILE: bool = False

#: Live-profile piece count at which :data:`USE_CHUNKED_PROFILE`
#: promotes the packed buffer to chunks (below it the single memmove
#: always wins).
CHUNKED_PROFILE_CUTOFF: int = 1024


def resolve_engine(engine: Optional[str]) -> str:
    """Normalise an engine spec to ``"python"`` or ``"numpy"``.

    ``None`` and ``"auto"`` resolve to :data:`DEFAULT_ENGINE`;
    requesting ``"numpy"`` without NumPy installed raises.
    """
    if engine is None or engine == "auto":
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise EnvelopeError(
            f"unknown envelope engine {engine!r}; choose from {ENGINES}"
        )
    if engine == "numpy" and not HAVE_NUMPY:
        raise EnvelopeError(
            "engine='numpy' requested but numpy is not installed"
        )
    return engine


def merge_dispatch(
    a: Envelope,
    b: Envelope,
    *,
    eps: float = EPS,
    record_crossings: bool = True,
    engine: Optional[str] = None,
) -> MergeResult:
    """Merge two envelopes on the selected kernel (same result either
    way); see the module docstring for the cutoff rule."""
    if (
        resolve_engine(engine) == "numpy"
        and a.size + b.size >= FLAT_MERGE_CUTOFF
    ):
        from repro.envelope.flat import merge_envelopes_flat

        if not _guard.GUARDS_ENABLED:
            res = merge_envelopes_flat(
                a, b, eps=eps, record_crossings=record_crossings
            )
            return MergeResult(
                res.envelope.to_envelope(), res.crossings, res.ops
            )
        if not (
            _guard.ANY_QUARANTINED
            and _guard.is_quarantined("merge_dispatch")
        ):
            # Guard site ``merge_dispatch``: validate the flat output
            # lanes before materialising; any fault falls through to
            # the bit-exact python sweep below.
            try:
                if _fi.ARMED:
                    _fi.trip("merge_dispatch")
                res = merge_envelopes_flat(
                    a, b, eps=eps, record_crossings=record_crossings
                )
                fe = res.envelope
                if _fi.ARMED:
                    fe = _fi.corrupt_flat("merge_dispatch", fe)
                _guard.check_flat("merge_dispatch", fe.ya, fe.za, fe.yb, fe.zb)
                return MergeResult(fe.to_envelope(), res.crossings, res.ops)
            except KernelFault:
                raise
            except Exception as exc:
                _guard.handle_fault("merge_dispatch", exc)
    return merge_envelopes(
        a, b, eps=eps, record_crossings=record_crossings
    )


def visibility_dispatch(
    seg: ImageSegment,
    env: Optional[Envelope],
    *,
    eps: float = EPS,
    engine: Optional[str] = None,
    window: Optional[object] = None,
) -> VisibilityResult:
    """Visible parts of ``seg`` against ``env`` on the selected kernel
    (same result either way).

    The scalar scan only ever touches the pieces overlapping the
    segment's y-span, so the batched kernel runs on exactly that
    window — and only when the window clears
    :data:`FLAT_VISIBILITY_CUTOFF`.  Vertical queries are an O(log m)
    point query and always take the scalar path.

    Callers that already hold the profile as flat arrays pass
    ``window`` — a :class:`~repro.envelope.flat.FlatEnvelope` holding
    exactly the pieces overlapping the (non-vertical) segment's y-span,
    typically a zero-copy :meth:`~repro.envelope.flat.FlatEnvelope.window`
    view.  The numpy branch then runs on it directly — no
    ``FlatEnvelope.from_pieces`` re-materialisation — and ``env`` may
    be ``None`` (below the cutoff the scalar scan runs on a window
    envelope materialised from the flat arrays instead, which is cheap
    precisely because the window is small there).

    >>> import pytest
    >>> _ = pytest.importorskip("numpy")
    >>> from repro.envelope.chain import Envelope, Piece
    >>> from repro.envelope.flat_splice import FlatProfile
    >>> from repro.geometry.segments import ImageSegment
    >>> prof = FlatProfile.from_envelope(Envelope([
    ...     Piece(0.0, 1.0, 4.0, 1.0, 0),   # low shelf
    ...     Piece(4.0, 5.0, 8.0, 5.0, 1),   # high shelf
    ... ]))
    >>> seg = ImageSegment(1.0, 3.0, 7.0, 3.0, 2)  # between the shelves
    >>> lo, hi = prof.pieces_overlapping(seg.y1, seg.y2)
    >>> res = visibility_dispatch(
    ...     seg, None, engine="numpy", window=prof.window(lo, hi)
    ... )
    >>> res.parts      # above the low shelf only
    [VisiblePart(ya=1.0, yb=4.0)]
    >>> res.ops        # two elementary intervals examined
    2
    """
    if window is not None:
        if (
            resolve_engine(engine) == "numpy"
            and not seg.is_vertical
            and len(window) >= FLAT_VISIBILITY_CUTOFF  # type: ignore[arg-type]
        ):
            from repro.envelope.flat_visibility import visible_parts_flat

            if not _guard.GUARDS_ENABLED:
                return visible_parts_flat(seg, window, eps=eps)
            vis = _guarded_visibility_flat(
                visible_parts_flat, seg, window, eps
            )
            if vis is not None:
                return vis
            # Fault recorded: fall through to the scalar scan on a
            # window envelope (the kernel only read the view, so it
            # is still live).
        if env is None:
            env = window.to_envelope()  # type: ignore[attr-defined]
        return visible_parts(seg, env, eps=eps)
    if resolve_engine(engine) == "numpy" and not seg.is_vertical:
        lo, hi = env.pieces_overlapping(seg.y1, seg.y2)
        if hi - lo >= FLAT_VISIBILITY_CUTOFF:
            from repro.envelope.flat import FlatEnvelope
            from repro.envelope.flat_visibility import (
                visible_parts_flat,
            )

            fwindow = FlatEnvelope.from_pieces(env.pieces[lo:hi])
            if not _guard.GUARDS_ENABLED:
                return visible_parts_flat(seg, fwindow, eps=eps)
            vis = _guarded_visibility_flat(
                visible_parts_flat, seg, fwindow, eps
            )
            if vis is not None:
                return vis
    return visible_parts(seg, env, eps=eps)


def _guarded_visibility_flat(
    kernel, seg: ImageSegment, fwindow, eps: float
) -> Optional[VisibilityResult]:
    """Guard site ``visibility_dispatch``: run the batched visibility
    kernel under post-condition checks.  Returns ``None`` on a
    recorded fault (guarded mode) so the caller falls through to the
    scalar scan; raises :class:`KernelFault` in strict mode."""
    if _guard.ANY_QUARANTINED and _guard.is_quarantined(
        "visibility_dispatch"
    ):
        return None
    try:
        if _fi.ARMED:
            _fi.trip("visibility_dispatch")
        vis = kernel(seg, fwindow, eps=eps)
        if _fi.ARMED:
            vis = _fi.corrupt_visibility("visibility_dispatch", vis)
        _guard.check_visibility(
            "visibility_dispatch", vis, seg.y1, seg.y2, eps
        )
        return vis
    except KernelFault:
        raise
    except Exception as exc:
        _guard.handle_fault("visibility_dispatch", exc)
        return None
