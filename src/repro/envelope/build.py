"""Divide-and-conquer upper-envelope construction (Lemma 3.1).

"The profile of a set of m segments can be constructed in O(log^2 m)
time using O(m·alpha(m)/log m) processors" — by splitting the set in
two halves, recursing on both halves *in parallel*, and merging the two
sub-profiles.  The merge of two envelopes of total size s has depth
O(log s) on a CREW PRAM (concurrent binary searches); the recursion
adds O(log m) levels, giving O(log^2 m) depth.

The implementation executes sequentially but charges the tracker with
PRAM costs: at each recursion level, the two recursive calls are
branches of a parallel region, and each merge charges work equal to
its elementary-interval count with depth ``log2`` of that count.
Experiment E9 verifies the measured depth is Θ(log^2 m).

Two kernels compute the merges (``engine`` parameter, see
:mod:`repro.envelope.engine`): the reference per-interval Python sweep
runs the recursion as written, while the NumPy kernel executes every
recursion *level* as one batched array sweep
(:func:`repro.envelope.flat.build_envelope_flat`) and then replays the
recursion's exact PRAM charge sequence from the per-node
elementary-interval counts — identical envelope, crossings, ``ops``,
work and depth, at a fraction of the wall clock.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Sequence

from repro.envelope.chain import Envelope
from repro.envelope.merge import Crossing, MergeResult, merge_envelopes
from repro.errors import EnvelopeError, KernelFault
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.pram.tracker import PramTracker
from repro.reliability import faultinject as _fi
from repro.reliability import guard as _guard

__all__ = ["build_envelope", "build_envelope_sequential"]


def _merge_depth(ops: int) -> float:
    """PRAM depth of a merge of ``ops`` elementary intervals."""
    return max(1.0, math.log2(ops + 1))


def build_envelope(
    segments: Sequence[ImageSegment],
    *,
    tracker: Optional[PramTracker] = None,
    eps: Optional[float] = None,
    engine: Optional[str] = None,
    config: Optional["HsrConfig"] = None,
) -> MergeResult:
    """Upper envelope of ``segments`` by parallel divide and conquer.

    Vertical projections are skipped (they have measure-zero image;
    see :meth:`Envelope.from_segment`).  Returns the envelope together
    with every crossing discovered on the way up and the total merge
    work performed.  ``config`` (:class:`repro.config.HsrConfig`) is
    the front door for engine/eps/worker selection; the ``engine=`` /
    ``eps=`` keywords remain as shorthand and override the config.
    Both engines return identical results and tracker charges.

    A config with ``workers > 1`` dispatches the D&C subtrees to the
    :mod:`repro.parallel_exec` process pool (bit-exact, guard site
    ``parallel_exec``), falling back here when workers are unavailable
    or the input is small.  Tracked runs stay in-process: the charge
    replay needs the per-node ops the chunked build does not retain.

    The numpy path runs under guard site ``build_sweep``: its final
    envelope is validated (and any kernel exception caught) *before*
    crossings are collected or the tracker is replayed, so a faulted
    sweep degrades to the reference recursion with no double-charging.
    """
    from repro.config import HsrConfig

    cfg = HsrConfig.resolve(config, engine=engine, eps=eps)
    eps = cfg.eps
    if cfg.resolved_engine() == "numpy":
        if tracker is None and cfg.resolved_workers() > 1:
            from repro.parallel_exec import maybe_build_envelope

            par = maybe_build_envelope(segments, eps=eps, config=cfg)
            if par is not None:
                fe, crossings, total_ops = par
                return MergeResult(fe.to_envelope(), crossings, total_ops)
        if not _guard.GUARDS_ENABLED:
            return _build_envelope_numpy(segments, tracker=tracker, eps=eps)
        if not (
            _guard.ANY_QUARANTINED and _guard.is_quarantined("build_sweep")
        ):
            try:
                if _fi.ARMED:
                    _fi.trip("build_sweep")
                return _build_envelope_numpy(
                    segments, tracker=tracker, eps=eps
                )
            except KernelFault:
                raise
            except Exception as exc:
                _guard.handle_fault("build_sweep", exc)
        with _fi.suppressed():
            return _build_envelope_python(segments, tracker=tracker, eps=eps)
    return _build_envelope_python(segments, tracker=tracker, eps=eps)


def _build_envelope_python(
    segments: Sequence[ImageSegment],
    *,
    tracker: Optional[PramTracker],
    eps: float,
) -> MergeResult:
    """The reference recursion — and the ``build_sweep`` retry target."""
    segs = [s for s in segments if not s.is_vertical]
    crossings: list[Crossing] = []
    total_ops = 0

    def recurse(lo: int, hi: int) -> Envelope:
        nonlocal total_ops
        if hi - lo == 0:
            return Envelope.empty()
        if hi - lo == 1:
            if tracker is not None:
                tracker.charge(1)
            total_ops += 1
            return Envelope.from_segment(segs[lo])
        mid = (lo + hi) // 2
        if tracker is not None:
            with tracker.parallel() as par:
                with par.branch():
                    left = recurse(lo, mid)
                with par.branch():
                    right = recurse(mid, hi)
        else:
            left = recurse(lo, mid)
            right = recurse(mid, hi)
        res = merge_envelopes(left, right, eps=eps)
        if tracker is not None:
            tracker.charge(res.ops, _merge_depth(res.ops))
        total_ops += res.ops
        crossings.extend(res.crossings)
        return res.envelope

    env = recurse(0, len(segs))
    return MergeResult(env, crossings, total_ops)


def _build_envelope_numpy(
    segments: Sequence[ImageSegment],
    *,
    tracker: Optional[PramTracker],
    eps: float,
) -> MergeResult:
    """Level-batched construction + exact replay of the reference
    recursion's crossing order and PRAM charge sequence."""
    from repro.envelope.flat import build_envelope_flat

    fb = build_envelope_flat(segments, eps=eps)
    m = fb.n_segments
    if m == 0:
        return MergeResult(Envelope.empty(), [], 0)

    # Guard site ``build_sweep``: corrupt (under an armed injection
    # plan) and validate the freshly-built envelope before crossings
    # are collected or the tracker is replayed.
    fe = fb.envelope
    if _fi.ARMED:
        fe = _fi.corrupt_flat("build_sweep", fe)
    if _guard.GUARDS_ENABLED:
        _guard.check_flat("build_sweep", fe.ya, fe.za, fe.yb, fe.zb)

    # Post-order (children of ``(lo, hi)`` before it, left subtree
    # first) is the exact crossing collection order of the reference
    # recursion; every leaf charges 1 op exactly as the recursion does.
    # Only the (sparse) crossing-bearing nodes need ordering.
    from repro.envelope.flat import _postorder_index

    total_ops = m + fb.total_merge_ops
    order = _postorder_index(m)
    crossings = fb.collect_crossings(
        sorted(fb.node_crossings, key=order.__getitem__)
    )

    if tracker is not None:
        node_ops = fb.node_ops

        def replay(lo: int, hi: int) -> None:
            if hi - lo == 1:
                tracker.charge(1)
                return
            mid = (lo + hi) // 2
            with tracker.parallel() as par:
                with par.branch():
                    replay(lo, mid)
                with par.branch():
                    replay(mid, hi)
            ops = node_ops[(lo, hi)]
            tracker.charge(ops, _merge_depth(ops))

        replay(0, m)

    return MergeResult(fe.to_envelope(), crossings, total_ops)


def build_envelope_sequential(
    segments: Sequence[ImageSegment],
    *,
    eps: float = EPS,
    max_segments: Optional[int] = 4096,
    on_exceed: str = "warn",
) -> MergeResult:
    """Incremental (insert-one-at-a-time) envelope construction.

    Used as a cross-check for :func:`build_envelope` in tests: the
    divide-and-conquer and the incremental construction must agree
    point-wise.  Worst-case Θ(m^2) work, so inputs larger than
    ``max_segments`` trigger the ``on_exceed`` policy: ``"warn"``
    (default) emits a :class:`RuntimeWarning`, ``"raise"`` raises
    :class:`EnvelopeError`, ``"ignore"`` proceeds silently.  Pass
    ``max_segments=None`` to disable the guard.
    """
    if on_exceed not in ("warn", "raise", "ignore"):
        raise EnvelopeError(
            f"unknown on_exceed policy {on_exceed!r};"
            " choose from ('warn', 'raise', 'ignore')"
        )
    if max_segments is not None and len(segments) > max_segments:
        message = (
            f"build_envelope_sequential on {len(segments)} segments:"
            f" worst-case Θ(m²) work above the"
            f" {max_segments}-segment threshold — use build_envelope"
            " (divide and conquer) for large inputs, or, when the"
            " goal is bulk segment-vs-profile queries, the batched"
            " visibility kernel"
            " (repro.envelope.flat_visibility.batch_visible_parts)"
        )
        if on_exceed == "raise":
            raise EnvelopeError(message)
        if on_exceed == "warn":
            warnings.warn(message, RuntimeWarning, stacklevel=2)
    acc = Envelope.empty()
    crossings: list[Crossing] = []
    ops = 0
    for seg in segments:
        if seg.is_vertical:
            continue
        res = merge_envelopes(acc, Envelope.from_segment(seg), eps=eps)
        acc = res.envelope
        crossings.extend(res.crossings)
        ops += res.ops
    return MergeResult(acc, crossings, ops)
