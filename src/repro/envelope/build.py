"""Divide-and-conquer upper-envelope construction (Lemma 3.1).

"The profile of a set of m segments can be constructed in O(log^2 m)
time using O(m·alpha(m)/log m) processors" — by splitting the set in
two halves, recursing on both halves *in parallel*, and merging the two
sub-profiles.  The merge of two envelopes of total size s has depth
O(log s) on a CREW PRAM (concurrent binary searches); the recursion
adds O(log m) levels, giving O(log^2 m) depth.

The implementation executes sequentially but charges the tracker with
PRAM costs: at each recursion level, the two recursive calls are
branches of a parallel region, and each merge charges work equal to
its elementary-interval count with depth ``log2`` of that count.
Experiment E9 verifies the measured depth is Θ(log^2 m).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.envelope.chain import Envelope
from repro.envelope.merge import Crossing, MergeResult, merge_envelopes
from repro.geometry.primitives import EPS
from repro.geometry.segments import ImageSegment
from repro.pram.tracker import PramTracker

__all__ = ["build_envelope", "build_envelope_sequential"]


def _merge_depth(ops: int) -> float:
    """PRAM depth of a merge of ``ops`` elementary intervals."""
    return max(1.0, math.log2(ops + 1))


def build_envelope(
    segments: Sequence[ImageSegment],
    *,
    tracker: Optional[PramTracker] = None,
    eps: float = EPS,
) -> MergeResult:
    """Upper envelope of ``segments`` by parallel divide and conquer.

    Vertical projections are skipped (they have measure-zero image;
    see :meth:`Envelope.from_segment`).  Returns the envelope together
    with every crossing discovered on the way up and the total merge
    work performed.
    """
    segs = [s for s in segments if not s.is_vertical]
    crossings: list[Crossing] = []
    total_ops = 0

    def recurse(lo: int, hi: int) -> Envelope:
        nonlocal total_ops
        if hi - lo == 0:
            return Envelope.empty()
        if hi - lo == 1:
            if tracker is not None:
                tracker.charge(1)
            total_ops += 1
            return Envelope.from_segment(segs[lo])
        mid = (lo + hi) // 2
        if tracker is not None:
            with tracker.parallel() as par:
                with par.branch():
                    left = recurse(lo, mid)
                with par.branch():
                    right = recurse(mid, hi)
        else:
            left = recurse(lo, mid)
            right = recurse(mid, hi)
        res = merge_envelopes(left, right, eps=eps)
        if tracker is not None:
            tracker.charge(res.ops, _merge_depth(res.ops))
        total_ops += res.ops
        crossings.extend(res.crossings)
        return res.envelope

    env = recurse(0, len(segs))
    return MergeResult(env, crossings, total_ops)


def build_envelope_sequential(
    segments: Sequence[ImageSegment], *, eps: float = EPS
) -> MergeResult:
    """Incremental (insert-one-at-a-time) envelope construction.

    Used as a cross-check for :func:`build_envelope` in tests: the
    divide-and-conquer and the incremental construction must agree
    point-wise.  Worst-case Θ(m^2) work — do not use on large inputs.
    """
    acc = Envelope.empty()
    crossings: list[Crossing] = []
    ops = 0
    for seg in segments:
        if seg.is_vertical:
            continue
        res = merge_envelopes(acc, Envelope.from_segment(seg), eps=eps)
        acc = res.envelope
        crossings.extend(res.crossings)
        ops += res.ops
    return MergeResult(acc, crossings, ops)
