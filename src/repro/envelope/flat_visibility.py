"""Batched (NumPy) segment-vs-profile visibility kernel.

The scalar scan in :mod:`repro.envelope.visibility` walks the pieces
overlapping a query segment one at a time behind a moving cursor.  The
envelope invariants make that cursor redundant: every piece in the
overlap range ``[lo, hi)`` satisfies ``ya < y2`` and ``yb > y1``
(:meth:`Envelope.pieces_overlapping` semantics) and pieces do not
overlap, so for *every* piece of the range

* the examined sub-interval is ``u = max(ya, y1) < v = min(yb, y2)``,
* the cursor entering piece ``j`` equals ``y1`` for the first piece
  and ``yb`` of piece ``j - 1`` otherwise (only the last piece of the
  range can clip at ``y2``).

The whole scan therefore vectorizes with no sequential state: one
(query, piece) pair table, ``z_at_many``-style batched line evaluation
on its endpoints, dominance signs, and boolean-mask emission of gap /
visible / crossing candidates — for *many* query segments against one
:class:`~repro.envelope.flat.FlatEnvelope`, or one query per group of
a stacked envelope set (the Phase-2 leaf layout), in a single sweep.

Parity contract: identical ``parts`` (after the same eps-merge and
``width > eps`` filtering), ``crossings`` and ``ops`` as
:func:`repro.envelope.visibility.visible_parts` for every query,
including the :func:`_visible_vertical` point-query degeneracies.
``tests/test_envelope_flat_visibility.py`` enforces this on
adversarial inputs.

Role after the fused insert kernel: the *many-queries* sweeps here
remain the kernel for Phase-2 direct-flat leaves (one batched call per
layer) and for :func:`repro.envelope.engine.visibility_dispatch`
callers that want a visibility verdict alone.  The sequential flat
insert path no longer launches this kernel per edge — its
visibility-and-merge question is answered in one pass by
:mod:`repro.envelope.flat_fused` (the pre-fusion dispatch survives as
the ``USE_FUSED_INSERT`` ablation in
:mod:`repro.envelope.flat_splice`).

View lifetime: the envelopes handed in here are often zero-copy
window views, and with the packed live-profile layout
(:mod:`repro.envelope.packed`) the buffer under a view is shifted or
reallocated by every profile splice.  This kernel only reads its
inputs within one call, which is always safe; *callers* must treat
window views as per-insert temporaries, re-derived from the live
profile after each splice, and never cache one across inserts.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Union

import numpy as np

from repro.envelope.chain import Envelope
from repro.envelope.flat import (
    FlatEnvelope,
    _group_offsets,
    _order_keys,
    _pack_range_adjust,
    _segmented_searchsorted,
    _tuples_to_matrix,
    _z_eval,
)
from repro.envelope.visibility import VisibilityResult, VisiblePart
from repro.errors import EnvelopeError
from repro.geometry.primitives import EPS, NEG_INF
from repro.geometry.segments import ImageSegment

__all__ = [
    "FlatVisibility",
    "batch_visible_parts",
    "visible_parts_flat",
]

_F = np.float64
_I = np.int64


class FlatVisibility(NamedTuple):
    """Batched visibility results, held as flat arrays.

    ``part_*`` rows are the maximal visible sub-intervals of every
    query, sorted by ``(query, y)``; ``cross_*`` rows are the
    visibility-change points, likewise sorted.  ``ops`` is the
    per-query elementary-interval count (the PRAM work charge of the
    scan, identical to the scalar kernel's).  Use :meth:`result_of` /
    :meth:`results` to materialise scalar-API
    :class:`~repro.envelope.visibility.VisibilityResult` records.
    """

    part_query: np.ndarray
    part_ya: np.ndarray
    part_yb: np.ndarray
    cross_query: np.ndarray
    cross_y: np.ndarray
    cross_z: np.ndarray
    ops: np.ndarray

    @property
    def n_queries(self) -> int:
        return len(self.ops)

    def result_of(self, q: int) -> VisibilityResult:
        """The scalar-API result of query ``q``."""
        plo = int(np.searchsorted(self.part_query, q, side="left"))
        phi = int(np.searchsorted(self.part_query, q, side="right"))
        clo = int(np.searchsorted(self.cross_query, q, side="left"))
        chi = int(np.searchsorted(self.cross_query, q, side="right"))
        parts = list(
            map(
                VisiblePart._make,
                zip(
                    self.part_ya[plo:phi].tolist(),
                    self.part_yb[plo:phi].tolist(),
                ),
            )
        )
        crossings = list(
            zip(
                self.cross_y[clo:chi].tolist(),
                self.cross_z[clo:chi].tolist(),
            )
        )
        return VisibilityResult(parts, crossings, int(self.ops[q]))

    def results(self) -> list[VisibilityResult]:
        """All queries' results, materialised in one pass."""
        q = len(self.ops)
        pq = self.part_query
        cq = self.cross_query
        p_bounds = np.searchsorted(pq, np.arange(q + 1))
        c_bounds = np.searchsorted(cq, np.arange(q + 1))
        pya = self.part_ya.tolist()
        pyb = self.part_yb.tolist()
        cy = self.cross_y.tolist()
        cz = self.cross_z.tolist()
        ops = self.ops.tolist()
        out = []
        for i in range(q):
            plo, phi = int(p_bounds[i]), int(p_bounds[i + 1])
            clo, chi = int(c_bounds[i]), int(c_bounds[i + 1])
            out.append(
                VisibilityResult(
                    [
                        VisiblePart(pya[j], pyb[j])
                        for j in range(plo, phi)
                    ],
                    [(cy[j], cz[j]) for j in range(clo, chi)],
                    ops[i],
                )
            )
        return out


def _locate(
    p_ya: np.ndarray,
    p_yb: np.ndarray,
    p_off: np.ndarray,
    q_y1: np.ndarray,
    q_y2: np.ndarray,
    q_groups: np.ndarray,
    n_groups: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-query piece range, replicating ``pieces_overlapping`` (and
    the raw ``bisect_right - 1`` index that ``value_at`` needs).

    Returns global piece indices ``(i_raw, lo, hi)``:

    * ``i_raw`` — last piece of the query's group with ``ya <= y1``,
      or ``group_start - 1`` when none;
    * ``lo``/``hi`` — half-open overlap range of the query's
      ``(y1, y2)`` span, empty when ``y1 == y2`` is outside any piece.
    """
    n = len(p_ya)
    if n_groups == 1:
        # One envelope: its ``ya`` array is globally sorted.
        count_le = np.searchsorted(p_ya, q_y1, side="right")
        hi = np.searchsorted(p_ya, q_y2, side="left")
    else:
        q_off = _group_offsets(q_groups, n_groups)
        # ``+ 0.0`` collapses -0.0 to +0.0 before keying: bisect
        # treats the zeros as equal, and distinct keys would shift the
        # piece counts (every other value is unchanged by the add).
        kp = _order_keys(p_ya + 0.0)
        k1 = _order_keys(q_y1 + 0.0)
        k2 = _order_keys(q_y2 + 0.0)
        # Packed-key group ranges must cover the queries too; the
        # query streams need not be y-sorted within a group, so their
        # per-group extremes come from segmented reductions
        # (``y1 <= y2`` per query, so min(k1)/max(k2) suffice).
        mn = np.full(n_groups, np.uint64(0xFFFFFFFFFFFFFFFF), np.uint64)
        mx = np.zeros(n_groups, np.uint64)
        pne = p_off[1:] > p_off[:-1]
        mn[pne] = kp[p_off[:-1][pne]]
        mx[pne] = kp[p_off[1:][pne] - 1]
        qne = q_off[1:] > q_off[:-1]
        if qne.any():
            starts = q_off[:-1][qne]
            mn[qne] = np.minimum(
                mn[qne], np.minimum.reduceat(k1, starts)
            )
            mx[qne] = np.maximum(
                mx[qne], np.maximum.reduceat(k2, starts)
            )
        adj = _pack_range_adjust(mn, mx, n_groups)
        if adj is not None:
            sp = kp + adj[_piece_groups(p_off, n)]
            count_le = np.searchsorted(
                sp, k1 + adj[q_groups], side="right"
            )
            hi = np.searchsorted(sp, k2 + adj[q_groups], side="left")
        else:  # pragma: no cover - needs ~1e19 coordinate spread
            count_le = _segmented_searchsorted(
                kp, p_off, k1, q_groups, side="right"
            )
            hi = _segmented_searchsorted(kp, p_off, k2, q_groups)
    i_raw = count_le - 1
    # ``pieces_overlapping`` adjustment: step past a piece ending at or
    # before ``y1`` (and past the start when the group has no piece
    # at or before ``y1``).
    if n_groups == 1:
        group_start = np.zeros(len(q_y1), _I)
    else:
        group_start = p_off[q_groups]
    valid = i_raw >= group_start
    if n:
        ends = p_yb[np.clip(i_raw, 0, n - 1)]
        lo = np.where(valid & (ends > q_y1), i_raw, i_raw + 1)
    else:
        lo = i_raw + 1
    return i_raw, lo, hi


def _piece_groups(p_off: np.ndarray, n: int) -> np.ndarray:
    """Group id per piece from group offsets."""
    return np.repeat(
        np.arange(len(p_off) - 1, dtype=_I), np.diff(p_off)
    )


def batch_visible_parts(
    env: Union[FlatEnvelope, Envelope, tuple],
    segments: Union[Sequence[ImageSegment], np.ndarray],
    groups: Optional[np.ndarray] = None,
    *,
    eps: float = EPS,
) -> FlatVisibility:
    """Visible parts of many query segments, in one batched sweep.

    ``env`` is a single envelope (:class:`FlatEnvelope` or
    :class:`Envelope`) that every query is tested against, or a
    stacked envelope set (``repro.envelope.flat.stack_envelopes``
    output) with ``groups`` giving each query's group id — the
    Phase-2 leaf layout, one inherited profile per leaf.  ``groups``
    must be sorted ascending (queries grouped by envelope).

    ``segments`` is a sequence of :class:`ImageSegment` or a prebuilt
    ``(Q, 5)`` float64 matrix.  Vertical queries (``y1 == y2``) take
    the point-query path of ``_visible_vertical``.

    Every query's parts, crossings and ops are exactly those of the
    scalar :func:`~repro.envelope.visibility.visible_parts`.
    """
    if isinstance(env, Envelope):
        env = FlatEnvelope.from_envelope(env)
    if isinstance(env, FlatEnvelope):
        p_ya, p_za = env.ya, env.za
        p_yb, p_zb = env.yb, env.zb
        p_off = np.array([0, len(p_ya)], _I)
        n_groups = 1
    else:  # a stacked envelope set
        p_ya, p_za, p_yb, p_zb = env.ya, env.za, env.yb, env.zb
        p_off = np.asarray(env.offsets, _I)
        n_groups = len(p_off) - 1

    if isinstance(segments, np.ndarray):
        seg_mat = segments
    else:
        seg_mat = (
            _tuples_to_matrix(segments)
            if len(segments)
            else np.empty((0, 5), _F)
        )
    nq = len(seg_mat)
    q_y1 = np.ascontiguousarray(seg_mat[:, 0])
    q_z1 = np.ascontiguousarray(seg_mat[:, 1])
    q_y2 = np.ascontiguousarray(seg_mat[:, 2])
    q_z2 = np.ascontiguousarray(seg_mat[:, 3])

    if groups is None:
        q_groups = np.zeros(nq, _I)
    else:
        q_groups = np.asarray(groups, _I)
        if len(q_groups) != nq:
            raise EnvelopeError(
                f"groups length {len(q_groups)} != {nq} queries"
            )
        if nq and bool(np.any(q_groups[1:] < q_groups[:-1])):
            raise EnvelopeError(
                "batch_visible_parts requires group-sorted queries"
            )

    e_f = np.empty(0, _F)
    e_i = np.empty(0, _I)
    if nq == 0:
        return FlatVisibility(
            e_i, e_f, e_f, e_i, e_f, e_f, np.empty(0, _I)
        )

    i_raw, lo, hi = _locate(
        p_ya, p_yb, p_off, q_y1, q_y2, q_groups, n_groups
    )
    ops = np.ones(nq, _I)

    vertical = q_y1 == q_y2
    nonvert = ~vertical

    # ---- non-vertical queries: the vectorized interval scan --------
    nv = np.flatnonzero(nonvert)
    if len(nv):
        counts = (hi[nv] - lo[nv]).astype(_I)
        np.maximum(counts, 0, out=counts)  # defensive; cannot go < 0
        n_pairs = int(counts.sum())
        pair_off = np.concatenate([[0], np.cumsum(counts)])

        # (query, piece) pair table; ``qi`` is the ordinal among the
        # non-vertical queries, in input order.
        qi = np.repeat(np.arange(len(nv), dtype=_I), counts)
        piece = (
            np.arange(n_pairs, dtype=_I)
            - np.repeat(pair_off[:-1], counts)
            + np.repeat(lo[nv], counts)
        )
        y1q = q_y1[nv][qi]
        y2q = q_y2[nv][qi]
        u = np.maximum(p_ya[piece], y1q)
        v = np.minimum(p_yb[piece], y2q)

        first = np.zeros(n_pairs, bool)
        first[pair_off[:-1][counts > 0]] = True
        # Cursor entering pair j: y1 for the query's first piece, the
        # previous piece's end otherwise (see module docstring).
        prev_yb = p_yb[np.maximum(piece - 1, 0)]
        gap_start = np.where(first, y1q, prev_yb)
        gap_end = p_ya[piece]  # == min(ya, y2): ya < y2 in range
        has_gap = gap_start < gap_end

        # z_at_many-style evaluation: query line and covering piece at
        # both interval endpoints, two stacked calls.
        uv = np.concatenate([u, v])
        qq = np.concatenate([qi, qi])
        pp = np.concatenate([piece, piece])
        z_seg = _z_eval(
            q_y1[nv][qq], q_z1[nv][qq], q_y2[nv][qq], q_z2[nv][qq], uv
        )
        z_env = _z_eval(p_ya[pp], p_za[pp], p_yb[pp], p_zb[pp], uv)
        d = z_seg - z_env
        du, dv = d[:n_pairs], d[n_pairs:]
        su = (du > eps).astype(np.int8)
        su -= du < -eps
        sv = (dv > eps).astype(np.int8)
        sv -= dv < -eps

        visible_full = (su >= 0) & (sv >= 0) & ((su > 0) | (sv > 0))
        hidden = ~visible_full & (su <= 0) & (sv <= 0)
        tr = np.flatnonzero(~visible_full & ~hidden)

        # Transversal pairs: crossing point, clamped like the scalar.
        dut = du[tr]
        dvt = dv[tr]
        t = dut / (dut - dvt)
        w = u[tr] + t * (v[tr] - u[tr])
        w = np.minimum(np.maximum(w, u[tr]), v[tr])
        tr_rising = su[tr] < 0  # hidden then visible: part (w, v)

        vis_ya = u.copy()
        vis_yb = v.copy()
        vis_ya[tr[tr_rising]] = w[tr_rising]
        vis_yb[tr[~tr_rising]] = w[~tr_rising]

        # Crossings: strictly interior flips only, z on the query line.
        interior = (u[tr] < w) & (w < v[tr])
        cross_pair = tr[interior]
        cross_y = w[interior]
        cross_z = _z_eval(
            q_y1[nv][qi[cross_pair]],
            q_z1[nv][qi[cross_pair]],
            q_y2[nv][qi[cross_pair]],
            q_z2[nv][qi[cross_pair]],
            cross_y,
        )

        # Candidate slots, (query, y)-ordered by construction:
        # [gap_0, vis_0, gap_1, vis_1, ..., trailing] per query.
        n_nv = len(nv)
        n_slots = 2 * n_pairs + n_nv
        slot_gap = 2 * np.arange(n_pairs, dtype=_I) + qi
        slot_trail = 2 * pair_off[1:] + np.arange(n_nv, dtype=_I)

        cand_ya = np.empty(n_slots, _F)
        cand_yb = np.empty(n_slots, _F)
        cand_q = np.empty(n_slots, _I)
        valid = np.zeros(n_slots, bool)

        valid[slot_gap] = has_gap
        cand_ya[slot_gap] = gap_start
        cand_yb[slot_gap] = gap_end
        cand_q[slot_gap] = qi
        valid[slot_gap + 1] = ~hidden
        cand_ya[slot_gap + 1] = vis_ya
        cand_yb[slot_gap + 1] = vis_yb
        cand_q[slot_gap + 1] = qi

        if n_pairs:
            last_v = v[np.maximum(pair_off[1:] - 1, 0)]
            cursor_end = np.where(counts > 0, last_v, q_y1[nv])
        else:
            cursor_end = q_y1[nv]
        valid[slot_trail] = cursor_end < q_y2[nv]
        cand_ya[slot_trail] = cursor_end
        cand_yb[slot_trail] = q_y2[nv]
        cand_q[slot_trail] = np.arange(n_nv, dtype=_I)

        ops_nv = (
            counts
            + np.bincount(qi[has_gap], minlength=n_nv)
            + valid[slot_trail]
        )
        ops[nv] = np.maximum(ops_nv, 1)

        # Merge adjacent candidates (the _PartAccumulator rule): within
        # a query, candidates are disjoint with non-decreasing ends, so
        # the accumulated last end *is* the previous candidate's end.
        sel = np.flatnonzero(valid)
        cya = cand_ya[sel]
        cyb = cand_yb[sel]
        cq = cand_q[sel]
        n_sel = len(sel)
        if n_sel:
            new = np.empty(n_sel, bool)
            new[0] = True
            new[1:] = (cq[1:] != cq[:-1]) | (
                cya[1:] > cyb[:-1] + eps
            )
            pstarts = np.flatnonzero(new)
            pends = np.concatenate([pstarts[1:], [n_sel]]) - 1
            m_ya = cya[pstarts]
            m_yb = cyb[pends]
            m_q = cq[pstarts]
            wide = (m_yb - m_ya) > eps
            part_q_nv = nv[m_q[wide]]
            part_ya_nv = m_ya[wide]
            part_yb_nv = m_yb[wide]
        else:
            part_q_nv, part_ya_nv, part_yb_nv = e_i, e_f, e_f
        cross_q_nv = nv[qi[cross_pair]]
    else:
        part_q_nv, part_ya_nv, part_yb_nv = e_i, e_f, e_f
        cross_q_nv, cross_y, cross_z = e_i, e_f, e_f

    # ---- vertical queries: batched point query (value_at) ----------
    vt = np.flatnonzero(vertical)
    if len(vt):
        n = len(p_ya)
        y = q_y1[vt]
        i = i_raw[vt]
        if n_groups == 1:
            g_lo = np.zeros(len(vt), _I)
            g_hi = np.full(len(vt), n, _I)
        else:
            g_lo = p_off[q_groups[vt]]
            g_hi = p_off[q_groups[vt] + 1]
        if n:
            ic = np.clip(i, 0, n - 1)
            inside = (i >= g_lo) & (p_ya[ic] <= y) & (y <= p_yb[ic])
            best = np.where(
                inside,
                _z_eval(p_ya[ic], p_za[ic], p_yb[ic], p_zb[ic], y),
                NEG_INF,
            )
            ip = np.clip(i - 1, 0, n - 1)
            prev_ok = (i - 1 >= g_lo) & (p_yb[ip] == y)
            best = np.maximum(
                best, np.where(prev_ok, p_zb[ip], NEG_INF)
            )
            inx = np.clip(i + 1, 0, n - 1)
            next_ok = (i + 1 < g_hi) & (p_ya[inx] == y)
            best = np.maximum(
                best, np.where(next_ok, p_za[inx], NEG_INF)
            )
        else:
            best = np.full(len(vt), NEG_INF, _F)
        top = np.maximum(q_z1[vt], q_z2[vt])
        vis_v = (best == NEG_INF) | (top > best + eps)
        part_q_vt = vt[vis_v]
        part_y_vt = y[vis_v]
    else:
        part_q_vt = e_i
        part_y_vt = e_f

    # ---- combine, (query, y)-ordered --------------------------------
    if len(part_q_vt):
        pq = np.concatenate([part_q_nv, part_q_vt])
        pya = np.concatenate([part_ya_nv, part_y_vt])
        pyb = np.concatenate([part_yb_nv, part_y_vt])
        order = np.argsort(pq, kind="stable")
        part_query = pq[order]
        part_ya = pya[order]
        part_yb = pyb[order]
    else:
        part_query, part_ya, part_yb = part_q_nv, part_ya_nv, part_yb_nv

    return FlatVisibility(
        part_query, part_ya, part_yb, cross_q_nv, cross_y, cross_z, ops
    )


def visible_parts_flat(
    seg: ImageSegment,
    env: Union[FlatEnvelope, Envelope],
    *,
    eps: float = EPS,
) -> VisibilityResult:
    """Single-query convenience wrapper over
    :func:`batch_visible_parts` (exact
    :func:`~repro.envelope.visibility.visible_parts` semantics)."""
    return batch_visible_parts(env, (seg,), eps=eps).result_of(0)
